//! Push-mode telemetry end to end: server → exporter → collector.
//!
//! A `ConnServer` runs closed-loop Zipf traffic with a `HealthState`
//! and a `TraceRecorder` attached. A `TelemetryExporter` drains metric
//! deltas, fresh spans and health state every few milliseconds and
//! pushes them as checksummed binary frames to an in-process
//! `Collector`, which re-accumulates and re-renders the merged fleet
//! view as Prometheus text. The health engine also backs `/healthz` +
//! `/readyz` on the scrape endpoint.
//!
//! Halfway through, the collector is killed. The contract on display:
//! the server neither stalls nor fails nor reorders a round — the
//! exporter buffers (bounded), counts its drops, and keeps
//! reconnect-looping against the dead address.
//!
//! ```text
//! cargo run --release --example export_pipeline
//! ```

use dyncon_core::BatchDynamicConnectivity;
use dyncon_export::{Collector, ExportConfig, HealthState, TelemetryExporter};
use dyncon_graphgen::zipf_client_schedules;
use dyncon_metrics::Registry;
use dyncon_server::{ConnServer, ServerConfig};
use dyncon_trace::{serve_telemetry_with_health, TraceRecorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One `curl`-shaped request: GET `path`, return (status line, body).
fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("endpoint reachable");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request sent");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = match response.split_once("\r\n\r\n") {
        Some((_headers, body)) => body.to_string(),
        None => response,
    };
    (status, body)
}

fn main() {
    let n = 1 << 12;
    let clients = 4usize;
    let requests = 40;
    let schedules = zipf_client_schedules(n, clients, requests, 64, 0.5, 1.1, 33);

    // The observed process: registry + recorder + health engine shared
    // by the server, the exporter and the local scrape endpoint.
    let registry = Registry::new();
    let recorder = TraceRecorder::new();
    let health = HealthState::default().with_metrics(&registry);

    // The fleet side: a collector other processes would also push to.
    let collector = Collector::bind("127.0.0.1:0").expect("collector binds");
    println!("collector listening on {}", collector.local_addr());

    let exporter = TelemetryExporter::start(
        collector.local_addr().to_string(),
        registry.clone(),
        ExportConfig::new()
            .interval(Duration::from_millis(5))
            .source("example-server")
            .trace(recorder.clone())
            .health(health.clone()),
    );

    // Local pull endpoint with the health routes attached: /healthz,
    // /readyz alongside /metrics, /trace, /slow.
    let telemetry = serve_telemetry_with_health(
        "127.0.0.1:0",
        registry.clone(),
        recorder.clone(),
        Some(health.routes()),
    )
    .expect("endpoint binds");
    let addr = telemetry.local_addr();
    let (status, body) = scrape(addr, "/readyz");
    println!("readyz before traffic: {status} — {}", body.trim());

    let server = ConnServer::start(
        BatchDynamicConnectivity::new(n),
        ServerConfig::new()
            .batch_cap(1024)
            .coalesce_wait(Duration::from_micros(100))
            .queue_capacity(2 * clients)
            .metrics(registry.clone())
            .trace(recorder.clone())
            .health(health.clone()),
    );

    // Clients drive load; halfway through, the collector dies.
    let kill_at = requests / 2;
    std::thread::scope(|scope| {
        for (c, sched) in schedules.iter().enumerate() {
            let server = &server;
            let collector = &collector;
            scope.spawn(move || {
                for (i, ops) in sched.iter().enumerate() {
                    let ticket = server
                        .submit_blocking_as(c as u64, ops.clone())
                        .expect("service open");
                    ticket.wait().expect("round commits");
                    if c == 0 && i == kill_at {
                        println!("killing the collector mid-run...");
                        collector.shutdown();
                    }
                }
            });
        }
    });

    let report = server.join();
    println!(
        "served {} rounds / {} ops — all committed with the collector dead since round ~{kill_at}",
        report.rounds_committed, report.ops_committed
    );

    // The collector kept everything it accumulated before it died.
    let wait_until = Instant::now() + Duration::from_secs(2);
    while collector.frames_received() == 0 && Instant::now() < wait_until {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "collector (post-mortem): {} frames from {:?}, {} spans, {} checksum failures",
        collector.frames_received(),
        collector.sources(),
        collector.spans_received(),
        collector.checksum_failures()
    );
    assert!(
        collector.frames_received() > 0,
        "frames arrived before the kill"
    );
    assert_eq!(collector.checksum_failures(), 0);
    let merged = collector.render_prometheus();
    let rounds_line = merged
        .lines()
        .find(|l| l.starts_with("dyncon_server_rounds_committed_total"))
        .unwrap_or("dyncon_server_rounds_committed_total <not yet exported>");
    println!("merged fleet exposition carries e.g.: {rounds_line}");

    // The exporter soaked up the dead collector without touching the
    // server: sent before the kill, dropped (bounded buffer) after.
    println!(
        "exporter: {} frames sent, {} dropped, {} reconnects — server never noticed",
        exporter.frames_sent(),
        exporter.frames_dropped(),
        exporter.reconnects()
    );

    // Health after the run: the writer is gone (server joined), but
    // no stall was ever declared while it was live; readiness still
    // reflects the engine's current view.
    let (status, body) = scrape(addr, "/healthz");
    println!("healthz after run: {status} — {}", body.trim());
    let (status, _body) = scrape(addr, "/readyz");
    println!("readyz after run: {status}");
    let report = health.refresh();
    println!(
        "health report: ready={} stalled={} slo_burn_1m={}‰ rounds={} reads={}",
        report.ready,
        report.writer_stalled,
        report.slo_burn_1m_permille,
        report.rounds_seen,
        report.reads_served
    );

    exporter.close();
    telemetry.close();
    telemetry.join();
}
