//! End-to-end serving demo: concurrent clients → group-commit batches.
//!
//! Part 1 (throughput mode): 8 closed-loop client threads fire
//! Zipf-skewed mixed requests at a `ConnServer`; the single writer
//! coalesces them into large mixed-op rounds — the batches the paper's
//! structure wants — and each client gets its own query answers back
//! through a blocking ticket.
//!
//! Part 2 (deterministic mode): the same concurrency, but with explicit
//! round boundaries and canonical request order, then a serial replay of
//! the recorded rounds proving byte-identical results — the serving
//! layer's extension of the workspace determinism contract.
//!
//! ```text
//! cargo run --release --example concurrent_service
//! ```

use dyncon_api::{BatchDynamic, Op, OpKind};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_server::{ConnServer, ServerConfig, SubmitOptions};
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn main() {
    throughput_demo();
    determinism_demo();
}

fn throughput_demo() {
    let n = 1 << 14;
    let clients = 8;
    let requests = 64;
    let ops_per_request = 128;
    let schedules = zipf_client_schedules(n, clients, requests, ops_per_request, 0.6, 1.2, 7);
    let total_ops = clients * requests * ops_per_request;
    println!(
        "serving {total_ops} ops from {clients} concurrent clients ({requests} req × {ops_per_request} ops each, 60% reads, Zipf s=1.2)"
    );

    let server = ConnServer::start(
        BatchDynamicConnectivity::new(n),
        ServerConfig::new()
            .batch_cap(4096)
            .coalesce_wait(Duration::from_micros(100))
            .queue_capacity(2 * clients),
    );
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (c, sched) in schedules.iter().enumerate() {
            let server = &server;
            scope.spawn(move || {
                let mut connected = 0usize;
                for ops in sched {
                    let ticket = server
                        .submit_with(
                            ops.clone(),
                            SubmitOptions::new().as_client(c as u64).blocking(true),
                        )
                        .expect("service is open");
                    let result = ticket.wait().expect("round commits");
                    connected += result.answers.iter().filter(|&&a| a).count();
                }
                connected
            });
        }
    });
    let wall = t0.elapsed();
    let report = server.join();
    println!(
        "  {} rounds, {:.0} ops/round average — group commit turned per-request traffic into batches",
        report.rounds_committed,
        report.ops_committed as f64 / report.rounds_committed.max(1) as f64
    );
    println!(
        "  {:.0} kops/s end to end; final graph: {} edges, {} components",
        total_ops as f64 / wall.as_secs_f64() / 1000.0,
        report.backend.num_edges(),
        report.backend.num_components()
    );
    report
        .backend
        .check()
        .expect("invariants hold after serving");
    println!("  invariants hold ✓\n");
}

fn determinism_demo() {
    let n = 1 << 10;
    let clients = 4;
    let rounds = 8;
    let schedules = zipf_client_schedules(n, clients, rounds, 48, 0.4, 1.1, 21);
    println!("deterministic mode: {clients} clients × {rounds} explicit rounds");

    let server = ConnServer::start(
        BatchDynamicConnectivity::new(n),
        ServerConfig::new()
            .deterministic(true)
            .record_rounds(true)
            .queue_capacity(clients * rounds),
    );
    let submitted = Barrier::new(clients + 1);
    let committed = Barrier::new(clients + 1);
    std::thread::scope(|scope| {
        for (c, sched) in schedules.iter().enumerate() {
            let (server, submitted, committed) = (&server, &submitted, &committed);
            scope.spawn(move || {
                for ops in sched {
                    let ticket = server
                        .submit_with(ops.clone(), SubmitOptions::new().as_client(c as u64))
                        .unwrap();
                    submitted.wait();
                    let result = ticket.wait().unwrap();
                    let queries = ops.iter().filter(|o| o.kind() == OpKind::Query).count();
                    assert_eq!(result.answers.len(), queries);
                    committed.wait();
                }
            });
        }
        for _ in 0..rounds {
            submitted.wait();
            server.seal_round();
            committed.wait();
        }
    });
    let report = server.join();

    // Serial replay of the recorded rounds on a fresh backend: the
    // concurrent server must have produced byte-identical results.
    let mut replay = BatchDynamicConnectivity::new(n);
    for record in &report.rounds {
        let result = replay.apply(&record.ops).expect("replay accepts the round");
        assert_eq!(result, record.result, "round {} diverged", record.round);
        // And the canonical order is schedule-derived: client-major.
        let expected: Vec<Op> = schedules
            .iter()
            .flat_map(|sched| sched[record.round as usize].iter().copied())
            .collect();
        assert_eq!(record.ops, expected, "round {} not canonical", record.round);
    }
    println!(
        "  {} rounds re-applied serially: all BatchResults byte-identical ✓",
        report.rounds.len()
    );
}
