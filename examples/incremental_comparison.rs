//! The incremental (insert-only) setting: prior batch-dynamic work
//! (Simsiri et al., cited as [57]) handles insertions only — union-find is
//! unbeatable there. This example shows (a) how close the fully dynamic
//! structure stays on insert-only streams, and (b) the moment deletions
//! enter, union-find has no answer while the batch-dynamic structure keeps
//! serving exact connectivity.
//!
//! ```text
//! cargo run --release --example incremental_comparison
//! ```

use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{erdos_renyi, UpdateStream};
use dyncon_spanning::IncrementalConnectivity;
use std::time::Instant;

fn main() {
    let n = 1 << 16;
    let edges = erdos_renyi(n, 2 * n, 31);
    let queries = UpdateStream::random_queries(n, 1 << 14, 32);

    // Phase 1: insert-only — both structures, identical stream.
    let t = Instant::now();
    let mut uf = IncrementalConnectivity::new(n);
    for chunk in edges.chunks(4096) {
        uf.batch_insert(chunk);
    }
    let uf_ans = uf.batch_connected(&queries);
    let uf_time = t.elapsed();

    let t = Instant::now();
    let mut g = BatchDynamicConnectivity::new(n);
    for chunk in edges.chunks(4096) {
        g.batch_insert(chunk);
    }
    let g_ans = g.batch_connected(&queries);
    let g_time = t.elapsed();

    assert_eq!(uf_ans, g_ans, "both structures agree on every query");
    println!(
        "insert-only phase: {} edges + {} queries",
        edges.len(),
        queries.len()
    );
    println!("  incremental union-find : {uf_time:.2?}");
    println!(
        "  batch-dynamic          : {g_time:.2?}  ({:.1}× overhead — the price of deletability)",
        g_time.as_secs_f64() / uf_time.as_secs_f64()
    );

    // Phase 2: deletions arrive. Union-find cannot process them at all —
    // its only recourse is a full rebuild from the survivor set, whose
    // cost is O(m) *per deletion batch*. The dynamic structure's cost
    // tracks the batch, so small batches on a large graph are its regime.
    let doomed: Vec<(u32, u32)> = edges.iter().copied().step_by(257).collect();
    let doomed_set: std::collections::HashSet<(u32, u32)> = doomed.iter().copied().collect();
    let t = Instant::now();
    g.batch_delete(&doomed);
    let del_time = t.elapsed();
    let t = Instant::now();
    let mut rebuilt = IncrementalConnectivity::new(n);
    let survivors: Vec<(u32, u32)> = edges
        .iter()
        .copied()
        .filter(|e| !doomed_set.contains(e))
        .collect();
    rebuilt.batch_insert(&survivors);
    let rebuild_time = t.elapsed();

    let g_ans = g.batch_connected(&queries);
    let uf_ans = rebuilt.batch_connected(&queries);
    assert_eq!(g_ans, uf_ans, "agreement after deletions too");
    println!(
        "\ndeletion phase: {} edges deleted in one small batch (m = {})",
        doomed.len(),
        edges.len()
    );
    println!("  batch-dynamic delete   : {del_time:.2?} (touches only affected levels)");
    println!(
        "  union-find full rebuild: {rebuild_time:.2?} — and that O(m) rebuild recurs on \
         every future deletion batch, while the dynamic cost keeps tracking the batch \
         size (for batches approaching m, recomputing wins — see EXPERIMENTS.md E6)"
    );
    println!(
        "\ncomponents now: {} — size distribution head: {:?}",
        g.num_components(),
        &g.component_size_distribution()[..6.min(g.num_components())]
    );
}
