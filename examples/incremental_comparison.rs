//! The incremental (insert-only) setting: prior batch-dynamic work
//! (Simsiri et al., cited as [57]) handles insertions only — union-find is
//! unbeatable there. Both structures implement the same `BatchDynamic`
//! trait, so one loop drives them through an identical insert+query
//! script; the moment deletions enter, the union-find backend answers
//! with a **typed `Unsupported` error** while the batch-dynamic structure
//! keeps serving exact connectivity.
//!
//! ```text
//! cargo run --release --example incremental_comparison
//! ```

use dyncon_api::{BatchDynamic, Builder, DynConError};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{erdos_renyi, UpdateStream};
use dyncon_spanning::IncrementalConnectivity;
use std::time::{Duration, Instant};

fn main() {
    let n = 1 << 16;
    let edges = erdos_renyi(n, 2 * n, 31);
    let queries = UpdateStream::random_queries(n, 1 << 14, 32);

    // Phase 1: insert-only — both backends through the trait, identical
    // script, no per-backend glue.
    let ingest = |g: &mut dyn BatchDynamic| -> (Duration, Vec<bool>) {
        let t = Instant::now();
        for chunk in edges.chunks(4096) {
            g.batch_insert(chunk).expect("in-range edges");
        }
        let answers = g.batch_connected(&queries);
        (t.elapsed(), answers)
    };
    let mut uf: IncrementalConnectivity = Builder::new(n).build().unwrap();
    let mut g: BatchDynamicConnectivity = Builder::new(n).build().unwrap();
    let (uf_time, uf_ans) = ingest(&mut uf);
    let (g_time, g_ans) = ingest(&mut g);

    assert_eq!(uf_ans, g_ans, "both structures agree on every query");
    println!(
        "insert-only phase: {} edges + {} queries",
        edges.len(),
        queries.len()
    );
    println!("  incremental union-find : {uf_time:.2?}");
    println!(
        "  batch-dynamic          : {g_time:.2?}  ({:.1}× overhead — the price of deletability)",
        g_time.as_secs_f64() / uf_time.as_secs_f64()
    );

    // Phase 2: deletions arrive. The union-find backend refuses with a
    // typed error — its only recourse is a full rebuild from the survivor
    // set, whose cost is O(m) *per deletion batch*. The dynamic
    // structure's cost tracks the batch, so small batches on a large
    // graph are its regime.
    let doomed: Vec<(u32, u32)> = edges.iter().copied().step_by(257).collect();
    match uf.batch_delete(&doomed) {
        Err(DynConError::Unsupported { backend, operation }) => {
            println!("\ndeletions arrive: `{backend}` refuses {operation} (typed, not a panic)")
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }

    let doomed_set: std::collections::HashSet<(u32, u32)> = doomed.iter().copied().collect();
    let t = Instant::now();
    g.batch_delete(&doomed);
    let del_time = t.elapsed();
    let t = Instant::now();
    let mut rebuilt: IncrementalConnectivity = Builder::new(n).build().unwrap();
    let survivors: Vec<(u32, u32)> = edges
        .iter()
        .copied()
        .filter(|e| !doomed_set.contains(e))
        .collect();
    rebuilt.batch_insert(&survivors);
    let rebuild_time = t.elapsed();

    let g_ans = g.batch_connected(&queries);
    let uf_ans = rebuilt.batch_connected(&queries);
    assert_eq!(g_ans, uf_ans, "agreement after deletions too");
    println!(
        "deletion phase: {} edges deleted in one small batch (m = {})",
        doomed.len(),
        edges.len()
    );
    println!("  batch-dynamic delete   : {del_time:.2?} (touches only affected levels)");
    println!(
        "  union-find full rebuild: {rebuild_time:.2?} — and that O(m) rebuild recurs on \
         every future deletion batch, while the dynamic cost keeps tracking the batch \
         size (for batches approaching m, recomputing wins — see EXPERIMENTS.md E6)"
    );
    println!(
        "\ncomponents now: {} — size distribution head: {:?}",
        g.num_components(),
        &g.component_size_distribution()[..6.min(g.num_components())]
    );
}
