//! End-to-end durability demo: serve → crash → recover → verify → compact.
//!
//! Lifetime 1 serves concurrent Zipf traffic through a `DurableServer`
//! and "crashes" (shuts down without compaction), leaving only the
//! write-ahead log behind. Lifetime 2 recovers from the log, proves the
//! rebuilt structure answers exactly like the replay oracle, serves more
//! traffic continuing the global round numbering, and compacts at join.
//! Lifetime 3 shows recovery now loads the snapshot and replays nothing.
//!
//! ```text
//! cargo run --release --example durable_service
//! ```

use dyncon_api::{BatchDynamic, ExportEdges, Op, OpKind};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_durable::{read_wal, recover, scratch_dir, DurableConfig, DurableServer, FsyncPolicy};
use dyncon_graphgen::zipf_client_schedules;
use dyncon_server::ServerConfig;
use std::time::Instant;

const N: usize = 1 << 12;
const CLIENTS: usize = 4;
const ROUNDS_PER_LIFETIME: usize = 6;
const OPS_PER_REQUEST: usize = 48;

fn serve(dir: &std::path::Path, schedules: &[Vec<Vec<Op>>], compact_on_join: bool) -> (u64, u64) {
    let (server, meta) = DurableServer::<BatchDynamicConnectivity>::open(
        dir,
        N,
        ServerConfig::new()
            .deterministic(true)
            .queue_capacity(CLIENTS * ROUNDS_PER_LIFETIME),
        DurableConfig::new()
            .fsync(FsyncPolicy::EveryRound)
            .compact_on_join(compact_on_join),
    )
    .unwrap();
    println!(
        "  opened: snapshot covers {} rounds, replayed {} from the WAL, next round id {}",
        meta.snapshot_rounds, meta.replayed_rounds, meta.next_round
    );
    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (c, sched) in schedules.iter().enumerate() {
            let (server, done) = (&server, &done);
            scope.spawn(move || {
                for ops in sched {
                    let queries = ops.iter().filter(|o| o.kind() == OpKind::Query).count();
                    let ticket = server.submit_blocking_as(c as u64, ops.clone()).unwrap();
                    // A resolved ticket implies the round is fsynced:
                    // group commit and group fsync coincide.
                    assert_eq!(ticket.wait().unwrap().answers.len(), queries);
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        // One writer-side sealer: deterministic mode commits only at
        // explicit seals, so keep sealing bursts until every client has
        // drained its schedule.
        let (server, done) = (&server, &done);
        scope.spawn(move || {
            while done.load(std::sync::atomic::Ordering::Relaxed) < CLIENTS {
                std::thread::sleep(std::time::Duration::from_micros(200));
                server.seal_round();
            }
        });
    });
    let report = server.join().unwrap();
    (report.service.rounds_committed, report.next_round)
}

fn main() {
    let dir = scratch_dir("durable-example");
    let schedules = |seed: u64| {
        zipf_client_schedules(
            N,
            CLIENTS,
            ROUNDS_PER_LIFETIME,
            OPS_PER_REQUEST,
            0.5,
            1.1,
            seed,
        )
    };

    println!("lifetime 1: serve {CLIENTS} clients, then crash (no compaction)");
    let (committed, next_round) = serve(&dir, &schedules(1), false);
    println!("  committed {committed} rounds; process dies, WAL survives");

    // --- crash ---

    println!("recovery: rebuild from the WAL and verify against a replay oracle");
    let t0 = Instant::now();
    let (recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
    println!(
        "  replayed {} rounds in {:.2} ms ({} edges, {} components)",
        meta.replayed_rounds,
        t0.elapsed().as_secs_f64() * 1e3,
        recovered.export_edges().len(),
        recovered.num_components()
    );
    assert_eq!(meta.next_round, next_round);
    // The WAL itself is the oracle: re-apply every logged round on a
    // fresh structure and compare the full labelling byte for byte.
    let readout = read_wal(&dir).unwrap().expect("the WAL survived the crash");
    let mut oracle = BatchDynamicConnectivity::new(N);
    for record in &readout.records {
        oracle.apply(&record.ops).unwrap();
    }
    assert_eq!(recovered.component_labels(), oracle.component_labels());
    assert_eq!(recovered.export_edges(), oracle.export_edges());
    println!("  recovered structure is byte-identical to the uninterrupted replay ✓");

    println!("lifetime 2: serve more traffic on the recovered state, compact at join");
    let (committed2, next_round2) = serve(&dir, &schedules(2), true);
    println!("  committed {committed2} more rounds; global round numbering reached {next_round2}");

    println!("lifetime 3: after compaction, recovery is snapshot-only");
    let (server, meta) = DurableServer::<BatchDynamicConnectivity>::open(
        &dir,
        N,
        ServerConfig::new(),
        DurableConfig::new(),
    )
    .unwrap();
    assert_eq!(meta.replayed_rounds, 0, "the snapshot carries everything");
    assert_eq!(meta.snapshot_rounds, next_round2);
    println!(
        "  snapshot covers all {} rounds, WAL replay empty ✓",
        meta.snapshot_rounds
    );
    server.join().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
    println!("done: crash → recover → verify → compact all hold");
}
