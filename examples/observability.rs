//! Observability demo: one metrics registry across the whole stack.
//!
//! Part 1: hand a `dyncon_metrics::Registry` to a `ConnServer`, drive
//! open-loop Poisson traffic through it, and read the serving metrics —
//! queue depth high-water, round sizes, coalesce wait and apply latency
//! histograms — live from the shared registry, then print the frozen
//! snapshot's Prometheus text exposition.
//!
//! Part 2: the determinism interaction. Metrics are observational, never
//! inputs: the same deterministic schedule with and without a registry
//! commits byte-identical rounds.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{poisson_arrivals, zipf_client_schedules};
use dyncon_metrics::Registry;
use dyncon_server::{ConnServer, ServerConfig};
use std::time::Duration;

fn main() {
    observe_a_loaded_server();
    metrics_do_not_perturb_determinism();
}

fn observe_a_loaded_server() {
    let n = 1 << 12;
    let clients = 4usize;
    let requests = 32;
    let ops_per_request = 64;
    let schedules = zipf_client_schedules(n, clients, requests, ops_per_request, 0.5, 1.1, 7);
    println!("open-loop load: {clients} Poisson clients × {requests} req × {ops_per_request} ops");

    // One registry, handed to the server; every `ServerMetrics` event
    // lands here and can be read while the server is still running.
    let registry = Registry::new();
    let server = ConnServer::start(
        BatchDynamicConnectivity::new(n),
        ServerConfig::new()
            .batch_cap(1024)
            .coalesce_wait(Duration::from_micros(100))
            .queue_capacity(2 * clients)
            .metrics(registry.clone()),
    );

    // Submit on a fixed schedule (open loop — the offered rate does not
    // slow down when the server does); shed backpressure rejects.
    std::thread::scope(|scope| {
        for (c, sched) in schedules.iter().enumerate() {
            let server = &server;
            let arrivals = poisson_arrivals(sched.len(), 100_000, 7 + c as u64);
            scope.spawn(move || {
                let t0 = std::time::Instant::now();
                let mut tickets = Vec::new();
                for (ops, at_ns) in sched.iter().zip(arrivals) {
                    let due = Duration::from_nanos(at_ns).saturating_sub(t0.elapsed());
                    std::thread::sleep(due);
                    if let Ok(t) = server.submit_as(c as u64, ops.clone()) {
                        tickets.push(t);
                    }
                }
                for t in tickets {
                    t.wait().expect("round commits");
                }
            });
        }
    });

    // Live read, pre-join: the registry is shared, not a post-mortem.
    let live = registry.snapshot();
    let committed = live
        .get("dyncon_server_rounds_committed_total")
        .and_then(|m| m.value.as_counter())
        .unwrap_or(0);
    println!("  live snapshot while joining: {committed} rounds committed so far");

    let report = server.join();
    let snap = &report.metrics; // join froze the same registry
    let (depth, depth_max) = snap
        .get("dyncon_server_queue_depth")
        .and_then(|m| m.value.as_gauge())
        .expect("gauge registered");
    println!("  queue depth: {depth} now, {depth_max} high-water");
    for name in ["dyncon_server_round_size_ops", "dyncon_server_apply_ns"] {
        let h = snap
            .get(name)
            .and_then(|m| m.value.as_histogram())
            .expect("histogram registered");
        println!(
            "  {name}: count {}, p50 ≤ {}, p99 ≤ {}",
            h.count,
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0)
        );
    }

    println!("\n--- Prometheus text exposition (truncated) ---");
    for line in snap
        .render_prometheus()
        .lines()
        .filter(|l| !l.contains("_bucket"))
        .take(18)
    {
        println!("{line}");
    }
    println!("---\n");
}

fn metrics_do_not_perturb_determinism() {
    let n = 1 << 10;
    let clients = 4usize;
    let rounds = 6;
    let schedules = zipf_client_schedules(n, clients, rounds, 48, 0.4, 1.1, 21);
    let run = |registry: Option<Registry>| {
        let mut config = ServerConfig::new()
            .deterministic(true)
            .record_rounds(true)
            .queue_capacity(clients * rounds);
        if let Some(r) = registry {
            config = config.metrics(r);
        }
        let server = ConnServer::start(BatchDynamicConnectivity::new(n), config);
        for round in 0..rounds {
            for (c, sched) in schedules.iter().enumerate() {
                server.submit_as(c as u64, sched[round].clone()).unwrap();
            }
            server.seal_round();
        }
        server.join().rounds
    };
    let without = run(None);
    let with = run(Some(Registry::new()));
    assert_eq!(without, with);
    println!(
        "determinism: {} rounds with metrics == {} rounds without — byte-identical ✓",
        with.len(),
        without.len()
    );
}
