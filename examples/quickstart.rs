//! Quickstart: the batch-dynamic connectivity API in one minute.
//!
//! Construction goes through the workspace-wide `Builder`; operations go
//! through the `Connectivity`/`BatchDynamic` traits, whose mixed-op
//! `apply` validates vertex ids and returns typed errors.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dyncon_api::{BatchDynamic, Builder, DynConError, Op};
use dyncon_core::BatchDynamicConnectivity;

fn main() {
    // A graph over 10 fixed vertices (0..10), initially edgeless.
    let mut g: BatchDynamicConnectivity = Builder::new(10)
        .build()
        .expect("10 vertices is a valid configuration");

    // One mixed batch: ingest two triangles and a bridge, then probe the
    // result — no caller-managed phase splitting.
    let result = g
        .apply(&[
            Op::Insert(0, 1),
            Op::Insert(1, 2),
            Op::Insert(2, 0),
            Op::Insert(5, 6),
            Op::Insert(6, 7),
            Op::Insert(7, 5),
            Op::Insert(2, 5),
            Op::Query(0, 7),
            Op::Query(0, 9),
            Op::Query(3, 4),
        ])
        .expect("all vertex ids are in range");
    println!(
        "inserted {} edges; 0~7: {}  0~9: {}  3~4: {}",
        result.inserted, result.answers[0], result.answers[1], result.answers[2]
    );
    assert_eq!(result.answers, vec![true, false, false]);
    println!(
        "components: {} (the merged triangles + 4 isolated vertices)",
        g.num_components()
    );

    // Delete the bridge and a triangle edge in one batch: the triangles
    // separate, but 0–1 survives through the rest of its triangle — the
    // structure finds the replacement edge internally.
    let result = g
        .apply(&[
            Op::Delete(2, 5),
            Op::Query(0, 7),
            Op::Delete(0, 1),
            Op::Query(0, 1),
        ])
        .unwrap();
    assert_eq!(result.answers, vec![false, true]);
    println!(
        "after deleting the bridge and (0,1): 0~7: {}, 0~1: {} (replacement found)",
        result.answers[0], result.answers[1]
    );

    // Out-of-range vertices are typed errors at the API boundary, not
    // panics deep inside the Euler-tour forest — and validation happens
    // before anything mutates.
    match g.apply(&[Op::Insert(0, 3), Op::Query(4, 99)]) {
        Err(DynConError::VertexOutOfRange {
            vertex,
            num_vertices,
        }) => println!("rejected wholesale: vertex {vertex} out of range 0..{num_vertices}"),
        other => panic!("expected a typed error, got {other:?}"),
    }
    assert!(!g.has_edge(0, 3), "failed batches must not mutate");

    // The unchecked inherent API is still there for hot paths, and
    // queries only need a shared reference.
    let shared = &g;
    assert!(shared.connected(0, 2));
    assert_eq!(shared.component_size(5), 3);

    // Inspect the work the structure did.
    let s = g.stats();
    println!(
        "stats: {} inserted, {} deleted, {} queries, {} replacements committed, {} edge pushes",
        s.edges_inserted,
        s.edges_deleted,
        s.queries,
        s.replacements,
        s.total_pushes()
    );

    // The full invariant checker is available for debugging (also via the
    // trait's `check` hook).
    BatchDynamic::check(&g).expect("structure is internally consistent");
    println!("all invariants hold ✓");
}
