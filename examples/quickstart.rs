//! Quickstart: the batch-dynamic connectivity API in one minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dyncon_core::BatchDynamicConnectivity;

fn main() {
    // A graph over 10 fixed vertices (0..10), initially edgeless.
    let mut g = BatchDynamicConnectivity::new(10);

    // Batch-insert edges: two triangles and a bridge between them.
    g.batch_insert(&[(0, 1), (1, 2), (2, 0)]);
    g.batch_insert(&[(5, 6), (6, 7), (7, 5)]);
    g.batch_insert(&[(2, 5)]);

    // Batch connectivity queries (Algorithm 1).
    let answers = g.batch_connected(&[(0, 7), (0, 9), (3, 4)]);
    println!(
        "0~7: {}  0~9: {}  3~4: {}",
        answers[0], answers[1], answers[2]
    );
    assert_eq!(answers, vec![true, false, false]);
    println!(
        "components: {} (the merged triangles + 4 isolated vertices)",
        g.num_components()
    );

    // Delete the bridge: the triangles separate again.
    g.batch_delete(&[(2, 5)]);
    assert!(!g.connected(0, 7));
    println!("after deleting the bridge, 0~7: {}", g.connected(0, 7));

    // Delete a triangle edge: connectivity survives through the rest of
    // the triangle — the structure finds a replacement edge internally.
    g.batch_delete(&[(0, 1)]);
    assert!(
        g.connected(0, 1),
        "replacement edge keeps 0 and 1 connected"
    );
    println!(
        "after deleting (0,1), 0~1 still connected: {}",
        g.connected(0, 1)
    );

    // Inspect the work the structure did.
    let s = g.stats();
    println!(
        "stats: {} inserted, {} deleted, {} replacements committed, {} edge pushes",
        s.edges_inserted,
        s.edges_deleted,
        s.replacements,
        s.total_pushes()
    );

    // The full invariant checker is available for debugging.
    g.check_invariants()
        .expect("structure is internally consistent");
    println!("all invariants hold ✓");
}
