//! Streaming social-network ingestion — the workload that motivates the
//! paper's introduction: "millions of customers log on at the same time,
//! make phone calls at the same time".
//!
//! A skewed (R-MAT) interaction graph is ingested as a sliding window of
//! batches: every round a batch of fresh interactions arrives, the oldest
//! batch expires, and an analytics tier asks connectivity questions
//! ("are these two accounts in the same interaction cluster?") plus
//! community-size probes.
//!
//! ```text
//! cargo run --release --example social_stream
//! ```

use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::rmat;
use dyncon_primitives::SplitMix64;
use std::collections::VecDeque;
use std::time::Instant;

fn main() {
    let n = 1 << 14; // accounts
    let batch = 2_000; // interactions per round
    let window = 6; // rounds an interaction stays live
    let rounds = 30;

    println!("ingesting a {n}-account interaction stream, {batch} edges/round, window {window}");
    let mut g = BatchDynamicConnectivity::new(n);
    let mut live: VecDeque<Vec<(u32, u32)>> = VecDeque::new();
    let mut rng = SplitMix64::new(99);
    let t0 = Instant::now();
    let mut total_ops = 0usize;

    for round in 0..rounds {
        // Fresh skewed interactions (distinct seeds per round).
        let fresh: Vec<(u32, u32)> = rmat(n, batch, 1000 + round as u64)
            .into_iter()
            .filter(|&(u, v)| !g.has_edge(u, v))
            .collect();
        total_ops += fresh.len();
        g.batch_insert(&fresh);
        live.push_back(fresh);

        // Expire the oldest batch.
        if live.len() > window {
            let old = live.pop_front().unwrap();
            total_ops += old.len();
            g.batch_delete(&old);
        }

        // Analytics: random pair queries + a community-size probe.
        let queries: Vec<(u32, u32)> = (0..512)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let answers = g.batch_connected(&queries);
        total_ops += answers.len();
        let connected_pairs = answers.iter().filter(|&&a| a).count();

        if round % 5 == 4 {
            let hub = 0u32; // R-MAT's heaviest hub is vertex 0
            println!(
                "round {round:>2}: edges={:<6} components={:<6} hub-cluster={:<6} {}/512 random pairs connected",
                g.num_edges(),
                g.num_components(),
                g.component_size(hub),
                connected_pairs
            );
        }
    }

    let dt = t0.elapsed();
    println!(
        "\nprocessed {total_ops} operations in {:.2?} ({:.0} kops/s) — replacements: {}, level pushes: {}",
        dt,
        total_ops as f64 / dt.as_secs_f64() / 1000.0,
        g.stats().replacements,
        g.stats().total_pushes(),
    );
    g.check_invariants()
        .expect("invariants hold after the stream");
    println!("invariants hold ✓");
}
