//! Streaming social-network ingestion — the workload that motivates the
//! paper's introduction: "millions of customers log on at the same time,
//! make phone calls at the same time".
//!
//! A skewed (R-MAT) interaction graph is ingested as a sliding window of
//! batches. Every round is **one mixed-operation batch** through
//! `BatchDynamic::apply`: the expiring interactions, the fresh ones and
//! the analytics tier's connectivity probes travel together, in order —
//! exactly how a stream processor hands work to the structure.
//!
//! ```text
//! cargo run --release --example social_stream
//! ```

use dyncon_api::{BatchDynamic, Builder, Op};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::rmat;
use dyncon_primitives::SplitMix64;
use std::collections::VecDeque;
use std::time::Instant;

fn main() {
    let n = 1 << 14; // accounts
    let batch = 2_000; // interactions per round
    let window = 6; // rounds an interaction stays live
    let rounds = 30;

    println!("ingesting a {n}-account interaction stream, {batch} edges/round, window {window}");
    let mut g: BatchDynamicConnectivity = Builder::new(n).build().unwrap();
    let mut live: VecDeque<Vec<(u32, u32)>> = VecDeque::new();
    let mut rng = SplitMix64::new(99);
    let t0 = Instant::now();
    let mut total_ops = 0usize;

    for round in 0..rounds {
        // Assemble the round's mixed batch: expire, ingest, probe.
        let mut ops: Vec<Op> = Vec::with_capacity(2 * batch + 512);
        if live.len() >= window {
            for (u, v) in live.pop_front().unwrap() {
                ops.push(Op::Delete(u, v));
            }
        }
        let fresh: Vec<(u32, u32)> = rmat(n, batch, 1000 + round as u64)
            .into_iter()
            .filter(|&(u, v)| !g.has_edge(u, v))
            .collect();
        ops.extend(fresh.iter().map(|&(u, v)| Op::Insert(u, v)));
        live.push_back(fresh);
        for _ in 0..512 {
            ops.push(Op::Query(
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            ));
        }

        // One call applies the whole round.
        let result = g.apply(&ops).expect("stream vertices are in range");
        total_ops += ops.len();
        let connected_pairs = result.answers.iter().filter(|&&a| a).count();

        if round % 5 == 4 {
            let hub = 0u32; // R-MAT's heaviest hub is vertex 0
            println!(
                "round {round:>2}: edges={:<6} (+{} -{}) components={:<6} hub-cluster={:<6} {}/512 random pairs connected",
                g.num_edges(),
                result.inserted,
                result.deleted,
                g.num_components(),
                g.component_size(hub),
                connected_pairs
            );
        }
    }

    let dt = t0.elapsed();
    let stats = g.stats();
    println!(
        "\nprocessed {total_ops} operations in {:.2?} ({:.0} kops/s) — replacements: {}, level pushes: {}",
        dt,
        total_ops as f64 / dt.as_secs_f64() / 1000.0,
        stats.replacements,
        stats.total_pushes(),
    );
    BatchDynamic::check(&g).expect("invariants hold after the stream");
    println!("invariants hold ✓");
}
