//! Tracing + telemetry demo: watch a live service from the outside.
//!
//! A `ConnServer` runs closed-loop Zipf traffic with a `TraceRecorder`
//! attached and `dyncon_trace::serve_telemetry` bound on a loopback
//! port. While rounds commit, a client thread scrapes the endpoint the
//! way Prometheus (or a human with `curl`) would — `GET /metrics` for
//! the text exposition, `GET /trace` for Chrome-trace JSON you can drop
//! into `chrome://tracing` or Perfetto. After the run, the slowest
//! round's stage breakdown answers "where did that round's time go?"
//! without any external tooling.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_metrics::Registry;
use dyncon_server::{ConnServer, ServerConfig};
use dyncon_trace::{serve_telemetry, TraceConfig, TraceRecorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One `curl`-shaped request: GET `path`, return the response body.
fn scrape(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("endpoint reachable");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request sent");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    match response.split_once("\r\n\r\n") {
        Some((_headers, body)) => body.to_string(),
        None => response,
    }
}

fn main() {
    let n = 1 << 12;
    let clients = 4usize;
    let requests = 24;
    let schedules = zipf_client_schedules(n, clients, requests, 64, 0.5, 1.1, 33);

    // One registry + one recorder, shared by the server and the
    // endpoint. Every round over 100 µs lands in the slow-round log.
    let registry = Registry::new();
    let recorder = TraceRecorder::with_config(
        TraceConfig::new().slow_round_threshold(Duration::from_micros(100)),
    );
    let telemetry =
        serve_telemetry("127.0.0.1:0", registry.clone(), recorder.clone()).expect("endpoint binds");
    let addr = telemetry.local_addr();
    println!("telemetry endpoint listening on http://{addr}");
    println!("  (try: curl http://{addr}/metrics | head)");

    let server = ConnServer::start(
        BatchDynamicConnectivity::new(n),
        ServerConfig::new()
            .batch_cap(1024)
            .coalesce_wait(Duration::from_micros(100))
            .queue_capacity(2 * clients)
            .metrics(registry)
            .trace(recorder.clone()),
    );

    // Clients drive load while a scraper thread observes from outside —
    // the endpoint never blocks the writer.
    std::thread::scope(|scope| {
        let scraper = scope.spawn(move || {
            let mut metrics_lines = 0usize;
            let mut trace_bytes = 0usize;
            for _ in 0..10 {
                metrics_lines = scrape(addr, "/metrics").lines().count();
                trace_bytes = scrape(addr, "/trace").len();
                std::thread::sleep(Duration::from_millis(2));
            }
            (metrics_lines, trace_bytes)
        });
        for (c, sched) in schedules.iter().enumerate() {
            let server = &server;
            scope.spawn(move || {
                for ops in sched {
                    let ticket = server
                        .submit_blocking_as(c as u64, ops.clone())
                        .expect("service open");
                    ticket.wait().expect("round commits");
                }
            });
        }
        let (metrics_lines, trace_bytes) = scraper.join().unwrap();
        println!("scraped mid-run: /metrics {metrics_lines} lines, /trace {trace_bytes} bytes");
    });

    let report = server.join();
    println!(
        "served {} rounds / {} ops; recorder captured {} spans across {} rounds",
        report.rounds_committed,
        report.ops_committed,
        recorder.recorded(),
        recorder.rounds_completed()
    );

    // Post-mortem attribution, no endpoint needed: the report carries
    // the slowest round's stage breakdown.
    let slowest = report.slowest_round.expect("tracing was on");
    println!("\nslowest round, stage by stage:");
    print!("{}", slowest.render_text());

    let slow = recorder.slow_round_log();
    println!(
        "slow-round log: {} round(s) over the 100 µs threshold ({} captured lifetime)",
        slow.rounds.len(),
        slow.captured
    );

    // One last scrape each, now that the run is complete.
    let trace_json = scrape(addr, "/trace");
    assert!(trace_json.contains("traceEvents"));
    println!(
        "\nfinal /trace: {} bytes of Chrome-trace JSON (chrome://tracing, Perfetto)",
        trace_json.len()
    );
    let slow_text = scrape(addr, "/slow");
    println!("final /slow:\n{slow_text}");

    telemetry.close();
    telemetry.join();
}
