//! Head-to-head: Algorithm 4 vs Algorithm 5 vs sequential HDT vs static
//! recompute on one identical workload, with the instrumentation counters
//! that expose the paper's round/phase structure.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use dyncon_bench::{replay, replay_hdt};
use dyncon_core::{BatchDynamicConnectivity, DeletionAlgorithm};
use dyncon_graphgen::{erdos_renyi, Batch, UpdateStream};
use dyncon_hdt::HdtConnectivity;
use dyncon_spanning::StaticRecompute;
use std::time::Instant;

fn main() {
    let n = 1 << 13;
    let m = 2 * n;
    let edges = erdos_renyi(n, m, 21);
    let stream = UpdateStream::insert_then_delete(&edges, 1024, 512, 22);
    let ops = stream.total_ops();
    let (del_batches, delta) = stream.deletion_delta();
    println!(
        "workload: n = {n}, m = {m}; insert in 1024-batches, delete in {del_batches} batches (Δ = {delta:.0}); {ops} ops total\n"
    );

    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        let mut g = BatchDynamicConnectivity::with_algorithm(n, algo);
        let dt = replay(&mut g, &stream);
        let s = g.stats();
        println!(
            "{algo:?}:\n  total {dt:.2?} ({:.0} ns/op)\n  levels searched {}, rounds {}, phases {} (max {} per level)\n  examined {}, pushes {} (tree {}), replacements {}",
            dt.as_secs_f64() * 1e9 / ops as f64,
            s.levels_searched,
            s.rounds,
            s.phases,
            s.max_phases_in_level,
            s.edges_examined,
            s.total_pushes(),
            s.tree_pushes,
            s.replacements,
        );
        assert_eq!(g.num_components(), n);
    }

    let mut h = HdtConnectivity::new(n);
    let dt = replay_hdt(&mut h, &stream);
    println!(
        "HDT (sequential, one op at a time):\n  total {dt:.2?} ({:.0} ns/op), {} candidate edges examined",
        dt.as_secs_f64() * 1e9 / ops as f64,
        h.edges_examined
    );
    assert_eq!(h.num_components(), n);

    // Static recompute pays a full relabel per batch boundary.
    let mut s = StaticRecompute::new(n);
    let t = Instant::now();
    for b in &stream.batches {
        match b {
            Batch::Insert(v) => s.batch_insert(v),
            Batch::Delete(v) => s.batch_delete(v),
            Batch::Query(v) => {
                s.batch_connected(v);
            }
        }
        // Force the per-batch relabel the worst case implies.
        s.batch_connected(&[(0, 1)]);
    }
    let dt = t.elapsed();
    println!(
        "StaticRecompute (relabel per batch):\n  total {dt:.2?} ({:.0} ns/op)",
        dt.as_secs_f64() * 1e9 / ops as f64
    );
}
