//! Head-to-head over the unified trait: Algorithm 4 vs Algorithm 5 vs
//! sequential HDT vs static recompute, all driven through **one** replay
//! routine on `&mut dyn BatchDynamic` — no per-backend adapter glue —
//! followed by the instrumentation counters that expose the paper's
//! round/phase structure.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use dyncon_api::{BatchDynamic, Builder, DeletionAlgorithm};
use dyncon_bench::replay;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{erdos_renyi, Batch, UpdateStream};
use dyncon_hdt::HdtConnectivity;
use dyncon_spanning::StaticRecompute;

/// Interleave a query batch after every mutation batch so the static
/// baseline pays its per-round relabel (its honest worst case) and every
/// backend answers the same probes.
fn with_queries(stream: UpdateStream, n: usize, per_batch: usize) -> UpdateStream {
    let mut out = UpdateStream::default();
    for (i, b) in stream.batches.into_iter().enumerate() {
        out.batches.push(b);
        out.batches.push(Batch::Query(UpdateStream::random_queries(
            n,
            per_batch,
            0x9e00 + i as u64,
        )));
    }
    out
}

fn main() {
    let n = 1 << 13;
    let m = 2 * n;
    let edges = erdos_renyi(n, m, 21);
    let stream = with_queries(
        UpdateStream::insert_then_delete(&edges, 1024, 512, 22),
        n,
        64,
    );
    let ops = stream.total_ops();
    let (del_batches, delta) = stream.deletion_delta();
    println!(
        "workload: n = {n}, m = {m}; insert in 1024-batches, delete in {del_batches} batches (Δ = {delta:.0}), 64 queries per batch; {ops} ops total\n"
    );

    let builder = Builder::new(n);
    let backends: Vec<Box<dyn BatchDynamic>> = vec![
        Box::new(
            builder
                .clone()
                .algorithm(DeletionAlgorithm::Simple)
                .build::<BatchDynamicConnectivity>()
                .unwrap(),
        ),
        Box::new(
            builder
                .clone()
                .algorithm(DeletionAlgorithm::Interleaved)
                .build::<BatchDynamicConnectivity>()
                .unwrap(),
        ),
        Box::new(builder.build::<HdtConnectivity>().unwrap()),
        Box::new(builder.build::<StaticRecompute>().unwrap()),
    ];

    for mut g in backends {
        let dt = replay(g.as_mut(), &stream);
        println!(
            "{:<28} total {dt:>9.2?}  ({:.0} ns/op)",
            g.backend_name(),
            dt.as_secs_f64() * 1e9 / ops as f64,
        );
        assert_eq!(g.num_components(), n, "every edge was deleted again");
        g.check().expect("backend invariants hold after replay");
    }

    // Deep dive: the round/phase counters behind the two deletion
    // algorithms (Theorems 5 vs 7).
    println!("\ninstrumentation (replayed once more per algorithm):");
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        let mut g: BatchDynamicConnectivity = Builder::new(n).algorithm(algo).build().unwrap();
        replay(&mut g, &stream);
        let s = g.stats();
        println!(
            "{algo:?}:\n  levels searched {}, rounds {}, phases {} (max {} per level)\n  examined {}, pushes {} (tree {}), replacements {}",
            s.levels_searched,
            s.rounds,
            s.phases,
            s.max_phases_in_level,
            s.edges_examined,
            s.total_pushes(),
            s.tree_pushes,
            s.replacements,
        );
    }
}
