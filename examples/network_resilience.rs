//! Network resilience what-if analysis on a data-center-style mesh.
//!
//! A 2-D torus-ish fabric (grid plus random shortcut links) is subjected
//! to correlated failure waves — whole cable bundles (batches of edges)
//! going down at once — followed by partial repairs. After every wave the
//! operator asks: is the fabric still fully connected? Which racks are
//! stranded, and how big is the largest surviving island?
//!
//! Each wave is one mixed batch through `BatchDynamic::apply`: the link
//! failures and the reachability probes that assess them travel together.
//! This exercises exactly the regime the batch-dynamic structure is built
//! for: large correlated deletion batches with interleaved queries.
//!
//! ```text
//! cargo run --release --example network_resilience
//! ```

use dyncon_api::{BatchDynamic, Builder, Op};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{erdos_renyi, grid2d};
use dyncon_primitives::SplitMix64;
use std::time::Instant;

fn main() {
    let rows = 96;
    let cols = 96;
    let n = rows * cols;
    // Fabric = grid mesh + sparse long-range shortcuts.
    let mut fabric = grid2d(rows, cols);
    let grid_edges = fabric.len();
    let shortcuts: Vec<(u32, u32)> = erdos_renyi(n, n / 8, 7)
        .into_iter()
        .filter(|e| !fabric.contains(e))
        .collect();
    fabric.extend_from_slice(&shortcuts);

    println!(
        "fabric: {n} racks, {grid_edges} mesh links + {} shortcuts",
        shortcuts.len()
    );
    let mut g: BatchDynamicConnectivity = Builder::new(n).build().unwrap();
    let t = Instant::now();
    g.batch_insert(&fabric);
    println!(
        "built in {:.2?}; fully connected: {}",
        t.elapsed(),
        g.num_components() == 1
    );
    assert_eq!(g.num_components(), 1);

    let mut rng = SplitMix64::new(13);
    let mut down: Vec<(u32, u32)> = Vec::new();

    for wave in 1..=6 {
        // A correlated failure wave: every link in a random band of rows
        // fails (a "melted bundle"), plus random background failures.
        let band = rng.next_below(rows as u64 - 4) as usize;
        let mut failures: Vec<(u32, u32)> = fabric
            .iter()
            .copied()
            .filter(|&(u, _)| {
                let r = u as usize / cols;
                (band..band + 2).contains(&r)
            })
            .collect();
        for &e in fabric.iter() {
            if rng.next_below(50) == 0 {
                failures.push(e);
            }
        }
        failures.retain(|e| !down.contains(e) && g.has_edge(e.0, e.1));

        // One mixed batch: the failures plus the impact-assessment probes.
        let mut ops: Vec<Op> = failures.iter().map(|&(u, v)| Op::Delete(u, v)).collect();
        for _ in 0..256 {
            ops.push(Op::Query(0, rng.next_below(n as u64) as u32));
        }
        let t = Instant::now();
        let result = g.apply(&ops).expect("rack ids are in range");
        let dt = t.elapsed();
        down.extend_from_slice(&failures);

        let comps = g.num_components();
        let reachable = result.answers.iter().filter(|&&a| a).count();
        println!(
            "wave {wave}: {} links down in {dt:.2?} → {comps} islands; {reachable}/256 probed racks reach rack 0; rack-0 island = {}",
            result.deleted,
            g.component_size(0)
        );

        // Repair crew: bring back a random half of everything down.
        let mut repair = Vec::new();
        let mut still_down = Vec::new();
        for &e in &down {
            if rng.next_below(2) == 0 {
                repair.push(e);
            } else {
                still_down.push(e);
            }
        }
        let t = Instant::now();
        g.batch_insert(&repair);
        println!(
            "        repaired {} links in {:.2?} → {} islands",
            repair.len(),
            t.elapsed(),
            g.num_components()
        );
        down = still_down;
    }

    // Full repair at the end restores the fabric.
    g.batch_insert(&down);
    assert_eq!(g.num_components(), 1, "full repair reconnects the fabric");
    println!("\nfull repair: fabric connected again ✓");
    BatchDynamic::check(&g).expect("invariants hold");
}
