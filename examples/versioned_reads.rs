//! MVCC versioned reads demo: non-blocking snapshot reads against a
//! live writer.
//!
//! Every sealed commit round gets a `Version`; the server retains a
//! bounded window of label snapshots and hands out [`ReadView`]s that
//! answer connectivity questions **as of** a version — without ever
//! blocking the writer. The demo walks the full surface:
//!
//! 1. time travel: views of old versions keep answering as the graph
//!    they saw, even after later rounds rewired it;
//! 2. the reader pool: `read_async` runs queries off the writer thread;
//! 3. read-your-writes: `SubmitOptions::min_version` fences a request
//!    behind a version so it observes an earlier write;
//! 4. bounded retention: evicted versions fail with a typed error that
//!    names the window.
//!
//! ```text
//! cargo run --release --example versioned_reads
//! ```

use dyncon_api::{Connectivity, Op, ReadView, VersionedRead};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_server::{ConnServer, DynConError, ServerConfig, SubmitOptions};

fn main() {
    let n = 16;
    let server = ConnServer::start_versioned(
        BatchDynamicConnectivity::new(n),
        ServerConfig::new()
            .deterministic(true)
            .retain_views(4)
            .reader_threads(2),
    );

    // Round 0 builds a path 0-1-2-3; round 1 cuts it in the middle;
    // round 2 bridges the halves again through vertex 8.
    let rounds: Vec<Vec<Op>> = vec![
        vec![Op::Insert(0, 1), Op::Insert(1, 2), Op::Insert(2, 3)],
        vec![Op::Delete(1, 2)],
        vec![Op::Insert(1, 8), Op::Insert(8, 2)],
    ];
    let mut views: Vec<ReadView> = Vec::new();
    for ops in &rounds {
        let ticket = server.submit_as(0, ops.clone()).unwrap();
        server.seal_round();
        let result = ticket.wait().unwrap();
        // A committed round's view is immediately available.
        let view = server.read_view_at(result.version).unwrap();
        println!(
            "committed version {}: {} edges, {} components",
            view.version(),
            view.edges().len(),
            view.num_components()
        );
        views.push(view);
    }

    // 1. Time travel: each retained view answers as of its version.
    assert!(views[0].connected(0, 3), "v0: the path is whole");
    assert!(!views[1].connected(0, 3), "v1: the cut split it");
    assert!(views[2].connected(0, 3), "v2: bridged through 8");
    println!("time travel ✓  (v0 connected, v1 cut, v2 bridged — all observable at once)");

    // 2. The reader pool: snapshot queries run off the writer thread.
    let handle = server.read_async(|view| (view.version(), view.component_size(0)));
    let (version, size) = handle.wait().unwrap().unwrap();
    println!("reader pool ✓  (async read of v{version}: component of 0 has {size} vertices)");

    // 3. Read-your-writes: fence a query behind the write's version.
    let write = server.submit_as(0, vec![Op::Insert(3, 9)]).unwrap();
    server.seal_round();
    let committed = write.wait().unwrap();
    let fenced = server
        .submit_with(
            vec![Op::Query(0, 9)],
            SubmitOptions::new()
                .blocking(true)
                .min_version(committed.version),
        )
        .unwrap();
    server.seal_round();
    let answer = fenced.wait().unwrap();
    assert_eq!(answer.answers, vec![true]);
    println!(
        "read-your-writes ✓  (query fenced at v{} saw the edge, committed as v{})",
        committed.version, answer.version
    );

    // 4. Bounded retention: version 0 has been evicted by now
    // (retain_views = 4, five rounds committed).
    match server.read_view_at(0) {
        Err(DynConError::UnknownVersion {
            requested,
            oldest,
            newest,
        }) => println!(
            "bounded retention ✓  (v{requested} evicted; window is [v{oldest}, v{newest}])"
        ),
        other => panic!("expected UnknownVersion, got {other:?}"),
    }

    // The stale views held above are unaffected by eviction: they share
    // the snapshot payload and stay valid as long as the handle lives.
    assert!(views[0].connected(0, 3));
    println!("held views outlive eviction ✓");
    server.join();
}
