//! Sharded serving demo: partition → decompose → recombine → verify.
//!
//! A `ShardedServer` partitions the vertex universe across 4 hash
//! shards, each behind its own single-writer commit pipeline, and
//! recombines cross-shard reachability through the contracted boundary
//! graph. Concurrent Zipf clients drive mixed-op traffic; every answer
//! is then re-checked against a single unsharded oracle applying the
//! exact same rounds, and the coordinator's own metrics show how much
//! recombination work the partition induced.
//!
//! ```text
//! cargo run --release --example sharded_service
//! ```

use dyncon_api::{BatchDynamic, Connectivity, ExportEdges};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_shard::{ShardConfig, ShardMapKind, ShardedServer};
use dyncon_spanning::NaiveDynamicGraph;

const N: usize = 1 << 12;
const SHARDS: usize = 4;
const CLIENTS: usize = 4;
const ROUNDS: usize = 8;
const OPS_PER_REQUEST: usize = 48;

fn main() {
    let schedules = zipf_client_schedules(N, CLIENTS, ROUNDS, OPS_PER_REQUEST, 0.5, 1.1, 7);

    println!("start: {N} vertices across {SHARDS} hash shards, {CLIENTS} clients");
    let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
        N,
        ShardConfig::new()
            .shards(SHARDS)
            .kind(ShardMapKind::Hash)
            .deterministic(true)
            .record_rounds(true)
            .queue_capacity(CLIENTS * ROUNDS),
    )
    .unwrap();

    // Deterministic mode: clients submit concurrently, one sealer thread
    // commits; admitted requests are ordered by (client, seq) so the
    // round stream is reproducible.
    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (c, sched) in schedules.iter().enumerate() {
            let (server, done) = (&server, &done);
            scope.spawn(move || {
                for ops in sched {
                    let ticket = server.submit_blocking_as(c as u64, ops.clone()).unwrap();
                    ticket.wait().unwrap();
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        let (server, done) = (&server, &done);
        scope.spawn(move || {
            while done.load(std::sync::atomic::Ordering::Relaxed) < CLIENTS {
                std::thread::sleep(std::time::Duration::from_micros(200));
                server.seal_round();
            }
        });
    });

    // Mid-flight global reads go through `inspect`: the closure runs on
    // the coordinator between rounds and recombines per-shard state.
    let (components, edges) = server
        .inspect(|b| (b.num_components(), b.export_edges().len()))
        .unwrap();
    println!("state: {edges} edges, {components} global components");

    let report = server.join().unwrap();
    println!(
        "served: {} rounds, {} ops; shards committed {} sub-rounds",
        report.rounds_committed,
        report.ops_committed,
        report
            .shards
            .iter()
            .map(|s| s.rounds_committed)
            .sum::<u64>(),
    );
    let metric = |name: &str| report.metrics.get(name).cloned();
    if let Some(m) = metric("dyncon_shard_boundary_rebuilds_total") {
        println!(
            "boundary graph: {} rebuilds, {} contracted edges total",
            m.value.as_counter().unwrap_or(0),
            metric("dyncon_shard_boundary_ops")
                .and_then(|m| m.value.as_histogram().map(|h| h.sum))
                .unwrap_or(0),
        );
    }

    // Verify: an unsharded oracle applying the recorded rounds must
    // produce byte-identical results — the partition, the per-shard
    // pipelines and the boundary graph are all invisible in the answers.
    let mut oracle = NaiveDynamicGraph::new(N);
    for record in &report.rounds {
        let got = oracle.apply(&record.ops).unwrap();
        assert_eq!(got, record.result, "round {} diverged", record.round);
    }
    println!(
        "verified: all {} rounds byte-identical to the unsharded oracle ✓",
        report.rounds.len()
    );

    // The per-shard backends come home at shutdown; their edge counts
    // sum to the oracle's intra-shard edges, the cross store holds the
    // rest.
    let local: usize = report
        .shards
        .iter()
        .map(|s| s.backend.export_edges().len())
        .sum();
    let cross = report.cross.backend.export_edges().len();
    assert_eq!(local + cross, oracle.export_edges().len());
    println!(
        "edge partition: {local} intra-shard + {cross} cross-shard = {} total",
        local + cross
    );
    println!("done: sharded serving is observationally identical to one backend");
}
