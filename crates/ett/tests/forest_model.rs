//! Randomized model testing of the Euler tour forest: batches of links and
//! cuts mirrored into a reference edge set, full validation every round.

use dyncon_ett::EulerTourForest;
use dyncon_primitives::{FxHashMap, SplitMix64};

struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

struct Model {
    n: usize,
    edges: Vec<(u32, u32)>,
    at_level: Vec<(u32, u32)>,
    nontree: FxHashMap<u32, u64>,
}

impl Model {
    fn dsu(&self) -> Dsu {
        let mut d = Dsu::new(self.n);
        for &(u, v) in &self.edges {
            d.union(u, v);
        }
        d
    }
}

fn norm(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

/// A random cycle-free batch of new edges.
fn gen_links(model: &Model, rng: &mut SplitMix64, max_k: usize) -> Vec<(u32, u32)> {
    let mut dsu = model.dsu();
    let mut batch = Vec::new();
    let attempts = 1 + rng.next_below(max_k as u64) as usize * 2;
    for _ in 0..attempts {
        if batch.len() >= max_k {
            break;
        }
        let u = rng.next_below(model.n as u64) as u32;
        let v = rng.next_below(model.n as u64) as u32;
        if u != v && dsu.union(u, v) {
            batch.push(norm(u, v));
        }
    }
    batch
}

fn gen_cuts(model: &Model, rng: &mut SplitMix64, max_k: usize) -> Vec<(u32, u32)> {
    let mut picked = Vec::new();
    for &e in &model.edges {
        if picked.len() < max_k && rng.next_below(3) == 0 {
            picked.push(e);
        }
    }
    picked
}

fn run_model(seed: u64, n: usize, rounds: usize, max_k: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut f = EulerTourForest::new(n, seed ^ 0x5A5A);
    let mut model = Model {
        n,
        edges: Vec::new(),
        at_level: Vec::new(),
        nontree: FxHashMap::default(),
    };

    for round in 0..rounds {
        // Links.
        let links = gen_links(&model, &mut rng, max_k);
        if !links.is_empty() {
            let flags: Vec<bool> = links.iter().map(|_| rng.next_below(2) == 0).collect();
            f.batch_link(&links, &flags);
            for (i, &e) in links.iter().enumerate() {
                model.edges.push(e);
                if flags[i] {
                    model.at_level.push(e);
                }
            }
        }
        // Non-tree count updates.
        if round % 2 == 0 {
            let mut ups = Vec::new();
            for _ in 0..1 + rng.next_below(6) {
                let v = rng.next_below(n as u64) as u32;
                let c = rng.next_below(5);
                ups.push((v, c));
            }
            ups.sort_unstable_by_key(|p| p.0);
            ups.dedup_by_key(|p| p.0);
            for &(v, c) in &ups {
                model.nontree.insert(v, c);
            }
            f.set_nontree_counts(&ups);
        }
        // Tree flag flips.
        if round % 3 == 2 && !model.edges.is_empty() {
            let e = model.edges[rng.next_below(model.edges.len() as u64) as usize];
            let now_set = model.at_level.contains(&e);
            f.set_tree_flags(&[e], !now_set);
            if now_set {
                model.at_level.retain(|&x| x != e);
            } else {
                model.at_level.push(e);
            }
        }
        // Cuts.
        let cuts = gen_cuts(&model, &mut rng, max_k);
        if !cuts.is_empty() {
            f.batch_cut(&cuts);
            model.edges.retain(|e| !cuts.contains(e));
            model.at_level.retain(|e| !cuts.contains(e));
        }
        // Validate everything.
        if let Err(e) = f.validate(&model.edges, &model.at_level, &model.nontree) {
            panic!("seed {seed} round {round}: {e}");
        }
        // Spot-check queries against the DSU.
        let mut dsu = model.dsu();
        for _ in 0..10 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            assert_eq!(
                f.connected(u, v),
                dsu.find(u) == dsu.find(v),
                "seed {seed} round {round}: connected({u},{v})"
            );
        }
        // Component sizes.
        let mut sizes: FxHashMap<u32, u64> = FxHashMap::default();
        for v in 0..n as u32 {
            *sizes.entry(dsu.find(v)).or_default() += 1;
        }
        for _ in 0..5 {
            let v = rng.next_below(n as u64) as u32;
            assert_eq!(f.component_size(v), sizes[&dsu.find(v)]);
        }
    }
}

#[test]
fn model_small_graphs() {
    for seed in 0..6 {
        run_model(seed, 12, 25, 4);
    }
}

#[test]
fn model_medium_graph() {
    run_model(100, 120, 20, 24);
}

#[test]
fn model_larger_batches() {
    run_model(200, 600, 10, 200);
}

#[test]
fn star_and_path_stress() {
    // Deterministic worst cases for the batch construction: all edges share
    // one endpoint (star), then a long chain in one batch, then cut all.
    let n = 64u32;
    let mut f = EulerTourForest::new(n as usize, 9);
    let star: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
    f.batch_link(&star, &vec![true; star.len()]);
    assert_eq!(f.component_size(0), n as u64);
    let nontree: FxHashMap<u32, u64> = FxHashMap::default();
    f.validate(&star, &star, &nontree).unwrap();
    f.batch_cut(&star);
    f.validate(&[], &[], &nontree).unwrap();
    for v in 1..n {
        assert!(!f.connected(0, v));
    }

    let path: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
    f.batch_link(&path, &vec![false; path.len()]);
    assert!(f.connected(0, n - 1));
    f.validate(&path, &[], &nontree).unwrap();
    // Cut every other edge: components of size 2.
    let half: Vec<(u32, u32)> = path.iter().copied().step_by(2).collect();
    let rest: Vec<(u32, u32)> = path.iter().copied().filter(|e| !half.contains(e)).collect();
    f.batch_cut(&rest);
    f.validate(&half, &[], &nontree).unwrap();
    assert!(f.connected(0, 1));
    assert!(!f.connected(1, 2));
}

#[test]
fn relink_after_cut_reuses_arena() {
    let mut f = EulerTourForest::new(8, 11);
    for _ in 0..30 {
        f.batch_link(&[(0, 1), (1, 2), (2, 3)], &[true; 3]);
        assert!(f.connected(0, 3));
        f.batch_cut(&[(1, 2)]);
        assert!(!f.connected(0, 3));
        assert!(f.connected(0, 1));
        f.batch_cut(&[(0, 1), (2, 3)]);
    }
    // Arena stayed bounded thanks to the free list.
    assert!(f.skiplist().arena_len() < 64);
}
