//! Property-based testing of the Euler tour forest: arbitrary link/cut
//! scripts (filtered to be legal) against a DSU model.

use dyncon_ett::EulerTourForest;
use dyncon_primitives::FxHashMap;
use proptest::prelude::*;

const N: u32 = 16;

#[derive(Clone, Debug)]
enum Step {
    Link(Vec<(u32, u32)>),
    Cut(Vec<u8>), // indices into the current edge list (mod len)
    Counts(Vec<(u32, u64)>),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        prop::collection::vec((0..N, 0..N), 1..6).prop_map(Step::Link),
        prop::collection::vec(any::<u8>(), 1..6).prop_map(Step::Cut),
        prop::collection::vec((0..N, 0u64..4), 1..5).prop_map(Step::Counts),
    ]
}

struct Dsu {
    p: Vec<u32>,
}
impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            p: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.p[x as usize] != x {
            self.p[x as usize] = self.p[self.p[x as usize] as usize];
            x = self.p[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.p[ra as usize] = rb;
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scripted_forest_operations(steps in prop::collection::vec(step_strategy(), 1..20)) {
        let mut f = EulerTourForest::new(N as usize, 5);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
        for step in &steps {
            match step {
                Step::Link(candidates) => {
                    // Keep only edges that stay a forest (batch-internal too).
                    let mut dsu = Dsu::new(N as usize);
                    for &(u, v) in &edges {
                        dsu.union(u, v);
                    }
                    let mut batch = Vec::new();
                    for &(u, v) in candidates {
                        let (u, v) = (u.min(v), u.max(v));
                        if u != v && dsu.union(u, v) {
                            batch.push((u, v));
                        }
                    }
                    if !batch.is_empty() {
                        let flags: Vec<bool> = batch.iter().map(|&(u, _)| u % 2 == 0).collect();
                        f.batch_link(&batch, &flags);
                        edges.extend_from_slice(&batch);
                    }
                }
                Step::Cut(picks) => {
                    let mut batch: Vec<(u32, u32)> = Vec::new();
                    for &p in picks {
                        if edges.is_empty() {
                            break;
                        }
                        let e = edges[p as usize % edges.len()];
                        if !batch.contains(&e) {
                            batch.push(e);
                        }
                    }
                    if !batch.is_empty() {
                        f.batch_cut(&batch);
                        edges.retain(|e| !batch.contains(e));
                    }
                }
                Step::Counts(ups) => {
                    let mut batch: Vec<(u32, u64)> = Vec::new();
                    for &(v, c) in ups {
                        if !batch.iter().any(|&(w, _)| w == v) {
                            batch.push((v, c));
                            counts.insert(v, c);
                        }
                    }
                    f.set_nontree_counts(&batch);
                }
            }
            // Full validation against ground truth every step.
            let at_level: Vec<(u32, u32)> =
                edges.iter().copied().filter(|&(u, _)| u % 2 == 0).collect();
            f.validate(&edges, &at_level, &counts).map_err(TestCaseError::fail)?;
            // Connectivity agrees with a DSU.
            let mut dsu = Dsu::new(N as usize);
            for &(u, v) in &edges {
                dsu.union(u, v);
            }
            for u in 0..N {
                for v in (u + 1)..N {
                    prop_assert_eq!(f.connected(u, v), dsu.find(u) == dsu.find(v));
                }
            }
        }
    }
}
