//! Whole-forest consistency checking against an expected edge set.

use crate::forest::{EulerTourForest, Payload};
use dyncon_primitives::FxHashMap;

impl EulerTourForest {
    /// Verify the forest against ground truth:
    ///
    /// * `expected_edges` — exactly the tree edges that should be linked;
    /// * `expected_at_level` — the subset whose `tree_edges` flag is set;
    /// * `expected_nontree` — per-vertex non-tree counts (absent = 0).
    ///
    /// Checks connectivity partition, Euler tour validity (closed walks
    /// with each tree edge traversed exactly once per direction and each
    /// vertex's loop node appearing exactly once), augmented aggregates,
    /// and full skip-list structural integrity.
    pub fn validate(
        &self,
        expected_edges: &[(u32, u32)],
        expected_at_level: &[(u32, u32)],
        expected_nontree: &FxHashMap<u32, u64>,
    ) -> Result<(), String> {
        let n = self.num_vertices();
        if self.num_edges() != expected_edges.len() {
            return Err(format!(
                "edge count {} != expected {}",
                self.num_edges(),
                expected_edges.len()
            ));
        }
        for &(u, v) in expected_edges {
            if !self.has_edge(u, v) {
                return Err(format!("missing edge ({u},{v})"));
            }
        }
        // Ground-truth components via a tiny DSU.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(u, v) in expected_edges {
            let (a, b) = (find(&mut parent, u), find(&mut parent, v));
            if a == b {
                return Err(format!("expected edges contain a cycle at ({u},{v})"));
            }
            parent[a as usize] = b;
        }
        // Partition agreement.
        let mut root_to_rep: FxHashMap<u32, u64> = FxHashMap::default();
        let mut rep_seen: FxHashMap<u64, u32> = FxHashMap::default();
        for v in 0..n as u32 {
            let root = find(&mut parent, v);
            let rep = self.find_rep(v);
            match root_to_rep.entry(root) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    if let Some(&other_root) = rep_seen.get(&rep) {
                        return Err(format!(
                            "components {root} and {other_root} share rep {rep}"
                        ));
                    }
                    rep_seen.insert(rep, root);
                    e.insert(rep);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != rep {
                        return Err(format!(
                            "vertex {v}: rep {rep} != component rep {}",
                            e.get()
                        ));
                    }
                }
            }
        }
        // Per-component tour validity + aggregates + skip list integrity.
        let mut comp_members: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for v in 0..n as u32 {
            comp_members
                .entry(find(&mut parent, v))
                .or_default()
                .push(v);
        }
        let mut at_level: std::collections::HashSet<(u32, u32)> = expected_at_level
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        let mut comp_of = |v: u32| find(&mut parent, v);
        let mut cycles_for_sl: Vec<Vec<u32>> = Vec::new();
        for (&root, members) in &comp_members {
            let v0 = members[0];
            if self.vertex_node(v0).is_none() {
                if members.len() > 1 {
                    return Err(format!("component {root} has >1 member but no nodes"));
                }
                continue;
            }
            self.validate_tour(v0, members, &mut at_level, &mut comp_of, expected_nontree)?;
            // Record the actual node cycle for skip-list validation.
            let start = self.vertex_node(v0).unwrap();
            let mut ids = vec![start];
            let mut cur = self.skiplist().successor(start);
            while cur != start {
                ids.push(cur);
                cur = self.skiplist().successor(cur);
            }
            cycles_for_sl.push(ids);
        }
        self.skiplist()
            .validate(&cycles_for_sl)
            .map_err(|e| format!("skip list: {e}"))?;
        Ok(())
    }

    fn validate_tour(
        &self,
        v0: u32,
        members: &[u32],
        at_level: &mut std::collections::HashSet<(u32, u32)>,
        comp_of: &mut impl FnMut(u32) -> u32,
        expected_nontree: &FxHashMap<u32, u64>,
    ) -> Result<(), String> {
        let tour = self.tour(v0);
        let root = comp_of(v0);
        // Closed-walk property: consecutive elements share a vertex.
        let end_vertex = |p: &Payload| match *p {
            Payload::Loop(v) => v,
            Payload::Edge { to, .. } => to,
            Payload::Free => u32::MAX,
        };
        let start_vertex = |p: &Payload| match *p {
            Payload::Loop(v) => v,
            Payload::Edge { from, .. } => from,
            Payload::Free => u32::MAX,
        };
        for i in 0..tour.len() {
            let a = &tour[i];
            let b = &tour[(i + 1) % tour.len()];
            if end_vertex(a) != start_vertex(b) {
                return Err(format!(
                    "component {root}: tour discontinuity {a:?} -> {b:?}"
                ));
            }
        }
        // Each member loop exactly once; each edge direction exactly once.
        let mut loops_seen = std::collections::HashSet::new();
        let mut dirs_seen = std::collections::HashSet::new();
        let mut tree_flag_count = 0u64;
        for p in &tour {
            match *p {
                Payload::Loop(v) => {
                    if comp_of(v) != root {
                        return Err(format!("component {root}: foreign vertex {v} in tour"));
                    }
                    if !loops_seen.insert(v) {
                        return Err(format!("component {root}: vertex {v} loop twice"));
                    }
                }
                Payload::Edge { from, to } => {
                    if !dirs_seen.insert((from, to)) {
                        return Err(format!("component {root}: direction ({from},{to}) twice"));
                    }
                    if from < to && at_level.contains(&(from, to)) {
                        tree_flag_count += 1;
                    }
                }
                Payload::Free => return Err(format!("component {root}: freed node in tour")),
            }
        }
        if loops_seen.len() != members.len() {
            return Err(format!(
                "component {root}: {} loops != {} members",
                loops_seen.len(),
                members.len()
            ));
        }
        for &(a, b) in &dirs_seen {
            if !dirs_seen.contains(&(b, a)) {
                return Err(format!("component {root}: direction ({a},{b}) unpaired"));
            }
            if a < b && !self.has_edge(a, b) {
                return Err(format!("component {root}: phantom edge ({a},{b})"));
            }
        }
        // Aggregates.
        let agg = self.component_value(v0);
        if agg.vertices as usize != members.len() {
            return Err(format!(
                "component {root}: size {} != {}",
                agg.vertices,
                members.len()
            ));
        }
        if agg.tree_edges as u64 != tree_flag_count {
            return Err(format!(
                "component {root}: tree_edges {} != expected {tree_flag_count}",
                agg.tree_edges
            ));
        }
        let expected_nt: u64 = members
            .iter()
            .map(|v| expected_nontree.get(v).copied().unwrap_or(0))
            .sum();
        if agg.nontree_edges != expected_nt {
            return Err(format!(
                "component {root}: nontree {} != expected {expected_nt}",
                agg.nontree_edges
            ));
        }
        Ok(())
    }
}
