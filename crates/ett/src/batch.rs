//! Batch link and cut: Euler-tour splicing.
//!
//! ## Batch link
//!
//! For a cycle-free batch of new edges, group the `2k` directed copies by
//! source vertex. Every involved vertex `u` with batch departures
//! `d_1 … d_j` contributes one bottom-level cut (after `loop(u)`) and the
//! links
//!
//! ```text
//!   loop(u)        → (u→d_1)
//!   (d_i→u)        → (u→d_{i+1})        for i < j
//!   (d_j→u)        → old successor of loop(u)
//! ```
//!
//! Every directed edge node `(a→b)` receives its in-link from `a`'s rule
//! list and its out-link from `b`'s, so the rules are complete and the
//! spliced sequences are valid Euler tours (consecutive elements always
//! share a vertex). This is the batch construction of Tseng et al.
//!
//! ## Batch cut
//!
//! Removing edge `{u,v}` removes nodes `(u→v)` and `(v→u)`; the tour
//! "skips over" a removed node `r` to `exit(r) = succ(partner(r))`.
//! Adjacent removals chain; chains are resolved by parallel pointer
//! doubling ([`dyncon_primitives::resolve_chains`] — chains terminate
//! because loop nodes are never removed). One cut + link per maximal
//! removed run restores all tours.

use crate::aug::EttVal;
use crate::forest::{edge_key, EulerTourForest, Payload};
use dyncon_primitives::{
    par_for, par_map_collect, par_tabulate, resolve_chains, semisort_pairs, FxHashMap, SyncSlice,
};
use dyncon_skiplist::{NodeId, NIL};

impl EulerTourForest {
    /// Insert a batch of edges (`BatchLink`, §2.1). The edges must be
    /// distinct, non-loop, absent from the forest and — as the interface
    /// requires — must not close a cycle (the connectivity core guarantees
    /// this by construction; debug builds verify it).
    ///
    /// `tree_at_level[i]` sets the `tree_edges` augmentation bit of edge
    /// `i` (true iff the edge's HDT level equals this forest's level).
    ///
    /// `O(k lg(1 + n/k))` expected work, `O(lg n)` depth w.h.p.
    pub fn batch_link(&mut self, edges: &[(u32, u32)], tree_at_level: &[bool]) {
        assert_eq!(edges.len(), tree_at_level.len());
        if edges.is_empty() {
            return;
        }
        debug_assert!(
            self.link_batch_is_acyclic(edges),
            "batch_link would close a cycle"
        );

        let k = edges.len();
        // Allocate the 2k directed-edge nodes (arena needs &mut: sequential,
        // but O(k) with small constants).
        let mut fwd_nodes = Vec::with_capacity(k);
        let mut rev_nodes = Vec::with_capacity(k);
        for (i, &(u, v)) in edges.iter().enumerate() {
            assert_ne!(u, v, "self loop in batch_link");
            debug_assert!(!self.has_edge(u, v), "duplicate edge in batch_link");
            let fwd = self.sl.create_detached(EttVal::edge(tree_at_level[i]));
            let rev = self.sl.create_detached(EttVal::edge(false));
            self.set_payload(fwd, Payload::Edge { from: u, to: v });
            self.set_payload(rev, Payload::Edge { from: v, to: u });
            self.ensure_vertex(u);
            self.ensure_vertex(v);
            fwd_nodes.push(fwd);
            rev_nodes.push(rev);
        }

        // Directed copies grouped by source vertex: (source, (dep, ret)).
        let mut directed: Vec<(u32, (NodeId, NodeId))> = par_tabulate(2 * k, |j| {
            let (u, v) = edges[j / 2];
            if j % 2 == 0 {
                (u, (fwd_nodes[j / 2], rev_nodes[j / 2]))
            } else {
                (v, (rev_nodes[j / 2], fwd_nodes[j / 2]))
            }
        });
        let groups = semisort_pairs(&mut directed);

        // One cut per touched vertex; `range.len() + 1` links per group laid
        // out at disjoint offsets `range.start + group_index`.
        let n_groups = groups.len();
        let mut cuts: Vec<NodeId> = vec![NIL; n_groups];
        let mut links: Vec<(NodeId, NodeId)> = vec![(NIL, NIL); 2 * k + n_groups];
        {
            let cuts_out = SyncSlice::new(&mut cuts);
            let links_out = SyncSlice::new(&mut links);
            let vert_node = &self.vert_node;
            let sl = &self.sl;
            let directed = &directed;
            let groups = &groups;
            par_for(n_groups, |gi| {
                let (u, ref range) = groups[gi];
                let loop_u = vert_node[u as usize];
                debug_assert!(loop_u != NIL);
                let succ_u = sl.successor(loop_u);
                let base = range.start + gi;
                // SAFETY: group gi exclusively owns cuts[gi] and
                // links[base .. base + range.len() + 1].
                unsafe {
                    cuts_out.write(gi, loop_u);
                    let mut prev = loop_u;
                    for (j, idx) in range.clone().enumerate() {
                        let (dep, ret) = directed[idx].1;
                        links_out.write(base + j, (prev, dep));
                        prev = ret;
                    }
                    links_out.write(base + range.len(), (prev, succ_u));
                }
            });
        }

        self.sl.batch_reconnect(&cuts, &links);

        // Record the edge → node mapping.
        let dict_entries: Vec<(u64, u64)> = par_tabulate(k, |i| {
            let (u, v) = edges[i];
            let (fwd, rev) = if u < v {
                (fwd_nodes[i], rev_nodes[i])
            } else {
                (rev_nodes[i], fwd_nodes[i])
            };
            (edge_key(u, v), ((fwd as u64) << 32) | rev as u64)
        });
        self.edge_nodes.insert_batch(&dict_entries);
        self.add_edge_count(k as isize);
    }

    /// Remove a batch of distinct, present tree edges (`BatchCut`, §2.1).
    /// `O(k lg(1 + n/k) + k lg k)` expected work, `O(lg n)` depth w.h.p.
    /// (the `k lg k` term is the pointer-doubling stitch; see DESIGN.md §3).
    pub fn batch_cut(&mut self, edges: &[(u32, u32)]) {
        if edges.is_empty() {
            return;
        }
        let k = edges.len();
        // Removed nodes: 2 per edge, fwd at 2i, rev at 2i+1 (parallel
        // dictionary lookup phase).
        let packed: Vec<u64> = par_map_collect(edges, |&(u, v)| {
            self.edge_nodes
                .get(edge_key(u, v))
                .unwrap_or_else(|| panic!("batch_cut: edge ({u},{v}) not in forest"))
        });
        let removed: Vec<NodeId> = par_tabulate(2 * k, |j| {
            let p = packed[j / 2];
            if j % 2 == 0 {
                (p >> 32) as NodeId
            } else {
                p as NodeId
            }
        });
        let keys: Vec<u64> = par_map_collect(edges, |&(u, v)| edge_key(u, v));
        let member: FxHashMap<NodeId, usize> =
            removed.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        debug_assert_eq!(member.len(), 2 * k, "duplicate edge in batch_cut");

        // exit(r) = successor of r's partner node; resolve through chains of
        // removed nodes to the first live node.
        let mut exits: Vec<u64> = vec![0; 2 * k];
        {
            let sl = &self.sl;
            let removed = &removed;
            let out = SyncSlice::new(&mut exits);
            par_for(2 * k, |i| {
                let partner = removed[i ^ 1];
                // SAFETY: slot i written only by iteration i.
                unsafe { out.write(i, sl.successor(partner) as u64) };
            });
        }
        resolve_chains(&mut exits, |id| member.get(&(id as NodeId)).copied());

        // Cuts: after every removed node, plus after each live predecessor.
        // Links: (live predecessor of a removed run) → (resolved exit).
        // Predecessor scans (the expensive part) fan out; the short stitch
        // loop stays sequential to keep the batch order canonical.
        let preds: Vec<NodeId> = par_map_collect(&removed, |&r| self.sl.predecessor(r));
        let mut cuts: Vec<NodeId> = Vec::with_capacity(4 * k);
        let mut links: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * k);
        for (i, &r) in removed.iter().enumerate() {
            cuts.push(r);
            let pred = preds[i];
            if !member.contains_key(&pred) {
                cuts.push(pred);
                links.push((pred, exits[i] as NodeId));
            }
        }

        self.sl.batch_reconnect(&cuts, &links);
        for &r in &removed {
            self.set_payload(r, Payload::Free);
        }
        self.sl.free_nodes(&removed);
        self.edge_nodes.remove_batch(&keys);
        self.add_edge_count(-(k as isize));
    }

    /// Single-edge conveniences (used by tests and the HDT-style drivers).
    pub fn link(&mut self, u: u32, v: u32, tree_at_level: bool) {
        self.batch_link(&[(u, v)], &[tree_at_level]);
    }

    /// Remove one tree edge.
    pub fn cut(&mut self, u: u32, v: u32) {
        self.batch_cut(&[(u, v)]);
    }

    /// Debug-build acyclicity check for link batches: union endpoints'
    /// current components; a failed union means the batch closes a cycle.
    fn link_batch_is_acyclic(&self, edges: &[(u32, u32)]) -> bool {
        let mut parent: FxHashMap<u64, u64> = FxHashMap::default();
        fn find(parent: &mut FxHashMap<u64, u64>, mut x: u64) -> u64 {
            loop {
                let p = *parent.entry(x).or_insert(x);
                if p == x {
                    return x;
                }
                let gp = *parent.entry(p).or_insert(p);
                parent.insert(x, gp);
                x = gp;
            }
        }
        for &(u, v) in edges {
            let (ru, rv) = (self.find_rep(u), self.find_rep(v));
            let (a, b) = (find(&mut parent, ru), find(&mut parent, rv));
            if a == b {
                return false;
            }
            parent.insert(a, b);
        }
        true
    }
}
