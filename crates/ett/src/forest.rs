//! The forest container: vertices, payload mapping, queries.

use crate::aug::{EttAug, EttVal};
use dyncon_primitives::{par_expand2, par_map_collect, par_tabulate, ConcurrentDict};
use dyncon_skiplist::{NodeId, SkipList, NIL};

/// What a skip-list node represents in the Euler tour.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Payload {
    /// Recycled / never assigned.
    Free,
    /// The canonical occurrence of a vertex.
    Loop(u32),
    /// The directed traversal `from → to` of a tree edge.
    Edge { from: u32, to: u32 },
}

/// Opaque component identifier.
///
/// Equal ids ⇔ same tree, valid until the next mutating batch ("Note that
/// representatives are invalidated after the sequences are modified",
/// §2.1). Isolated (never-materialized) vertices get tagged ids disjoint
/// from skip-list representatives.
pub type CompId = u64;

const ISOLATED_TAG: u64 = 1 << 63;

/// A batch-parallel Euler tour forest over vertices `0..n`.
pub struct EulerTourForest {
    pub(crate) sl: SkipList<EttAug>,
    /// Loop node per vertex; `NIL` until materialized.
    pub(crate) vert_node: Vec<NodeId>,
    /// Payload per arena slot (kept in lockstep with the arena).
    pub(crate) payload: Vec<Payload>,
    /// Edge `{u,v}` (key `min<<32|max`) → packed `(fwd, rev)` node pair,
    /// where `fwd` is the `min→max` traversal (the *primary* node).
    pub(crate) edge_nodes: ConcurrentDict,
    n: usize,
    n_edges: usize,
}

#[inline]
pub(crate) fn edge_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

impl EulerTourForest {
    /// An edgeless forest over `n` vertices. Loop nodes are materialized
    /// lazily, so construction is `O(n)` but cheap.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            sl: SkipList::new(seed),
            vert_node: vec![NIL; n],
            payload: Vec::new(),
            edge_nodes: ConcurrentDict::with_capacity(64),
            n,
            n_edges: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of tree edges currently linked.
    pub fn num_edges(&self) -> usize {
        self.n_edges
    }

    pub(crate) fn add_edge_count(&mut self, d: isize) {
        self.n_edges = (self.n_edges as isize + d) as usize;
    }

    /// True if the edge `{u,v}` is in the forest.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edge_nodes.contains(edge_key(u, v))
    }

    /// The loop node of `v`, creating a singleton cycle on first touch.
    pub(crate) fn ensure_vertex(&mut self, v: u32) -> NodeId {
        let cur = self.vert_node[v as usize];
        if cur != NIL {
            return cur;
        }
        let id = self.sl.create_singleton(EttVal::vertex(0));
        self.set_payload(id, Payload::Loop(v));
        self.vert_node[v as usize] = id;
        id
    }

    pub(crate) fn set_payload(&mut self, id: NodeId, p: Payload) {
        let idx = id as usize;
        if idx >= self.payload.len() {
            self.payload.resize(idx + 1, Payload::Free);
        }
        self.payload[idx] = p;
    }

    /// Payload of an arena node.
    pub fn node_payload(&self, id: NodeId) -> Payload {
        self.payload[id as usize]
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Component identifier of vertex `v`.
    pub fn find_rep(&self, v: u32) -> CompId {
        let node = self.vert_node[v as usize];
        if node == NIL {
            ISOLATED_TAG | v as u64
        } else {
            self.sl.find_rep(node) as u64
        }
    }

    /// Batch of representative queries (`BatchFindRep`, §2.1).
    pub fn batch_find_rep(&self, vs: &[u32]) -> Vec<CompId> {
        par_map_collect(vs, |&v| self.find_rep(v))
    }

    /// Are `u` and `v` in the same tree?
    pub fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let (nu, nv) = (self.vert_node[u as usize], self.vert_node[v as usize]);
        if nu == NIL || nv == NIL {
            return false;
        }
        self.sl.same_cycle(nu, nv)
    }

    /// Batch connectivity queries (`BatchConnected`, §2.1): `O(k lg(1+n/k))`
    /// expected work, `O(lg n)` depth w.h.p. (Theorem 2). Runs as one
    /// chunked parallel root lookup over the `2k` flattened endpoints plus
    /// a parallel compare — Algorithm 1's shape exactly.
    pub fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        let flat = par_expand2(pairs, |&(u, v)| [u, v]);
        let reps = self.batch_find_rep(&flat);
        par_tabulate(pairs.len(), |i| reps[2 * i] == reps[2 * i + 1])
    }

    /// Aggregated augmented value of `v`'s component.
    pub fn component_value(&self, v: u32) -> EttVal {
        let node = self.vert_node[v as usize];
        if node == NIL {
            EttVal::vertex(0)
        } else {
            self.sl.aggregate(node)
        }
    }

    /// Number of vertices in `v`'s tree (≥ 1).
    pub fn component_size(&self, v: u32) -> u64 {
        self.component_value(v).vertices as u64
    }

    /// A vertex of the component with representative handle `rep`
    /// (the handle must have come from [`EulerTourForest::find_rep`] since
    /// the last mutation).
    pub fn rep_vertex(&self, rep: CompId) -> u32 {
        if rep & ISOLATED_TAG != 0 {
            (rep & !ISOLATED_TAG) as u32
        } else {
            match self.payload[rep as usize] {
                Payload::Loop(v) => v,
                Payload::Edge { from, .. } => from,
                Payload::Free => unreachable!("rep_vertex on freed node"),
            }
        }
    }

    /// The Euler tour of `v`'s component, for tests and debugging.
    pub fn tour(&self, v: u32) -> Vec<Payload> {
        let node = self.vert_node[v as usize];
        if node == NIL {
            return vec![Payload::Loop(v)];
        }
        let mut out = vec![self.payload[node as usize]];
        let mut cur = self.sl.successor(node);
        while cur != node {
            out.push(self.payload[cur as usize]);
            cur = self.sl.successor(cur);
        }
        out
    }

    /// Direct access to the underlying skip list (read-only; used by the
    /// validators of dependent crates).
    pub fn skiplist(&self) -> &SkipList<EttAug> {
        &self.sl
    }

    /// Loop node of `v`, if materialized.
    pub fn vertex_node(&self, v: u32) -> Option<NodeId> {
        let id = self.vert_node[v as usize];
        (id != NIL).then_some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_forest_is_disconnected() {
        let f = EulerTourForest::new(10, 42);
        assert!(!f.connected(0, 1));
        assert!(f.connected(3, 3));
        assert_eq!(f.component_size(5), 1);
        assert_ne!(f.find_rep(0), f.find_rep(1));
        assert_eq!(f.num_edges(), 0);
    }

    #[test]
    fn edge_key_symmetric() {
        assert_eq!(edge_key(3, 9), edge_key(9, 3));
        assert_ne!(edge_key(3, 9), edge_key(3, 8));
    }

    #[test]
    fn tour_of_isolated_vertex() {
        let f = EulerTourForest::new(4, 1);
        assert_eq!(f.tour(2), vec![Payload::Loop(2)]);
    }
}
