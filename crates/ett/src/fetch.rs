//! Appendix 9 primitives: augmented-count maintenance and guided fetches.

use crate::aug::EttVal;
use crate::forest::{edge_key, EulerTourForest, Payload};
use dyncon_skiplist::NodeId;

impl EulerTourForest {
    /// Set the per-vertex non-tree-edge counts (level-`i` adjacency list
    /// lengths) for a batch of vertices. `O(k lg(1+n/k))` expected work
    /// (Lemma 9 / Lemma 11 cost of updating augmented values).
    pub fn set_nontree_counts(&mut self, updates: &[(u32, u64)]) {
        if updates.is_empty() {
            return;
        }
        let mut node_updates: Vec<(NodeId, EttVal)> = Vec::with_capacity(updates.len());
        for &(v, count) in updates {
            let node = self.ensure_vertex(v);
            node_updates.push((node, EttVal::vertex(count)));
        }
        self.sl.batch_update_values(&node_updates);
    }

    /// Flip the `tree_edges` augmentation bit of existing tree edges
    /// (true iff the edge's HDT level equals this forest's level — used
    /// when tree edges are pushed down a level).
    pub fn set_tree_flags(&mut self, edges: &[(u32, u32)], flag: bool) {
        if edges.is_empty() {
            return;
        }
        let mut node_updates: Vec<(NodeId, EttVal)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            let packed = self
                .edge_nodes
                .get(edge_key(u, v))
                .unwrap_or_else(|| panic!("set_tree_flags: edge ({u},{v}) not in forest"));
            let fwd = (packed >> 32) as NodeId;
            node_updates.push((fwd, EttVal::edge(flag)));
        }
        self.sl.batch_update_values(&node_updates);
    }

    /// Total number of level-`i` non-tree edge endpoints in `v`'s component.
    pub fn nontree_total(&self, v: u32) -> u64 {
        self.component_value(v).nontree_edges
    }

    /// Fetch the first `limit` non-tree edge slots of `v`'s component in
    /// tour order: returns `(vertex, take)` pairs meaning "take the first
    /// `take` entries of the level-`i` non-tree adjacency list of
    /// `vertex`". Lemma 10: `O(ℓ lg(1 + n_c/ℓ))` work.
    pub fn fetch_nontree(&self, v: u32, limit: u64) -> Vec<(u32, u64)> {
        let Some(node) = self.vertex_node(v) else {
            return Vec::new();
        };
        let picked = self
            .sl
            .collect_prefix(node, limit, &|val: EttVal| val.nontree_edges);
        picked
            .into_iter()
            .map(|(id, take)| match self.node_payload(id) {
                Payload::Loop(w) => (w, take),
                p => unreachable!("non-tree weight on non-loop node: {p:?}"),
            })
            .collect()
    }

    /// Fetch every tree edge whose level equals this forest's level within
    /// `v`'s component (the "push tree edges of active components down"
    /// fetch of Algorithms 4/5, line 5).
    pub fn fetch_tree_edges(&self, v: u32) -> Vec<(u32, u32)> {
        let Some(node) = self.vertex_node(v) else {
            return Vec::new();
        };
        let picked = self
            .sl
            .collect_all(node, &|val: EttVal| val.tree_edges as u64);
        picked
            .into_iter()
            .map(|(id, take)| {
                debug_assert_eq!(take, 1);
                match self.node_payload(id) {
                    Payload::Edge { from, to } => (from, to),
                    p => unreachable!("tree weight on non-edge node: {p:?}"),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::forest::EulerTourForest;

    #[test]
    fn nontree_counts_aggregate() {
        let mut f = EulerTourForest::new(6, 3);
        f.batch_link(&[(0, 1), (1, 2), (3, 4)], &[true, true, true]);
        f.set_nontree_counts(&[(0, 2), (2, 3), (4, 1)]);
        assert_eq!(f.nontree_total(1), 5);
        assert_eq!(f.nontree_total(3), 1);
        assert_eq!(f.nontree_total(5), 0);
    }

    #[test]
    fn fetch_nontree_respects_limit_and_order() {
        let mut f = EulerTourForest::new(5, 4);
        f.batch_link(&[(0, 1), (1, 2), (2, 3)], &[true; 3]);
        f.set_nontree_counts(&[(0, 4), (2, 2), (3, 1)]);
        let got = f.fetch_nontree(1, 5);
        let total: u64 = got.iter().map(|&(_, t)| t).sum();
        assert_eq!(total, 5);
        // All slots from a vertex are consumed before moving on.
        for &(v, take) in &got[..got.len() - 1] {
            let full = match v {
                0 => 4,
                2 => 2,
                3 => 1,
                _ => panic!("unexpected vertex {v}"),
            };
            assert_eq!(take, full);
        }
        // Fetch everything.
        let all = f.fetch_nontree(1, 100);
        assert_eq!(all.iter().map(|&(_, t)| t).sum::<u64>(), 7);
    }

    #[test]
    fn fetch_tree_edges_returns_level_edges_only() {
        let mut f = EulerTourForest::new(6, 5);
        f.batch_link(&[(0, 1), (1, 2)], &[true, false]);
        f.batch_link(&[(2, 3)], &[true]);
        let mut got = f.fetch_tree_edges(0);
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (2, 3)]);
        // Flip flags and refetch.
        f.set_tree_flags(&[(0, 1)], false);
        f.set_tree_flags(&[(1, 2)], true);
        let mut got = f.fetch_tree_edges(3);
        got.sort_unstable();
        assert_eq!(got, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn fetch_on_isolated_vertex_is_empty() {
        let f = EulerTourForest::new(3, 6);
        assert!(f.fetch_nontree(1, 10).is_empty());
        assert!(f.fetch_tree_edges(1).is_empty());
    }
}
