//! The ETT augmentation: the two counts of §2.2 ("Implementation and
//! Cost") plus component sizes for Invariant 1.

use dyncon_skiplist::Augmentation;

/// Per-node augmented value of the Euler tour forest.
///
/// * `vertices` — 1 on `loop(v)` nodes, 0 on edge nodes. Component
///   aggregates give tree sizes (the `|component| ≤ 2^i` checks of
///   Invariant 1).
/// * `tree_edges` — 1 on the *primary* node of a tree edge whose HDT level
///   equals this forest's level ("the number of tree-edges whose level is
///   equal to the level of the tree").
/// * `nontree_edges` — on `loop(v)` nodes, the number of level-`i` non-tree
///   edges incident to `v` ("the number of non-tree edges whose level
///   equals the level of the tree").
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct EttVal {
    /// Count of vertices (loop nodes) under this value.
    pub vertices: u32,
    /// Count of level-`i` tree edges under this value.
    pub tree_edges: u32,
    /// Count of level-`i` non-tree edge endpoints under this value.
    pub nontree_edges: u64,
}

impl EttVal {
    /// Base value of a vertex loop node.
    pub fn vertex(nontree_edges: u64) -> Self {
        EttVal {
            vertices: 1,
            tree_edges: 0,
            nontree_edges,
        }
    }

    /// Base value of a tree-edge node.
    pub fn edge(at_level: bool) -> Self {
        EttVal {
            vertices: 0,
            tree_edges: at_level as u32,
            nontree_edges: 0,
        }
    }
}

/// [`Augmentation`] instance: field-wise sums packed into two words.
pub struct EttAug;

impl Augmentation for EttAug {
    type Value = EttVal;

    #[inline]
    fn identity() -> EttVal {
        EttVal::default()
    }

    #[inline]
    fn combine(a: EttVal, b: EttVal) -> EttVal {
        EttVal {
            vertices: a.vertices + b.vertices,
            tree_edges: a.tree_edges + b.tree_edges,
            nontree_edges: a.nontree_edges + b.nontree_edges,
        }
    }

    #[inline]
    fn pack(v: EttVal) -> [u64; 2] {
        [
            ((v.vertices as u64) << 32) | v.tree_edges as u64,
            v.nontree_edges,
        ]
    }

    #[inline]
    fn unpack(w: [u64; 2]) -> EttVal {
        EttVal {
            vertices: (w[0] >> 32) as u32,
            tree_edges: w[0] as u32,
            nontree_edges: w[1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let v = EttVal {
            vertices: 3,
            tree_edges: 7,
            nontree_edges: u64::MAX / 2,
        };
        assert_eq!(EttAug::unpack(EttAug::pack(v)), v);
    }

    #[test]
    fn combine_adds_fields() {
        let a = EttVal::vertex(5);
        let b = EttVal::edge(true);
        let c = EttAug::combine(a, b);
        assert_eq!(c.vertices, 1);
        assert_eq!(c.tree_edges, 1);
        assert_eq!(c.nontree_edges, 5);
    }

    #[test]
    fn identity_is_neutral() {
        let v = EttVal::vertex(9);
        assert_eq!(EttAug::combine(EttAug::identity(), v), v);
    }
}
