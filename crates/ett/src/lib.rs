//! # dyncon-ett
//!
//! Batch-parallel **Euler tour trees** (Tseng, Dhulipala, Blelloch —
//! ALENEX 2019): the dynamic-trees substrate of the SPAA 2019 parallel
//! batch-dynamic connectivity structure (§2.1 of the paper).
//!
//! A forest over vertices `0..n` is represented by one **cyclic Euler tour
//! per tree**, stored in a shared phase-concurrent skip list
//! (`dyncon-skiplist`). The tour of a tree contains
//!
//! * one `loop(v)` node per vertex `v`, and
//! * two nodes per tree edge `{u, v}` — the directed traversals `(u→v)` and
//!   `(v→u)`,
//!
//! arranged so that consecutive tour elements always share a vertex (arrive
//! at `x` ⇒ depart from `x`). Links and cuts are pure splices of these
//! cycles, so a batch of `k` of them costs `O(k lg(1 + n/k))` expected work
//! and `O(lg n)` depth w.h.p. (Theorem 2).
//!
//! ## Augmentation (Appendix 9)
//!
//! Every node carries an [`EttVal`]: `(vertices, tree_edges,
//! nontree_edges)`. Loop nodes hold `vertices = 1` and the number of
//! non-tree edges *at this forest's level* incident to the vertex; the
//! primary node of each edge holds `tree_edges = 1` exactly when the edge's
//! HDT level equals the forest's level. The connectivity algorithm uses
//! these to fetch the first `ℓ` non-tree edges of a component
//! ([`EulerTourForest::fetch_nontree`], Lemma 10) and all level-`i` tree
//! edges ([`EulerTourForest::fetch_tree_edges`]) in time proportional to
//! the output.
//!
//! ## Interface (§2.1 "Batch-Dynamic Trees")
//!
//! [`EulerTourForest::batch_link`], [`EulerTourForest::batch_cut`],
//! [`EulerTourForest::batch_connected`] and
//! [`EulerTourForest::batch_find_rep`] implement the paper's interface with
//! the stated bounds; representatives ([`CompId`]) are invalidated by
//! mutations, exactly as specified.

pub mod aug;
pub mod batch;
pub mod fetch;
pub mod forest;
pub mod validate;

pub use aug::EttVal;
pub use forest::{CompId, EulerTourForest, Payload};
