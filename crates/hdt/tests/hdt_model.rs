//! Randomized model testing of the sequential HDT baseline against the
//! naive oracle.

use dyncon_hdt::HdtConnectivity;
use dyncon_primitives::SplitMix64;
use dyncon_spanning::NaiveDynamicGraph;

fn run(seed: u64, n: usize, steps: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut g = HdtConnectivity::new(n);
    let mut oracle = NaiveDynamicGraph::new(n);
    for step in 0..steps {
        let u = rng.next_below(n as u64) as u32;
        let v = rng.next_below(n as u64) as u32;
        match rng.next_below(3) {
            0 => {
                assert_eq!(g.insert(u, v), oracle.insert(u, v), "step {step} insert");
            }
            1 => {
                // Delete a random existing edge when possible.
                let edges = oracle.edge_list();
                if !edges.is_empty() {
                    let (a, b) = edges[rng.next_below(edges.len() as u64) as usize];
                    assert!(g.delete(a, b));
                    assert!(oracle.delete(a, b));
                } else {
                    assert!(!g.delete(u, v));
                }
            }
            _ => {
                assert_eq!(
                    g.connected(u, v),
                    oracle.connected(u, v),
                    "seed {seed} step {step}: connected({u},{v})"
                );
            }
        }
        if step % 16 == 0 {
            assert_eq!(g.num_edges(), oracle.num_edges());
            assert_eq!(g.num_components(), oracle.num_components());
        }
    }
}

#[test]
fn small_graphs_many_seeds() {
    for seed in 0..10 {
        run(seed, 9, 400);
    }
}

#[test]
fn medium_graphs() {
    for seed in 20..24 {
        run(seed, 60, 600);
    }
}

#[test]
fn larger_graph() {
    run(99, 300, 800);
}

#[test]
fn adversarial_path_rebuild() {
    // Delete the middle of a path repeatedly: forces replacement searches
    // that fail (no replacement exists) and full level descents.
    let n = 64u32;
    let mut g = HdtConnectivity::new(n as usize);
    for i in 0..n - 1 {
        g.insert(i, i + 1);
    }
    for round in 0..6 {
        let mid = 31 + (round % 3) as u32;
        assert!(g.delete(mid, mid + 1));
        assert!(!g.connected(0, n - 1), "path must split");
        assert!(g.insert(mid, mid + 1));
        assert!(g.connected(0, n - 1), "path must rejoin");
    }
}

#[test]
fn dense_small_world() {
    // Clique insert, then delete everything in random order.
    let n = 10u32;
    let mut g = HdtConnectivity::new(n as usize);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            g.insert(u, v);
            edges.push((u, v));
        }
    }
    let mut rng = SplitMix64::new(5);
    while !edges.is_empty() {
        let i = rng.next_below(edges.len() as u64) as usize;
        let (u, v) = edges.swap_remove(i);
        assert!(g.delete(u, v));
    }
    assert_eq!(g.num_components(), n as usize);
    assert_eq!(g.num_edges(), 0);
}
