//! The workspace-wide API contract (`dyncon-api`) implemented for the
//! sequential HDT baseline.
//!
//! HDT is inherently one-operation-at-a-time, so the batch methods loop —
//! which is exactly the honest baseline semantics the E5 experiment
//! compares the parallel structure against.

use crate::HdtConnectivity;
use dyncon_api::{validate_pairs, BatchDynamic, BuildFrom, Builder, Connectivity, DynConError};

impl Connectivity for HdtConnectivity {
    fn backend_name(&self) -> &'static str {
        "hdt-sequential"
    }

    fn num_vertices(&self) -> usize {
        HdtConnectivity::num_vertices(self)
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        HdtConnectivity::connected(self, u, v)
    }

    fn num_components(&self) -> usize {
        HdtConnectivity::num_components(self)
    }

    fn component_size(&self, v: u32) -> u64 {
        HdtConnectivity::component_size(self, v)
    }
}

impl BatchDynamic for HdtConnectivity {
    fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.num_vertices(), edges)?;
        Ok(edges.iter().filter(|&&(u, v)| self.insert(u, v)).count())
    }

    fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.num_vertices(), edges)?;
        Ok(edges.iter().filter(|&&(u, v)| self.delete(u, v)).count())
    }
}

impl BuildFrom for HdtConnectivity {
    fn build_from(builder: &Builder) -> Result<Self, DynConError> {
        // Re-validate (callers can reach this without `Builder::build`).
        // Deletion-algorithm / stats / ablation knobs are specific to the
        // parallel structure; HDT only needs the vertex count.
        builder.validate()?;
        Ok(HdtConnectivity::new(builder.num_vertices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncon_api::Op;

    #[test]
    fn mixed_batch_matches_singleop_semantics() {
        let mut g: HdtConnectivity = Builder::new(8).build().unwrap();
        let res = g
            .apply(&[
                Op::Insert(0, 1),
                Op::Insert(1, 0), // duplicate: not counted
                Op::Insert(1, 2),
                Op::Query(0, 2),
                Op::Delete(1, 2),
                Op::Query(0, 2),
            ])
            .unwrap();
        assert_eq!(res.inserted, 2);
        assert_eq!(res.deleted, 1);
        assert_eq!(res.answers, vec![true, false]);
        assert_eq!(g.component_size(0), 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g: HdtConnectivity = Builder::new(4).build().unwrap();
        let err = g.apply(&[Op::Insert(0, 4)]).unwrap_err();
        assert!(matches!(
            err,
            DynConError::VertexOutOfRange { vertex: 4, .. }
        ));
        assert_eq!(g.num_edges(), 0);
    }
}
