//! # dyncon-hdt
//!
//! The classic **sequential** dynamic connectivity algorithm of Holm, de
//! Lichtenberg and Thorup (§2.2 of the SPAA 2019 paper): `O(lg² n)`
//! amortized time per edge insertion or deletion and `O(lg n)` per query.
//!
//! This is the baseline the parallel batch-dynamic algorithm is
//! work-efficient against (Theorem 6) and asymptotically faster than for
//! large batches (Theorem 9); experiment E5 replays identical operation
//! streams into both structures.
//!
//! The implementation follows the paper's description exactly: `⌈lg n⌉`
//! levels of spanning forests represented as sequential Euler tour trees
//! over randomized treaps ([`treap`]), augmented with per-level non-tree
//! edge counts and tree-edge-at-level counts for the replacement search.

pub mod api;
pub mod ett;
pub mod hdt;
pub mod treap;

pub use hdt::HdtConnectivity;
