//! The HDT dynamic connectivity algorithm (§2.2 of the paper).

use crate::ett::SeqEtt;
use dyncon_primitives::FxHashMap;

fn ekey(u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

struct EdgeRec {
    /// Level index (0-based; new edges start at `levels - 1`).
    level: u8,
    tree: bool,
    /// Positions in the two endpoints' adjacency arrays (min, max).
    pos: [u32; 2],
}

/// One vertex's non-tree adjacency: `(level, edge keys)` arrays.
#[derive(Default)]
struct VertexAdj {
    lists: Vec<(u8, Vec<u64>)>,
}

/// Sequential fully dynamic connectivity with `O(lg² n)` amortized
/// updates and `O(lg n)` queries (Holm–de Lichtenberg–Thorup).
pub struct HdtConnectivity {
    n: usize,
    num_levels: usize,
    forests: Vec<SeqEtt>,
    edges: FxHashMap<u64, EdgeRec>,
    adj: Vec<VertexAdj>,
    /// Total replacement-search edge examinations (work metric for E5).
    pub edges_examined: u64,
}

impl HdtConnectivity {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let num_levels = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
        let forests = (0..num_levels)
            .map(|li| SeqEtt::new(n, 0xfeed_beef ^ (((li as u64) << 24) ^ n as u64)))
            .collect();
        let mut adj = Vec::with_capacity(n);
        adj.resize_with(n, VertexAdj::default);
        Self {
            n,
            num_levels,
            forests,
            edges: FxHashMap::default(),
            adj,
            edges_examined: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn top(&self) -> usize {
        self.num_levels - 1
    }

    /// Connectivity query via the top forest.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.forests[self.top()].connected(u, v)
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.n - self.edges.values().filter(|r| r.tree).count()
    }

    /// Number of vertices in `v`'s component (≥ 1).
    pub fn component_size(&self, v: u32) -> u64 {
        self.forests[self.top()].component_size(v)
    }

    // ---- adjacency helpers -------------------------------------------

    fn adj_list(&mut self, v: u32, level: u8) -> &mut Vec<u64> {
        let va = &mut self.adj[v as usize];
        if let Some(i) = va.lists.iter().position(|(l, _)| *l == level) {
            &mut va.lists[i].1
        } else {
            va.lists.push((level, Vec::new()));
            &mut va.lists.last_mut().unwrap().1
        }
    }

    fn adj_len(&self, v: u32, level: u8) -> usize {
        self.adj[v as usize]
            .lists
            .iter()
            .find(|(l, _)| *l == level)
            .map_or(0, |(_, a)| a.len())
    }

    fn pos_index(key: u64, v: u32) -> usize {
        ((key >> 32) as u32 != v) as usize
    }

    fn adj_insert(&mut self, v: u32, level: u8, key: u64) {
        let list = self.adj_list(v, level);
        let p = list.len() as u32;
        list.push(key);
        self.edges.get_mut(&key).unwrap().pos[Self::pos_index(key, v)] = p;
    }

    fn adj_remove(&mut self, v: u32, level: u8, key: u64) {
        let p = self.edges[&key].pos[Self::pos_index(key, v)] as usize;
        let list = self.adj_list(v, level);
        debug_assert_eq!(list[p], key);
        let last = list.pop().unwrap();
        if p < list.len() {
            list[p] = last;
            self.edges.get_mut(&last).unwrap().pos[Self::pos_index(last, v)] = p as u32;
        }
    }

    fn add_nontree(&mut self, u: u32, v: u32, level: u8) {
        let key = ekey(u, v);
        self.adj_insert(u, level, key);
        self.adj_insert(v, level, key);
        let (cu, cv) = (self.adj_len(u, level), self.adj_len(v, level));
        self.forests[level as usize].set_nontree_count(u, cu as u64);
        self.forests[level as usize].set_nontree_count(v, cv as u64);
    }

    fn remove_nontree(&mut self, u: u32, v: u32, level: u8) {
        let key = ekey(u, v);
        self.adj_remove(u, level, key);
        self.adj_remove(v, level, key);
        let (cu, cv) = (self.adj_len(u, level), self.adj_len(v, level));
        self.forests[level as usize].set_nontree_count(u, cu as u64);
        self.forests[level as usize].set_nontree_count(v, cv as u64);
    }

    // ---- updates ------------------------------------------------------

    /// Insert an edge; returns false on duplicates and self-loops.
    pub fn insert(&mut self, u: u32, v: u32) -> bool {
        if u == v || self.edges.contains_key(&ekey(u, v)) {
            return false;
        }
        let top = self.top() as u8;
        let tree = !self.connected(u, v);
        self.edges.insert(
            ekey(u, v),
            EdgeRec {
                level: top,
                tree,
                pos: [u32::MAX; 2],
            },
        );
        if tree {
            self.forests[top as usize].link(u, v, true);
        } else {
            self.add_nontree(u, v, top);
        }
        true
    }

    /// Delete an edge; returns false if absent.
    pub fn delete(&mut self, u: u32, v: u32) -> bool {
        let key = ekey(u, v);
        let Some(rec) = self.edges.get(&key) else {
            return false;
        };
        let (lev, tree) = (rec.level, rec.tree);
        if !tree {
            // Adjacency removal first: it reads the record's positions.
            self.remove_nontree(u, v, lev);
            self.edges.remove(&key);
            return true;
        }
        self.edges.remove(&key);
        // Cut from every forest containing it, then search upward.
        for li in lev as usize..self.num_levels {
            self.forests[li].cut(u, v);
        }
        for li in lev as usize..self.num_levels {
            if self.search_level(li, u, v) {
                break;
            }
        }
        true
    }

    /// Replacement search at one level; true when a replacement was found
    /// (the component is reconnected at all levels ≥ `li`).
    fn search_level(&mut self, li: usize, u: u32, v: u32) -> bool {
        // Search the smaller side (≤ 2^{li} vertices by Invariant 1).
        let (su, sv) = (
            self.forests[li].component_size(u),
            self.forests[li].component_size(v),
        );
        let small = if su <= sv { u } else { v };
        // Push the small side's level-`li` tree edges down.
        while let Some((a, b)) = self.forests[li].find_level_tree_edge(small) {
            self.forests[li].set_tree_flag(a, b, false);
            self.forests[li - 1].link(a, b, true);
            self.edges.get_mut(&ekey(a, b)).unwrap().level = (li - 1) as u8;
        }
        // Scan its level-`li` non-tree edges one at a time.
        while let Some(x) = self.forests[li].find_nontree_vertex(small) {
            let key = *self
                .adj_list(x, li as u8)
                .first()
                .expect("positive count with empty list");
            let (a, b) = ((key >> 32) as u32, key as u32);
            self.edges_examined += 1;
            if self.forests[li].connected(a, b) {
                // Not a replacement: push down a level.
                self.remove_nontree(a, b, li as u8);
                self.add_nontree(a, b, (li - 1) as u8);
                self.edges.get_mut(&key).unwrap().level = (li - 1) as u8;
            } else {
                // Replacement: promote to a tree edge at level `li`.
                self.remove_nontree(a, b, li as u8);
                let rec = self.edges.get_mut(&key).unwrap();
                rec.tree = true;
                for j in li..self.num_levels {
                    self.forests[j].link(a, b, j == li);
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_delete_query() {
        let mut g = HdtConnectivity::new(8);
        assert!(g.insert(0, 1));
        assert!(g.insert(1, 2));
        assert!(!g.insert(1, 2));
        assert!(!g.insert(3, 3));
        assert!(g.connected(0, 2));
        assert!(!g.connected(0, 3));
        assert!(g.delete(1, 2));
        assert!(!g.delete(1, 2));
        assert!(!g.connected(0, 2));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn replacement_via_cycle() {
        let mut g = HdtConnectivity::new(8);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.insert(u, v);
        }
        // Deleting any single cycle edge keeps everything connected.
        assert!(g.delete(1, 2));
        assert!(g.connected(1, 2));
        assert!(g.connected(0, 3));
        assert_eq!(g.num_components(), 5);
    }

    #[test]
    fn two_phase_breakage() {
        let mut g = HdtConnectivity::new(6);
        g.insert(0, 1);
        g.insert(1, 2);
        g.insert(0, 2);
        g.delete(0, 1);
        assert!(g.connected(0, 1), "replacement through (0,2),(2,1)");
        g.delete(0, 2);
        assert!(!g.connected(0, 2));
        assert!(g.connected(1, 2));
        assert!(!g.connected(0, 1));
    }
}
