//! Sequential Euler tour trees over the treap arena.
//!
//! Tours are stored as linear treap sequences representing cycles cut at an
//! arbitrary point; links and cuts are O(1) splits/merges (amortized
//! `O(lg n)` each).

use crate::treap::{NodeId, Treap, Val, NIL};
use dyncon_primitives::FxHashMap;

/// What a treap node represents.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SeqPayload {
    /// Canonical occurrence of a vertex.
    Loop(u32),
    /// Directed traversal of a tree edge.
    Edge { from: u32, to: u32 },
}

fn ekey(u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// A sequential Euler tour forest with the HDT augmentations.
pub struct SeqEtt {
    treap: Treap,
    vert_node: Vec<NodeId>,
    payload: Vec<SeqPayload>,
    /// Edge key → (fwd node `min→max`, rev node).
    edge_nodes: FxHashMap<u64, (NodeId, NodeId)>,
}

impl SeqEtt {
    /// Edgeless forest over `n` vertices (loops materialize lazily).
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            treap: Treap::new(seed),
            vert_node: vec![NIL; n],
            payload: Vec::new(),
            edge_nodes: FxHashMap::default(),
        }
    }

    fn set_payload(&mut self, id: NodeId, p: SeqPayload) {
        let i = id as usize;
        if i >= self.payload.len() {
            self.payload.resize(i + 1, SeqPayload::Loop(u32::MAX));
        }
        self.payload[i] = p;
    }

    /// Payload of a node.
    pub fn node_payload(&self, id: NodeId) -> SeqPayload {
        self.payload[id as usize]
    }

    fn ensure_vertex(&mut self, v: u32) -> NodeId {
        let cur = self.vert_node[v as usize];
        if cur != NIL {
            return cur;
        }
        let id = self.treap.alloc(Val {
            verts: 1,
            tree: 0,
            nontree: 0,
        });
        self.set_payload(id, SeqPayload::Loop(v));
        self.vert_node[v as usize] = id;
        id
    }

    /// Is the edge `{u,v}` in this forest?
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edge_nodes.contains_key(&ekey(u, v))
    }

    /// Are `u` and `v` in the same tree?
    pub fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let (nu, nv) = (self.vert_node[u as usize], self.vert_node[v as usize]);
        if nu == NIL || nv == NIL {
            return false;
        }
        self.treap.root(nu) == self.treap.root(nv)
    }

    /// Representative of `v`'s tree (`u64::MAX ^ v` for isolated `v`).
    pub fn find_rep(&self, v: u32) -> u64 {
        let nv = self.vert_node[v as usize];
        if nv == NIL {
            (1 << 63) | v as u64
        } else {
            self.treap.root(nv) as u64
        }
    }

    /// Number of vertices in `v`'s tree.
    pub fn component_size(&self, v: u32) -> u64 {
        let nv = self.vert_node[v as usize];
        if nv == NIL {
            1
        } else {
            self.treap.sum(self.treap.root(nv)).verts as u64
        }
    }

    /// Aggregate of `v`'s tree.
    pub fn component_val(&self, v: u32) -> Val {
        let nv = self.vert_node[v as usize];
        if nv == NIL {
            return Val {
                verts: 1,
                tree: 0,
                nontree: 0,
            };
        }
        self.treap.sum(self.treap.root(nv))
    }

    /// Set the per-vertex non-tree count at this level.
    pub fn set_nontree_count(&mut self, v: u32, count: u64) {
        let node = self.ensure_vertex(v);
        let mut b = self.treap.base(node);
        b.nontree = count;
        self.treap.set_base(node, b);
    }

    /// Flip a tree edge's at-this-level flag.
    pub fn set_tree_flag(&mut self, u: u32, v: u32, flag: bool) {
        let &(fwd, _) = self.edge_nodes.get(&ekey(u, v)).expect("edge present");
        let mut b = self.treap.base(fwd);
        b.tree = flag as u32;
        self.treap.set_base(fwd, b);
    }

    /// Link `{u,v}` (endpoints must be in different trees).
    pub fn link(&mut self, u: u32, v: u32, tree_at_level: bool) {
        debug_assert!(!self.connected(u, v), "link would close a cycle");
        let lu = self.ensure_vertex(u);
        let lv = self.ensure_vertex(v);
        let e_uv = self.treap.alloc(Val {
            verts: 0,
            tree: if u < v { tree_at_level as u32 } else { 0 },
            nontree: 0,
        });
        let e_vu = self.treap.alloc(Val {
            verts: 0,
            tree: if u < v { 0 } else { tree_at_level as u32 },
            nontree: 0,
        });
        self.set_payload(e_uv, SeqPayload::Edge { from: u, to: v });
        self.set_payload(e_vu, SeqPayload::Edge { from: v, to: u });
        // tour(u) = A1 ++ A2 with A1 ending at loop(u);
        // tour(v) = B1 ++ B2 with B1 ending at loop(v).
        let (a1, a2) = self.treap.split_after(lu);
        let (b1, b2) = self.treap.split_after(lv);
        // New tour: A1, (u→v), B2, B1, (v→u), A2.
        let mut t = self.treap.merge(a1, e_uv);
        t = self.treap.merge(t, b2);
        t = self.treap.merge(t, b1);
        t = self.treap.merge(t, e_vu);
        let _ = self.treap.merge(t, a2);
        let key = ekey(u, v);
        let pair = if u < v { (e_uv, e_vu) } else { (e_vu, e_uv) };
        self.edge_nodes.insert(key, pair);
    }

    /// Cut the tree edge `{u,v}`.
    pub fn cut(&mut self, u: u32, v: u32) {
        let (fwd, rev) = self
            .edge_nodes
            .remove(&ekey(u, v))
            .expect("cut of absent edge");
        // Establish tour order of the two directions.
        let (first, second) = {
            let (left, right) = self.treap.split_before(fwd);
            if right != NIL && self.treap.root(rev) == self.treap.root(right) {
                // Re-join and work with fwd first.
                let _ = self.treap.merge(left, right);
                (fwd, rev)
            } else {
                let _ = self.treap.merge(left, right);
                (rev, fwd)
            }
        };
        // full = A ++ [first] ++ MID ++ [second] ++ C.
        let (a, _) = self.treap.split_before(first);
        let (first_seq, _) = self.treap.split_after(first);
        debug_assert_eq!(first_seq, first);
        let (mid, _) = self.treap.split_before(second);
        let (second_seq, c) = self.treap.split_after(second);
        debug_assert_eq!(second_seq, second);
        // Outer tour rejoins; MID becomes its own tour.
        let _ = self.treap.merge(a, c);
        self.treap.release(first);
        self.treap.release(second);
        let _ = mid;
    }

    /// A vertex in `v`'s tree with a positive non-tree count, if any.
    pub fn find_nontree_vertex(&self, v: u32) -> Option<u32> {
        let nv = self.vert_node[v as usize];
        if nv == NIL {
            return None;
        }
        let root = self.treap.root(nv);
        self.treap.find_positive(root, |val| val.nontree).map(|id| {
            match self.payload[id as usize] {
                SeqPayload::Loop(w) => w,
                p => unreachable!("non-tree count on {p:?}"),
            }
        })
    }

    /// A tree edge at this forest's level inside `v`'s tree, if any.
    pub fn find_level_tree_edge(&self, v: u32) -> Option<(u32, u32)> {
        let nv = self.vert_node[v as usize];
        if nv == NIL {
            return None;
        }
        let root = self.treap.root(nv);
        self.treap
            .find_positive(root, |val| val.tree as u64)
            .map(|id| match self.payload[id as usize] {
                SeqPayload::Edge { from, to } => (from, to),
                p => unreachable!("tree flag on {p:?}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_cut_roundtrip() {
        let mut f = SeqEtt::new(6, 1);
        assert!(!f.connected(0, 1));
        f.link(0, 1, true);
        f.link(1, 2, true);
        f.link(3, 4, false);
        assert!(f.connected(0, 2));
        assert!(!f.connected(0, 3));
        assert_eq!(f.component_size(0), 3);
        f.cut(0, 1);
        assert!(!f.connected(0, 2));
        assert!(f.connected(1, 2));
        assert_eq!(f.component_size(0), 1);
        assert_eq!(f.component_size(2), 2);
    }

    #[test]
    fn star_cuts() {
        let n = 20;
        let mut f = SeqEtt::new(n, 2);
        for v in 1..n as u32 {
            f.link(0, v, true);
        }
        assert_eq!(f.component_size(0), n as u64);
        for v in 1..n as u32 {
            f.cut(0, v);
            assert!(!f.connected(0, v));
        }
        assert_eq!(f.component_size(0), 1);
    }

    #[test]
    fn counts_and_search() {
        let mut f = SeqEtt::new(5, 3);
        f.link(0, 1, true);
        f.link(1, 2, false);
        f.set_nontree_count(2, 3);
        assert_eq!(f.component_val(0).nontree, 3);
        assert_eq!(f.find_nontree_vertex(0), Some(2));
        assert_eq!(f.find_level_tree_edge(0), Some((0, 1)));
        f.set_tree_flag(0, 1, false);
        assert_eq!(f.find_level_tree_edge(0), None);
        f.set_nontree_count(2, 0);
        assert_eq!(f.find_nontree_vertex(0), None);
    }

    #[test]
    fn random_links_and_cuts_vs_dsu() {
        use dyncon_primitives::SplitMix64;
        let n = 40usize;
        let mut rng = SplitMix64::new(7);
        let mut f = SeqEtt::new(n, 8);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for _ in 0..300 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            if u != v && !f.connected(u, v) {
                f.link(u, v, false);
                edges.push((u, v));
            } else if !edges.is_empty() && rng.next_below(2) == 0 {
                let i = rng.next_below(edges.len() as u64) as usize;
                let (a, b) = edges.swap_remove(i);
                f.cut(a, b);
            }
            // Verify against a DSU over current edges.
            let mut uf = dyncon_spanning_stub::Dsu::new(n);
            for &(a, b) in &edges {
                uf.union(a, b);
            }
            for _ in 0..5 {
                let a = rng.next_below(n as u64) as u32;
                let b = rng.next_below(n as u64) as u32;
                assert_eq!(f.connected(a, b), uf.find(a) == uf.find(b));
            }
        }
    }

    /// Minimal DSU for the test above (avoids a dev-dependency cycle).
    mod dyncon_spanning_stub {
        pub struct Dsu {
            p: Vec<u32>,
        }
        impl Dsu {
            pub fn new(n: usize) -> Self {
                Dsu {
                    p: (0..n as u32).collect(),
                }
            }
            pub fn find(&mut self, mut x: u32) -> u32 {
                while self.p[x as usize] != x {
                    self.p[x as usize] = self.p[self.p[x as usize] as usize];
                    x = self.p[x as usize];
                }
                x
            }
            pub fn union(&mut self, a: u32, b: u32) {
                let (ra, rb) = (self.find(a), self.find(b));
                if ra != rb {
                    self.p[ra as usize] = rb;
                }
            }
        }
    }
}
