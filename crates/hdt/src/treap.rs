//! Arena-allocated sequence treap with parent pointers and ETT
//! augmentation — the sequential counterpart of the concurrent skip list.
//!
//! Nodes are ordered implicitly (by tree position); splits are *by node*
//! (using parent pointers to walk the spine) rather than by rank, which is
//! exactly what Euler tour maintenance needs. Expected `O(lg n)` per
//! split/merge via uniformly random priorities.

use dyncon_primitives::SplitMix64;

/// Arena index.
pub type NodeId = u32;
/// Null node.
pub const NIL: NodeId = u32::MAX;

/// Augmented value: identical roles to the parallel `EttVal`.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct Val {
    /// 1 on vertex loop nodes.
    pub verts: u32,
    /// 1 on tree-edge nodes whose edge level equals the forest level.
    pub tree: u32,
    /// Per-vertex count of level-`i` non-tree edges (loop nodes only).
    pub nontree: u64,
}

impl Val {
    fn add(self, o: Val) -> Val {
        Val {
            verts: self.verts + o.verts,
            tree: self.tree + o.tree,
            nontree: self.nontree + o.nontree,
        }
    }
}

struct Node {
    pri: u64,
    l: NodeId,
    r: NodeId,
    p: NodeId,
    base: Val,
    sum: Val,
}

/// A forest of sequence treaps sharing one arena.
pub struct Treap {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    rng: SplitMix64,
}

impl Treap {
    /// Empty arena with deterministic priorities from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            rng: SplitMix64::new(seed),
        }
    }

    /// Allocate a singleton sequence.
    pub fn alloc(&mut self, base: Val) -> NodeId {
        let pri = self.rng.next_u64();
        if let Some(id) = self.free.pop() {
            let n = &mut self.nodes[id as usize];
            n.pri = pri;
            n.l = NIL;
            n.r = NIL;
            n.p = NIL;
            n.base = base;
            n.sum = base;
            id
        } else {
            let id = self.nodes.len() as NodeId;
            self.nodes.push(Node {
                pri,
                l: NIL,
                r: NIL,
                p: NIL,
                base,
                sum: base,
            });
            id
        }
    }

    /// Return a detached singleton to the free list.
    pub fn release(&mut self, id: NodeId) {
        debug_assert_eq!(self.nodes[id as usize].l, NIL);
        debug_assert_eq!(self.nodes[id as usize].r, NIL);
        debug_assert_eq!(self.nodes[id as usize].p, NIL);
        self.free.push(id);
    }

    /// Base value of a node.
    pub fn base(&self, x: NodeId) -> Val {
        self.nodes[x as usize].base
    }

    /// Subtree aggregate of a node.
    pub fn sum(&self, x: NodeId) -> Val {
        self.nodes[x as usize].sum
    }

    /// Set a node's base value and refresh ancestors. `O(lg n)` expected.
    pub fn set_base(&mut self, x: NodeId, base: Val) {
        self.nodes[x as usize].base = base;
        let mut cur = x;
        while cur != NIL {
            self.update(cur);
            cur = self.nodes[cur as usize].p;
        }
    }

    fn update(&mut self, x: NodeId) {
        let n = &self.nodes[x as usize];
        let mut s = n.base;
        if n.l != NIL {
            s = s.add(self.nodes[n.l as usize].sum);
        }
        if n.r != NIL {
            s = s.add(self.nodes[n.r as usize].sum);
        }
        self.nodes[x as usize].sum = s;
    }

    /// Root of the sequence containing `x`. `O(lg n)` expected.
    pub fn root(&self, x: NodeId) -> NodeId {
        let mut cur = x;
        while self.nodes[cur as usize].p != NIL {
            cur = self.nodes[cur as usize].p;
        }
        cur
    }

    /// Concatenate two sequences. Either may be `NIL`.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        debug_assert_eq!(self.nodes[a as usize].p, NIL);
        debug_assert_eq!(self.nodes[b as usize].p, NIL);
        if self.nodes[a as usize].pri > self.nodes[b as usize].pri {
            let ar = self.nodes[a as usize].r;
            if ar != NIL {
                self.nodes[ar as usize].p = NIL;
            }
            let nr = self.merge(ar, b);
            self.nodes[a as usize].r = nr;
            self.nodes[nr as usize].p = a;
            self.update(a);
            a
        } else {
            let bl = self.nodes[b as usize].l;
            if bl != NIL {
                self.nodes[bl as usize].p = NIL;
            }
            let nl = self.merge(a, bl);
            self.nodes[b as usize].l = nl;
            self.nodes[nl as usize].p = b;
            self.update(b);
            b
        }
    }

    /// Split the sequence containing `x` into `(prefix, suffix)`. When
    /// `x_goes_left`, `x` ends the prefix; otherwise it starts the suffix.
    fn split_at(&mut self, x: NodeId, x_goes_left: bool) -> (NodeId, NodeId) {
        let (mut l, mut r);
        if x_goes_left {
            let xr = self.nodes[x as usize].r;
            if xr != NIL {
                self.nodes[xr as usize].p = NIL;
            }
            self.nodes[x as usize].r = NIL;
            self.update(x);
            l = x;
            r = xr;
        } else {
            let xl = self.nodes[x as usize].l;
            if xl != NIL {
                self.nodes[xl as usize].p = NIL;
            }
            self.nodes[x as usize].l = NIL;
            self.update(x);
            l = xl;
            r = x;
        }
        // Walk the spine upward, distributing ancestors.
        let mut cur = x;
        let mut par = self.nodes[x as usize].p;
        self.nodes[x as usize].p = NIL;
        while par != NIL {
            let next = self.nodes[par as usize].p;
            self.nodes[par as usize].p = NIL;
            if self.nodes[par as usize].l == cur {
                // par and its right subtree come after x.
                self.nodes[par as usize].l = NIL;
                self.update(par);
                r = self.merge(r, par);
            } else {
                debug_assert_eq!(self.nodes[par as usize].r, cur);
                // par and its left subtree come before x.
                self.nodes[par as usize].r = NIL;
                self.update(par);
                l = self.merge(par, l);
            }
            cur = par;
            par = next;
        }
        (l, r)
    }

    /// Split after `x`: `x` ends the left part.
    pub fn split_after(&mut self, x: NodeId) -> (NodeId, NodeId) {
        self.split_at(x, true)
    }

    /// Split before `x`: `x` starts the right part.
    pub fn split_before(&mut self, x: NodeId) -> (NodeId, NodeId) {
        self.split_at(x, false)
    }

    /// Leftmost descendant that satisfies a positive-weight descent on
    /// `w`: finds a node whose *base* has `w(base) > 0` inside the subtree
    /// of `root`, or `None`.
    pub fn find_positive(&self, root: NodeId, w: impl Fn(Val) -> u64 + Copy) -> Option<NodeId> {
        if root == NIL || w(self.nodes[root as usize].sum) == 0 {
            return None;
        }
        let mut cur = root;
        loop {
            let n = &self.nodes[cur as usize];
            if n.l != NIL && w(self.nodes[n.l as usize].sum) > 0 {
                cur = n.l;
            } else if w(n.base) > 0 {
                return Some(cur);
            } else {
                debug_assert!(n.r != NIL && w(self.nodes[n.r as usize].sum) > 0);
                cur = n.r;
            }
        }
    }

    /// In-order node sequence of the tree rooted at `root` (test use).
    pub fn inorder(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![(root, false)];
        while let Some((x, expanded)) = stack.pop() {
            if x == NIL {
                continue;
            }
            if expanded {
                out.push(x);
            } else {
                stack.push((self.nodes[x as usize].r, false));
                stack.push((x, true));
                stack.push((self.nodes[x as usize].l, false));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: u64) -> Val {
        Val {
            verts: 1,
            tree: 0,
            nontree: n,
        }
    }

    #[test]
    fn merge_preserves_order() {
        let mut t = Treap::new(1);
        let ids: Vec<NodeId> = (0..50).map(|i| t.alloc(val(i))).collect();
        let mut root = ids[0];
        for &id in &ids[1..] {
            root = t.merge(root, id);
        }
        assert_eq!(t.inorder(root), ids);
        assert_eq!(t.sum(root).verts, 50);
        assert_eq!(t.sum(root).nontree, (0..50).sum::<u64>());
    }

    #[test]
    fn split_after_every_position() {
        for seed in 0..5 {
            let mut t = Treap::new(seed);
            let ids: Vec<NodeId> = (0..20).map(|i| t.alloc(val(i))).collect();
            let mut root = ids[0];
            for &id in &ids[1..] {
                root = t.merge(root, id);
            }
            for cut in 0..20 {
                let (l, r) = t.split_after(ids[cut]);
                assert_eq!(t.inorder(l), ids[..=cut].to_vec());
                if cut + 1 < 20 {
                    assert_eq!(t.inorder(r), ids[cut + 1..].to_vec());
                } else {
                    assert_eq!(r, NIL);
                }
                root = t.merge(l, r);
                assert_eq!(t.inorder(root), ids);
            }
        }
    }

    #[test]
    fn split_before_matches() {
        let mut t = Treap::new(9);
        let ids: Vec<NodeId> = (0..10).map(|i| t.alloc(val(i))).collect();
        let mut root = ids[0];
        for &id in &ids[1..] {
            root = t.merge(root, id);
        }
        let (l, r) = t.split_before(ids[4]);
        assert_eq!(t.inorder(l), ids[..4].to_vec());
        assert_eq!(t.inorder(r), ids[4..].to_vec());
        let _ = (l, r);
    }

    #[test]
    fn set_base_refreshes_sums() {
        let mut t = Treap::new(3);
        let ids: Vec<NodeId> = (0..30).map(|_| t.alloc(val(0))).collect();
        let mut root = ids[0];
        for &id in &ids[1..] {
            root = t.merge(root, id);
        }
        t.set_base(ids[17], val(9));
        let root = t.root(ids[0]);
        assert_eq!(t.sum(root).nontree, 9);
        let hit = t.find_positive(root, |v| v.nontree).unwrap();
        assert_eq!(hit, ids[17]);
    }

    #[test]
    fn find_positive_none_when_zero() {
        let mut t = Treap::new(4);
        let a = t.alloc(val(0));
        assert_eq!(t.find_positive(a, |v| v.nontree), None);
        assert_eq!(t.find_positive(a, |v| v.verts as u64), Some(a));
    }

    #[test]
    fn roots_track_membership() {
        let mut t = Treap::new(5);
        let a = t.alloc(val(1));
        let b = t.alloc(val(2));
        let c = t.alloc(val(3));
        let ab = t.merge(a, b);
        assert_eq!(t.root(a), ab);
        assert_eq!(t.root(b), ab);
        assert_ne!(t.root(c), ab);
    }
}
