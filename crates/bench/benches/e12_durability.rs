//! E12: durability costs — WAL append throughput and recovery time.
//!
//! `append` measures the write-ahead log's per-op cost for a 256-op
//! round under each fsync policy (`never` isolates the encoding + write
//! path; `every_round` adds the group-fsync the serving layer pays once
//! per commit). `recover` measures full crash recovery — snapshot load +
//! deterministic replay — as the log grows, the curve that motivates
//! compaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_durable::{recover, scratch_dir, FsyncPolicy, Snapshot, WalWriter};
use dyncon_graphgen::zipf_client_schedules;

const N: usize = 1 << 12;
const OPS_PER_ROUND: usize = 256;

/// One flat schedule of mixed-op rounds.
fn rounds(count: usize) -> Vec<Vec<dyncon_api::Op>> {
    zipf_client_schedules(N, 1, count, OPS_PER_ROUND, 0.3, 1.1, 12).remove(0)
}

/// A durable directory holding an empty snapshot and `log_rounds` logged
/// rounds — the recovery workload.
fn prebuilt_dir(log_rounds: usize) -> std::path::PathBuf {
    let dir = scratch_dir(&format!("e12-recover-{log_rounds}"));
    std::fs::create_dir_all(&dir).unwrap();
    Snapshot {
        num_vertices: N,
        next_round: 0,
        edges: Vec::new(),
    }
    .write_atomic(&dir)
    .unwrap();
    let mut wal = WalWriter::open(&dir, FsyncPolicy::Never, 0).unwrap();
    for ops in rounds(log_rounds) {
        wal.append_round(&ops).unwrap();
    }
    wal.sync().unwrap();
    dir
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_durability");
    group.sample_size(10);

    let append_rounds = rounds(64);
    for (label, policy) in [
        ("never", FsyncPolicy::Never),
        ("every_round", FsyncPolicy::EveryRound),
    ] {
        group.throughput(Throughput::Elements((64 * OPS_PER_ROUND) as u64));
        group.bench_function(BenchmarkId::new("append", label), |b| {
            b.iter(|| {
                let dir = scratch_dir("e12-append");
                std::fs::create_dir_all(&dir).unwrap();
                let mut wal = WalWriter::open(&dir, policy, 0).unwrap();
                for ops in &append_rounds {
                    wal.append_round(ops).unwrap();
                }
                drop(wal);
                let _ = std::fs::remove_dir_all(&dir);
            });
        });
    }

    for log_rounds in [16usize, 64, 256] {
        let dir = prebuilt_dir(log_rounds);
        group.throughput(Throughput::Elements((log_rounds * OPS_PER_ROUND) as u64));
        group.bench_with_input(
            BenchmarkId::new("recover", log_rounds),
            &log_rounds,
            |b, &log_rounds| {
                b.iter(|| {
                    let (g, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
                    assert_eq!(meta.replayed_rounds, log_rounds as u64);
                    g
                });
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
