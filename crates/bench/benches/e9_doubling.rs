//! E9 (ablation, §3.3): the doubling search vs scanning all non-tree
//! edges of a component at once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyncon_core::{BatchDynamicConnectivity, DeletionAlgorithm};
use dyncon_graphgen::cycle;

fn bench(c: &mut Criterion) {
    let n = 1 << 10;
    let mut edges = cycle(n);
    for i in 0..(n as u32 - 2) {
        edges.push((i, i + 2));
    }
    let victims: Vec<(u32, u32)> = (0..n as u32 - 1).step_by(8).map(|i| (i, i + 1)).collect();
    let mut group = c.benchmark_group("e9_doubling_ablation");
    group.sample_size(10);
    for scan_all in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if scan_all { "scan_all" } else { "doubling" }),
            &scan_all,
            |b, &scan_all| {
                b.iter(|| {
                    let mut g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(n)
                        .algorithm(DeletionAlgorithm::Simple)
                        .scan_all(scan_all)
                        .build()
                        .unwrap();
                    g.batch_insert(&edges);
                    for &e in &victims {
                        g.batch_delete(&[e]);
                    }
                    g.stats().edges_examined
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
