//! E2 (Theorem 4): batch insertion costs `O(k lg(1 + n/k))` — amortized
//! time per inserted edge falls as the batch size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::erdos_renyi;

fn bench(c: &mut Criterion) {
    let n = 1 << 15;
    let edges = erdos_renyi(n, n, 2);
    let mut group = c.benchmark_group("e2_batch_insert");
    group.sample_size(10);
    for kexp in [6usize, 10, 14] {
        let k = 1 << kexp;
        group.throughput(Throughput::Elements(edges.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k=2^{kexp}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let mut g = BatchDynamicConnectivity::new(n);
                    for chunk in edges.chunks(k) {
                        g.batch_insert(chunk);
                    }
                    g.num_components()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
