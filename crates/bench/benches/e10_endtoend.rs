//! E10: end-to-end sliding-window ingestion (the streaming scenario of
//! the paper's introduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_bench::replay;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::UpdateStream;

fn bench(c: &mut Criterion) {
    let n = 1 << 12;
    let mut group = c.benchmark_group("e10_sliding_window");
    group.sample_size(10);
    for batch in [256usize, 1024] {
        let stream = UpdateStream::sliding_window(n, 12, batch, 6, 256, 18);
        group.throughput(Throughput::Elements(stream.total_ops() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("batch={batch}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut g = BatchDynamicConnectivity::new(n);
                    replay(&mut g, stream)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
