//! E5 (Theorem 6): the same operation stream replayed into the
//! batch-dynamic structure (batched) and the sequential HDT baseline
//! (one operation at a time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyncon_bench::replay;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{erdos_renyi, UpdateStream};
use dyncon_hdt::HdtConnectivity;

fn bench(c: &mut Criterion) {
    let n = 1 << 11;
    let m = 2 * n;
    let edges = erdos_renyi(n, m, 8);
    let mut group = c.benchmark_group("e5_vs_hdt");
    group.sample_size(10);
    group.bench_function("hdt_sequential", |b| {
        let stream = UpdateStream::insert_then_delete(&edges, m, 1, 9);
        b.iter(|| {
            let mut h = HdtConnectivity::new(n);
            replay(&mut h, &stream)
        });
    });
    for kexp in [4usize, 12] {
        let k = 1 << kexp;
        let stream = UpdateStream::insert_then_delete(&edges, k.max(64), k, 9);
        group.bench_with_input(
            BenchmarkId::new("batch_dynamic", format!("k=2^{kexp}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut g = BatchDynamicConnectivity::new(n);
                    replay(&mut g, stream)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
