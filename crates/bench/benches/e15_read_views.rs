//! E15: the versioned-read plane — writer throughput under concurrent
//! snapshot readers.
//!
//! The same closed-loop Zipf clients as E11 drive a **versioned**
//! `ConnServer` while 0 / 4 / 16 reader threads poll `read_view()` and
//! answer connectivity queries against the returned snapshots. Readers
//! never enter the admission queue — they clone an `Arc` of the last
//! published label snapshot — so the claim under test is that writer
//! throughput is flat in the number of readers. The cost the writer
//! *does* pay is the per-round snapshot publication, which the
//! zero-reader cell prices against E11's unversioned baseline.
//!
//! Readers are **paced** (one read per 200 µs each, a closed loop with
//! think time) rather than hot-spinning: a spinning reader on a small
//! CI box measures CPU steal, not read-plane interference, and no real
//! client polls snapshots at millions of reads per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_api::Connectivity;
use dyncon_bench::drive_service;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_server::{ConnServer, ServerConfig, VersionedRead};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let n = 1 << 13;
    let clients = 4usize;
    let requests_per_client = 16;
    let ops_per_request = 64;
    let schedules = zipf_client_schedules(
        n,
        clients,
        requests_per_client,
        ops_per_request,
        0.5,
        1.1,
        42,
    );
    let total_ops = (clients * requests_per_client * ops_per_request) as u64;
    let mut group = c.benchmark_group("e15_read_views");
    group.sample_size(10);
    for threads in dyncon_bench::thread_counts() {
        for readers in [0usize, 4, 16] {
            group.throughput(Throughput::Elements(total_ops));
            group.bench_with_input(
                BenchmarkId::new(format!("t{threads}"), readers),
                &readers,
                |b, &readers| {
                    b.iter(|| {
                        let server = ConnServer::start_versioned(
                            BatchDynamicConnectivity::new(n),
                            ServerConfig::new()
                                .batch_cap(4096)
                                .coalesce_wait(Duration::from_micros(50))
                                .queue_capacity(2 * clients)
                                .worker_threads(threads)
                                .retain_views(8),
                        );
                        let stop = AtomicBool::new(false);
                        let wall = std::thread::scope(|scope| {
                            for r in 0..readers {
                                let (server, stop) = (&server, &stop);
                                scope.spawn(move || {
                                    let mut probe = r as u32;
                                    while !stop.load(Ordering::Relaxed) {
                                        if let Ok(view) = server.read_view() {
                                            probe = probe.wrapping_add(1) % n as u32;
                                            std::hint::black_box(
                                                view.connected(probe, (probe + 7) % n as u32),
                                            );
                                        }
                                        std::thread::sleep(Duration::from_micros(200));
                                    }
                                });
                            }
                            let (wall, _lats) = drive_service(&server, &schedules);
                            stop.store(true, Ordering::Relaxed);
                            wall
                        });
                        let report = server.join();
                        assert_eq!(report.ops_committed, total_ops);
                        wall
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
