//! E16: what tracing costs the pipeline it observes.
//!
//! The same closed-loop service run as E11, in three configurations per
//! worker thread count: no recorder attached (the `ServerConfig::trace =
//! None` no-op path), a recorder collecting every stage span, and a
//! recorder plus a live telemetry endpoint being scraped concurrently.
//! The three walls side by side are the overhead claim the
//! `trace_overhead_pct` perf row gates (≤5%): the no-op path must cost
//! nothing, and span recording must stay in the noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_bench::drive_service;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_server::{ConnServer, ServerConfig};
use dyncon_trace::{serve_telemetry, TraceRecorder};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy)]
enum Mode {
    Untraced,
    Traced,
    TracedScraped,
}

fn scrape(addr: std::net::SocketAddr, path: &str) {
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return;
    };
    let _ = write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"
    );
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
}

fn bench(c: &mut Criterion) {
    let n = 1 << 13;
    let clients = 4usize;
    let requests_per_client = 16;
    let ops_per_request = 64;
    let schedules = zipf_client_schedules(
        n,
        clients,
        requests_per_client,
        ops_per_request,
        0.5,
        1.1,
        42,
    );
    let total_ops = (clients * requests_per_client * ops_per_request) as u64;
    let mut group = c.benchmark_group("e16_trace_overhead");
    group.sample_size(10);
    for threads in dyncon_bench::thread_counts() {
        for (label, mode) in [
            ("untraced", Mode::Untraced),
            ("traced", Mode::Traced),
            ("traced_scraped", Mode::TracedScraped),
        ] {
            group.throughput(Throughput::Elements(total_ops));
            group.bench_with_input(BenchmarkId::new(label, threads), &mode, |b, &mode| {
                b.iter(|| {
                    let mut config = ServerConfig::new()
                        .batch_cap(4096)
                        .coalesce_wait(Duration::from_micros(50))
                        .queue_capacity(2 * clients)
                        .worker_threads(threads);
                    let recorder = match mode {
                        Mode::Untraced => None,
                        Mode::Traced | Mode::TracedScraped => Some(TraceRecorder::new()),
                    };
                    if let Some(t) = &recorder {
                        config = config.trace(t.clone());
                    }
                    let telemetry = match (mode, &recorder) {
                        (Mode::TracedScraped, Some(t)) => Some(
                            serve_telemetry(
                                "127.0.0.1:0",
                                dyncon_metrics::Registry::new(),
                                t.clone(),
                            )
                            .expect("endpoint binds"),
                        ),
                        _ => None,
                    };
                    let stop = Arc::new(AtomicBool::new(false));
                    let scraper = telemetry.as_ref().map(|t| {
                        let addr = t.local_addr();
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            while !stop.load(Ordering::Relaxed) {
                                scrape(addr, "/metrics");
                                scrape(addr, "/trace");
                            }
                        })
                    });
                    let server = ConnServer::start(BatchDynamicConnectivity::new(n), config);
                    let (wall, _lats) = drive_service(&server, &schedules);
                    let report = server.join();
                    assert_eq!(report.ops_committed, total_ops);
                    stop.store(true, Ordering::Relaxed);
                    if let Some(h) = scraper {
                        h.join().unwrap();
                    }
                    wall
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
