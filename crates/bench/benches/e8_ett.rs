//! E8 (Theorem 2): raw batch-parallel Euler tour tree primitives — the
//! Tseng et al. substrate shape (`O(k lg(1 + n/k))` per batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_ett::EulerTourForest;
use dyncon_graphgen::{random_tree, UpdateStream};

fn bench(c: &mut Criterion) {
    let n = 1 << 15;
    let tree = random_tree(n, 15);
    let mut group = c.benchmark_group("e8_ett_primitives");
    group.sample_size(10);
    for kexp in [4usize, 8, 12] {
        let k = 1 << kexp;
        let victims: Vec<(u32, u32)> = tree
            .iter()
            .copied()
            .step_by(tree.len() / k)
            .take(k)
            .collect();
        let vflags = vec![true; victims.len()];
        group.throughput(Throughput::Elements(victims.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("cut_then_link", format!("k=2^{kexp}")),
            &victims,
            |b, victims| {
                let mut f = EulerTourForest::new(n, 16);
                f.batch_link(&tree, &vec![true; tree.len()]);
                b.iter(|| {
                    f.batch_cut(victims);
                    f.batch_link(victims, &vflags);
                });
            },
        );
        let qs = UpdateStream::random_queries(n, k, 17);
        group.bench_with_input(
            BenchmarkId::new("connected", format!("k=2^{kexp}")),
            &qs,
            |b, qs| {
                let mut f = EulerTourForest::new(n, 18);
                f.batch_link(&tree, &vec![true; tree.len()]);
                b.iter(|| f.batch_connected(qs));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
