//! E13: latency under open-loop load.
//!
//! Poisson-arrival clients submit Zipf-skewed mixed-op requests through
//! `ConnServer` on a fixed schedule — the open-loop counterpart of E11's
//! closed-loop clients. The matrix crosses the offered rate (mean
//! inter-arrival gap) × the `DYNCON_THREADS` worker matrix; the measured
//! wall time is dominated by the arrival schedule once the server keeps
//! up, so the interesting output is the latency distribution the
//! `experiments` binary prints (table E13) and the `load_*` rows the
//! `perf_json` artifact records — this target exists so criterion tracks
//! regressions in the same code path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_bench::drive_open_loop;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{poisson_arrivals, zipf_client_schedules};
use dyncon_server::{ConnServer, ServerConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let n = 1 << 13;
    let clients = 4usize;
    let requests_per_client = 16;
    let ops_per_request = 64;
    let mut group = c.benchmark_group("e13_load");
    group.sample_size(10);
    for threads in dyncon_bench::thread_counts() {
        for mean_gap_us in [200u64, 50] {
            let schedules = zipf_client_schedules(
                n,
                clients,
                requests_per_client,
                ops_per_request,
                0.5,
                1.1,
                42,
            );
            let arrivals: Vec<Vec<u64>> = (0..clients)
                .map(|c| {
                    poisson_arrivals(requests_per_client, mean_gap_us * 1_000, 0xE13 + c as u64)
                })
                .collect();
            let total_ops = (clients * requests_per_client * ops_per_request) as u64;
            group.throughput(Throughput::Elements(total_ops));
            group.bench_with_input(
                BenchmarkId::new(format!("t{threads}"), mean_gap_us),
                &mean_gap_us,
                |b, _| {
                    b.iter(|| {
                        let server = ConnServer::start(
                            BatchDynamicConnectivity::new(n),
                            ServerConfig::new()
                                .batch_cap(4096)
                                .coalesce_wait(Duration::from_micros(50))
                                .queue_capacity(2 * clients)
                                .worker_threads(threads),
                        );
                        let load = drive_open_loop(&server, &schedules, &arrivals);
                        let report = server.join();
                        assert_eq!(
                            load.accepted + load.rejected,
                            (clients * requests_per_client) as u64
                        );
                        assert_eq!(report.ops_committed, load.accepted * ops_per_request as u64);
                        load.wall
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
