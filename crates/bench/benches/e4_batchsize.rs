//! E4 (Theorem 9, the headline bound): amortized deletion cost
//! `O(lg n · lg(1 + n/Δ))` — per-edge deletion time falls as the average
//! deletion batch size Δ grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{erdos_renyi, Batch, UpdateStream};

fn bench(c: &mut Criterion) {
    let n = 1 << 12;
    let m = 2 * n;
    let edges = erdos_renyi(n, m, 5);
    let mut group = c.benchmark_group("e4_deletion_vs_delta");
    group.sample_size(10);
    for delta in [16usize, 256, 4096] {
        let dels: Vec<Batch> = UpdateStream::insert_then_delete(&edges, m, delta, 6)
            .batches
            .into_iter()
            .filter(|b| matches!(b, Batch::Delete(_)))
            .collect();
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("delta={delta}")),
            &dels,
            |b, dels| {
                b.iter(|| {
                    let mut g = BatchDynamicConnectivity::new(n);
                    g.batch_insert(&edges);
                    for batch in dels {
                        if let Batch::Delete(v) = batch {
                            g.batch_delete(v);
                        }
                    }
                    g.num_components()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
