//! E6 (§1 motivation): per-batch latency of the dynamic structure vs the
//! recompute-from-scratch baseline on a churn workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{erdos_renyi, UpdateStream};
use dyncon_spanning::StaticRecompute;

fn bench(c: &mut Criterion) {
    let n = 1 << 14;
    let m = 16 * n;
    let base = erdos_renyi(n, m, 10);
    let k = 64usize;
    let fresh = erdos_renyi(n, 2 * k, 911);
    let queries = UpdateStream::random_queries(n, 64, 12);

    let mut group = c.benchmark_group("e6_vs_static");
    group.sample_size(10);

    let mut g = BatchDynamicConnectivity::new(n);
    g.batch_insert(&base);
    group.bench_function(BenchmarkId::new("dynamic", format!("k={k}")), |b| {
        b.iter(|| {
            g.batch_delete(&fresh[..k]);
            g.batch_insert(&fresh[..k]);
            g.batch_connected(&queries)
        });
    });

    let mut s = StaticRecompute::new(n);
    s.batch_insert(&base);
    group.bench_function(
        BenchmarkId::new("static_recompute", format!("k={k}")),
        |b| {
            b.iter(|| {
                s.batch_delete(&fresh[..k]);
                s.batch_insert(&fresh[..k]);
                s.batch_connected(&queries)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
