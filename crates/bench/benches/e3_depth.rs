//! E3 (Theorem 5 vs Theorem 7): wall-clock comparison of the two deletion
//! searches on structured workloads (the round/phase *counts* appear in
//! the `experiments` binary's E3 table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyncon_core::{BatchDynamicConnectivity, DeletionAlgorithm};
use dyncon_graphgen::{erdos_renyi, grid2d};

fn bench(c: &mut Criterion) {
    let n = 1 << 11;
    let workloads: Vec<(&str, Vec<(u32, u32)>)> = vec![
        ("grid", grid2d(n / 64, 64)),
        ("er", erdos_renyi(n, 2 * n, 3)),
    ];
    let mut group = c.benchmark_group("e3_deletion_algorithms");
    group.sample_size(10);
    for (name, edges) in &workloads {
        for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("{algo:?}")),
                edges,
                |b, edges| {
                    b.iter(|| {
                        let mut g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(n)
                            .algorithm(algo)
                            .build()
                            .unwrap();
                        g.batch_insert(edges);
                        for chunk in edges.chunks(256) {
                            g.batch_delete(chunk);
                        }
                        g.num_components()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
