//! E11: group-commit service throughput and latency.
//!
//! Closed-loop clients (one OS thread each) submit Zipf-skewed mixed-op
//! requests through `ConnServer`; the matrix crosses client count ×
//! batch cap × the `DYNCON_THREADS` worker matrix. Throughput is
//! reported per-op (criterion `Throughput::Elements`); the batch cap is
//! the group-commit knob — a larger cap buys the `lg(1 + n/k)` batch
//! amortization at the price of per-request latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_bench::drive_service;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_server::{ConnServer, ServerConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let n = 1 << 13;
    let requests_per_client = 16;
    let ops_per_request = 64;
    let mut group = c.benchmark_group("e11_service");
    group.sample_size(10);
    for threads in dyncon_bench::thread_counts() {
        for clients in [1usize, 4, 8] {
            for cap in [256usize, 4096] {
                let schedules = zipf_client_schedules(
                    n,
                    clients,
                    requests_per_client,
                    ops_per_request,
                    0.5,
                    1.1,
                    42,
                );
                let total_ops = (clients * requests_per_client * ops_per_request) as u64;
                group.throughput(Throughput::Elements(total_ops));
                group.bench_with_input(
                    BenchmarkId::new(format!("t{threads}_c{clients}"), cap),
                    &cap,
                    |b, &cap| {
                        b.iter(|| {
                            let server = ConnServer::start(
                                BatchDynamicConnectivity::new(n),
                                ServerConfig::new()
                                    .batch_cap(cap)
                                    .coalesce_wait(Duration::from_micros(50))
                                    .queue_capacity(2 * clients.max(1))
                                    .worker_threads(threads),
                            );
                            let (wall, _lats) = drive_service(&server, &schedules);
                            let report = server.join();
                            assert_eq!(report.ops_committed, total_ops);
                            wall
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
