//! E7: self-relative thread scaling of the three batch operations
//! (this machine has 2 cores; the depth bounds predict scalability).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{random_tree, UpdateStream};

fn bench(c: &mut Criterion) {
    let n = 1 << 15;
    let tree = random_tree(n, 13);
    let qs = UpdateStream::random_queries(n, 1 << 14, 14);
    let mut group = c.benchmark_group("e7_thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 2] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut g = BatchDynamicConnectivity::new(n);
        pool.install(|| g.batch_insert(&tree));
        group.bench_with_input(BenchmarkId::new("query_16k", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| g.batch_connected(&qs)));
        });
        group.bench_with_input(
            BenchmarkId::new("insert_tree", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    pool.install(|| {
                        let mut g2 = BatchDynamicConnectivity::new(n);
                        g2.batch_insert(&tree);
                        g2.num_components()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
