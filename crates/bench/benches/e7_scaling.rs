//! E7: self-relative thread scaling of the three batch operations.
//!
//! The thread matrix comes from `DYNCON_THREADS` (comma-separated,
//! default `1,2` — see [`dyncon_bench::thread_counts`]); the depth bounds
//! predict scalability up to whatever the hardware offers.
//!
//! Each operation benches against a structure in a consistent state:
//! `query` reuses one immutable forest per thread count (queries never
//! mutate), while `insert_tree` and `delete_tree` rebuild via
//! `iter_batched` setup so every measurement sees the same fresh input
//! structure — never a stale one left over from a previous iteration —
//! and the rebuild cost stays **outside** the timed routine.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{random_tree, UpdateStream};

fn bench(c: &mut Criterion) {
    let n = 1 << 15;
    let tree = random_tree(n, 13);
    let qs = UpdateStream::random_queries(n, 1 << 14, 14);
    // Delete a quarter of the tree edges in one batch: tree deletions are
    // the expensive path (replacement search), and a partial batch leaves
    // surviving components to search.
    let dels: Vec<(u32, u32)> = tree.iter().copied().step_by(4).collect();
    let mut group = c.benchmark_group("e7_thread_scaling");
    group.sample_size(10);
    for threads in dyncon_bench::thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut g = BatchDynamicConnectivity::new(n);
        pool.install(|| g.batch_insert(&tree));
        group.bench_with_input(BenchmarkId::new("query_16k", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| g.batch_connected(&qs)));
        });
        group.bench_with_input(
            BenchmarkId::new("insert_tree", threads),
            &threads,
            |b, _| {
                b.iter_batched(
                    || BatchDynamicConnectivity::new(n),
                    |mut g2| {
                        pool.install(|| {
                            g2.batch_insert(&tree);
                            g2.num_components()
                        })
                    },
                    BatchSize::PerIteration,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("delete_tree", threads),
            &threads,
            |b, _| {
                b.iter_batched(
                    || {
                        pool.install(|| {
                            let mut g2 = BatchDynamicConnectivity::new(n);
                            g2.batch_insert(&tree);
                            g2
                        })
                    },
                    |mut g2| {
                        pool.install(|| {
                            g2.batch_delete(&dels);
                            g2.num_components()
                        })
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
