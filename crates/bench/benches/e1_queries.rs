//! E1 (Theorem 3): batch connectivity queries cost
//! `O(k lg(1 + n/k))` expected work — time per query must *fall* as the
//! batch grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{random_tree, UpdateStream};

fn bench(c: &mut Criterion) {
    let n = 1 << 16;
    let mut g = BatchDynamicConnectivity::new(n);
    g.batch_insert(&random_tree(n, 1));
    let mut group = c.benchmark_group("e1_batch_queries");
    group.sample_size(10);
    for kexp in [4usize, 8, 12, 16] {
        let k = 1 << kexp;
        let qs = UpdateStream::random_queries(n, k, kexp as u64);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k=2^{kexp}")),
            &qs,
            |b, qs| {
                b.iter(|| g.batch_connected(qs));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
