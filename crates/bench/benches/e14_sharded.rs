//! E14: sharded serving throughput vs shard count × thread count.
//!
//! The same closed-loop Zipf clients as E11, now through a
//! `ShardedServer`: the coordinator decomposes each admitted round into
//! per-shard sealed sub-rounds (parallel across shard writers) and
//! resolves cross-shard queries through the contracted boundary graph.
//! The matrix crosses the `DYNCON_SHARDS` shard matrix with the
//! `DYNCON_THREADS` worker matrix; 1 shard is the degenerate baseline
//! (all coordination overhead, no parallelism win), so the interesting
//! read is the 2-and-up trend against it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyncon_bench::drive_service;
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_shard::{ShardConfig, ShardMapKind, ShardedServer};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let n = 1 << 13;
    let clients = 4usize;
    let requests_per_client = 12;
    let ops_per_request = 48;
    let schedules = zipf_client_schedules(
        n,
        clients,
        requests_per_client,
        ops_per_request,
        0.5,
        1.1,
        42,
    );
    let total_ops = (clients * requests_per_client * ops_per_request) as u64;
    let mut group = c.benchmark_group("e14_sharded");
    group.sample_size(10);
    for threads in dyncon_bench::thread_counts() {
        for shards in dyncon_bench::shard_counts() {
            group.throughput(Throughput::Elements(total_ops));
            group.bench_with_input(
                BenchmarkId::new(format!("t{threads}"), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
                            n,
                            ShardConfig::new()
                                .shards(shards)
                                .kind(ShardMapKind::Hash)
                                .batch_cap(4096)
                                .coalesce_wait(Duration::from_micros(50))
                                .queue_capacity(2 * clients)
                                .shard_worker_threads(threads),
                        )
                        .expect("sharded server starts");
                        let (wall, _lats) = drive_service(server.conn(), &schedules);
                        let report = server.join().expect("sharded server joins");
                        assert_eq!(report.ops_committed, total_ops);
                        wall
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
