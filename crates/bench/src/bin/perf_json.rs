//! Machine-readable perf smoke: the `bench-perf` CI job's artifact writer.
//!
//! Runs the three batch operations (insert / connected / delete) plus the
//! group-commit serving layer on CI smoke sizes across the
//! `DYNCON_THREADS` matrix and writes one JSON record per `(op, threads)`
//! cell:
//!
//! ```text
//! {"op":"batch_insert","n":16384,"batch":4096,"threads":2,"median_ns":1234567}
//! ```
//!
//! The two service rows measure the `dyncon-server` frontend end to end
//! (4 closed-loop Zipf clients): `service_throughput` is the wall time of
//! the whole run, `service_latency_p50` the median submit→answer latency.
//! The four load rows measure the same frontend **open-loop** (Poisson
//! arrivals, latency from the intended arrival — no coordinated
//! omission): `load_p50_ns` / `load_p99_ns` / `load_p999_ns` are latency
//! quantiles, `queue_depth_max` is the server's queue-depth gauge
//! high-water mark from the metrics snapshot (a count, not nanoseconds —
//! the `median_ns` field carries it for schema uniformity).
//! The two tracing rows price the observability layer itself:
//! `trace_overhead_pct` re-runs the closed-loop service with a
//! `TraceRecorder` attached and reports the traced wall as a percentage
//! of the untraced one (≈100; a machine-invariant ratio, gated ≤105),
//! `slow_round_p99_ns` is the recorder's p99 round wall time.
//! The two versioned-read rows measure the MVCC plane:
//! `read_view_throughput` is the wall time of 4 reader threads answering
//! 5000 snapshot connectivity queries each against a quiesced versioned
//! server, `writer_throughput_with_readers` the closed-loop service run
//! with 16 paced snapshot readers attached (compare against
//! `service_throughput`).
//! The two durability rows measure `dyncon-durable`: `wal_append_ns` is
//! the wall time of appending 128 mixed rounds to the write-ahead log
//! (fsync off — the stable-in-CI encode+write path), `recovery_ms` the
//! full snapshot-load + deterministic-replay recovery of that log.
//!
//! Usage: `perf_json [output-path]` (default `BENCH_PR.json`). The binary
//! **validates its own output** — no records, a zero/unparseable median,
//! or a non-finite value is a hard failure — so a broken measurement
//! pipeline fails the job instead of uploading garbage. This file seeds
//! the repository's perf trajectory: one artifact per PR, comparable
//! across commits.

use dyncon_bench::{
    drive_open_loop, drive_service, latency_quantile, median_duration, thread_counts, time,
};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_durable::{recover, scratch_dir, FsyncPolicy, Snapshot, WalWriter};
use dyncon_graphgen::{erdos_renyi, poisson_arrivals, zipf_client_schedules, UpdateStream};
use dyncon_server::{ConnServer, ServerConfig};
use dyncon_shard::{ShardConfig, ShardedServer};
use dyncon_trace::TraceRecorder;
use std::time::Duration;

struct Record {
    op: &'static str,
    n: usize,
    batch: usize,
    threads: usize,
    median_ns: u128,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            r#"{{"op":"{}","n":{},"batch":{},"threads":{},"median_ns":{}}}"#,
            self.op, self.n, self.batch, self.threads, self.median_ns
        )
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR.json".to_string());

    // CI smoke sizes: large enough that every parallel path engages
    // (≫ SEQ_THRESHOLD per batch), small enough for a sub-minute job.
    let n = 1 << 14;
    let insert_batch = 1 << 12;
    let query_batch = 1 << 14;
    let delete_batch = 1 << 11;
    let reps = 3;

    let edges = erdos_renyi(n, 2 * n, 13);
    let qs = UpdateStream::random_queries(n, query_batch, 14);

    let mut records: Vec<Record> = Vec::new();
    for threads in thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();

        let insert_run = || {
            pool.install(|| {
                let mut g = BatchDynamicConnectivity::new(n);
                time(|| {
                    for chunk in edges.chunks(insert_batch) {
                        g.batch_insert(chunk);
                    }
                })
                .0
            })
        };
        let query_run = || {
            pool.install(|| {
                let mut g = BatchDynamicConnectivity::new(n);
                g.batch_insert(&edges);
                time(|| std::hint::black_box(g.batch_connected(&qs))).0
            })
        };
        let delete_run = || {
            pool.install(|| {
                let mut g = BatchDynamicConnectivity::new(n);
                g.batch_insert(&edges);
                time(|| {
                    for chunk in edges.chunks(delete_batch) {
                        g.batch_delete(chunk);
                    }
                })
                .0
            })
        };

        type Cell<'a> = (&'static str, usize, Box<dyn FnMut() -> Duration + 'a>);
        let cells: [Cell<'_>; 3] = [
            ("batch_insert", insert_batch, Box::new(insert_run)),
            ("batch_connected", query_batch, Box::new(query_run)),
            ("batch_delete", delete_batch, Box::new(delete_run)),
        ];
        for (op, batch, mut run) in cells {
            let median = median_duration(reps, &mut run);
            records.push(Record {
                op,
                n,
                batch,
                threads,
                median_ns: median.as_nanos(),
            });
            eprintln!("{op} @ {threads} threads: median {} ns", median.as_nanos());
        }

        // The serving layer: 4 closed-loop Zipf clients through the
        // group-commit frontend, writer pinned to this thread count.
        let clients = 4;
        let service_cap = 1 << 11;
        let schedules = zipf_client_schedules(n, clients, 16, 64, 0.5, 1.1, 15);
        let mut p50s: Vec<Duration> = Vec::new();
        let service_run = || {
            let server = ConnServer::start(
                BatchDynamicConnectivity::new(n),
                ServerConfig::new()
                    .batch_cap(service_cap)
                    .coalesce_wait(Duration::from_micros(50))
                    .queue_capacity(2 * clients)
                    .worker_threads(threads),
            );
            let (wall, lats) = drive_service(&server, &schedules);
            server.join();
            p50s.push(latency_quantile(&lats, 0.5));
            wall
        };
        let wall = median_duration(reps, service_run);
        p50s.sort_unstable();
        let p50 = p50s[p50s.len() / 2];
        for (op, median) in [("service_throughput", wall), ("service_latency_p50", p50)] {
            records.push(Record {
                op,
                n,
                batch: service_cap,
                threads,
                median_ns: median.as_nanos(),
            });
            eprintln!("{op} @ {threads} threads: median {} ns", median.as_nanos());
        }

        // Tracing + export overhead: the identical closed-loop run with
        // the FULL observability stack attached — `TraceRecorder`,
        // metrics registry, and a `TelemetryExporter` pushing frames to
        // an in-process `Collector` every 10 ms. `trace_overhead_pct`
        // is the observed-stack wall as a percentage of a bare wall
        // from interleaved back-to-back runs (≈100; the acceptance
        // band is ≤105 = ≤5% overhead) — a ratio of same-machine
        // walls, so it carries no machine factor. `slow_round_p99_ns`
        // is the
        // recorder's own p99 round wall time across every traced round.
        // `export_frames_total` counts the frames the exporter actually
        // delivered (proportional to run wall, so it normalizes like a
        // timing row); `export_lag_ms` is the p50 frame
        // creation→delivery lag in whole milliseconds, floored at 1 (a
        // local collector keeps it at the floor — a climbing value
        // means the push path is backing up).
        let recorder = TraceRecorder::new();
        let export_registry = dyncon_metrics::Registry::new();
        let collector = dyncon_export::Collector::bind("127.0.0.1:0").expect("collector binds");
        let exporter = dyncon_export::TelemetryExporter::start(
            collector.local_addr().to_string(),
            export_registry.clone(),
            dyncon_export::ExportConfig::new()
                .interval(Duration::from_millis(10))
                .source("perf-json")
                .trace(recorder.clone()),
        );
        let observed_run = |observe: bool| {
            let mut config = ServerConfig::new()
                .batch_cap(service_cap)
                .coalesce_wait(Duration::from_micros(50))
                .queue_capacity(2 * clients)
                .worker_threads(threads);
            if observe {
                config = config
                    .metrics(export_registry.clone())
                    .trace(recorder.clone());
            }
            let server = ConnServer::start(BatchDynamicConnectivity::new(n), config);
            let (wall, _lats) = drive_service(&server, &schedules);
            server.join();
            wall
        };
        // Interleaved pairs + min-of-reps: back-to-back bare/observed
        // runs cancel machine drift between the two measurement
        // sections, and minima are the noise-robust estimator for a
        // ratio of small walls on a shared CI box.
        let overhead_reps = 5;
        let (mut bare_walls, mut observed_walls) = (Vec::new(), Vec::new());
        for _ in 0..overhead_reps {
            bare_walls.push(observed_run(false));
            observed_walls.push(observed_run(true));
        }
        let bare_min = bare_walls.iter().min().unwrap().as_nanos().max(1);
        let observed_min = observed_walls.iter().min().unwrap().as_nanos();
        let overhead_pct = ((observed_min as f64 * 100.0) / (bare_min as f64))
            .round()
            .max(1.0) as u128;
        let slow_p99 = recorder.round_wall_quantile(0.99).unwrap_or(1).max(1) as u128;
        exporter.close();
        let export_snapshot = export_registry.snapshot();
        let export_frames = export_snapshot
            .get("dyncon_export_frames_total")
            .and_then(|m| m.value.as_counter())
            .unwrap_or(0)
            .max(1) as u128;
        let export_lag_ms = export_snapshot
            .get("dyncon_export_lag_ns")
            .and_then(|m| m.value.as_histogram())
            .and_then(|h| h.quantile(0.5))
            .unwrap_or(0)
            .div_euclid(1_000_000)
            .max(1) as u128;
        // The final flush is applied asynchronously by the collector's
        // handler thread; give it a moment before judging the pipeline.
        let settle = std::time::Instant::now() + Duration::from_secs(2);
        while collector.frames_received() == 0 && std::time::Instant::now() < settle {
            std::thread::sleep(Duration::from_millis(5));
        }
        if collector.frames_received() == 0 || collector.checksum_failures() > 0 {
            eprintln!(
                "perf_json: export pipeline broken ({} frames, {} checksum failures)",
                collector.frames_received(),
                collector.checksum_failures()
            );
            std::process::exit(1);
        }
        collector.close();
        for (op, median_ns) in [
            ("trace_overhead_pct", overhead_pct),
            ("slow_round_p99_ns", slow_p99),
            ("export_frames_total", export_frames),
            ("export_lag_ms", export_lag_ms),
        ] {
            records.push(Record {
                op,
                n,
                batch: service_cap,
                threads,
                median_ns,
            });
            eprintln!("{op} @ {threads} threads: {median_ns}");
        }

        // The open-loop load observatory: Poisson arrivals at a fixed
        // offered rate (mean gap 100 µs per client), latency measured
        // from the intended arrival. Latency quantiles come from the
        // middle rep (by p50) so the three quantile rows describe one
        // coherent run; queue_depth_max comes from the server's own
        // metrics snapshot.
        let load_requests = 32;
        let load_schedules = zipf_client_schedules(n, clients, load_requests, 64, 0.5, 1.1, 15);
        let load_arrivals: Vec<Vec<u64>> = (0..clients)
            .map(|c| poisson_arrivals(load_requests, 100_000, 0xE13 + c as u64))
            .collect();
        let mut load_runs: Vec<(Duration, Duration, Duration, i64)> = Vec::new();
        for _ in 0..reps {
            let server = ConnServer::start(
                BatchDynamicConnectivity::new(n),
                ServerConfig::new()
                    .batch_cap(service_cap)
                    .coalesce_wait(Duration::from_micros(50))
                    .queue_capacity(2 * clients)
                    .worker_threads(threads),
            );
            let load = drive_open_loop(&server, &load_schedules, &load_arrivals);
            let report = server.join();
            let queue_max = report
                .metrics
                .get("dyncon_server_queue_depth")
                .and_then(|m| m.value.as_gauge())
                .map(|(_, max)| max)
                .unwrap_or(0);
            load_runs.push((
                latency_quantile(&load.latencies, 0.5),
                latency_quantile(&load.latencies, 0.99),
                latency_quantile(&load.latencies, 0.999),
                queue_max,
            ));
        }
        load_runs.sort_unstable_by_key(|r| r.0);
        let (p50, p99, p999, queue_max) = load_runs[load_runs.len() / 2];
        for (op, median_ns) in [
            ("load_p50_ns", p50.as_nanos()),
            ("load_p99_ns", p99.as_nanos()),
            ("load_p999_ns", p999.as_nanos()),
            ("queue_depth_max", queue_max.max(0) as u128),
        ] {
            records.push(Record {
                op,
                n,
                batch: service_cap,
                threads,
                median_ns,
            });
            eprintln!("{op} @ {threads} threads: {median_ns}");
        }

        // The sharding layer: the same closed-loop Zipf clients through
        // a 2-shard `ShardedServer` (hash partition, so roughly half the
        // edges cross shards and the boundary graph is really exercised).
        // `shard_throughput` is the wall time of the run;
        // `shard_boundary_ops` is the total number of contracted edges
        // inserted across boundary-graph rebuilds, read from the pooled
        // registry (a count in the `median_ns` field, like
        // `queue_depth_max`).
        let shard_schedules = zipf_client_schedules(n, clients, 12, 48, 0.5, 1.1, 17);
        let mut boundary_ops: Vec<u128> = Vec::new();
        let shard_run = || {
            let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
                n,
                ShardConfig::new()
                    .shards(2)
                    .batch_cap(service_cap)
                    .coalesce_wait(Duration::from_micros(50))
                    .queue_capacity(2 * clients)
                    .shard_worker_threads(threads),
            )
            .expect("sharded server starts");
            let (wall, _lats) = drive_service(server.conn(), &shard_schedules);
            let report = server.join().expect("sharded server joins");
            boundary_ops.push(
                report
                    .metrics
                    .get("dyncon_shard_boundary_ops")
                    .and_then(|m| m.value.as_histogram())
                    .map(|h| h.sum as u128)
                    .unwrap_or(0),
            );
            wall
        };
        let shard_wall = median_duration(reps, shard_run);
        boundary_ops.sort_unstable();
        let boundary_median = boundary_ops[boundary_ops.len() / 2];
        for (op, median_ns) in [
            ("shard_throughput", shard_wall.as_nanos()),
            ("shard_boundary_ops", boundary_median),
        ] {
            records.push(Record {
                op,
                n,
                batch: service_cap,
                threads,
                median_ns,
            });
            eprintln!("{op} @ {threads} threads: {median_ns}");
        }

        // The versioned-read plane. `read_view_throughput` is the wall
        // time of 4 reader threads answering 5000 snapshot connectivity
        // queries each against a quiesced versioned server — the pure
        // read-path cost (`read_view` Arc clone + label lookup), no
        // writer interference. `writer_throughput_with_readers` is the
        // same closed-loop run as `service_throughput` but against a
        // versioned server with 16 paced snapshot readers (one read per
        // 200 µs each) — comparable against `service_throughput` to
        // price snapshot publication plus read-plane interference.
        {
            use dyncon_api::Connectivity;
            use dyncon_server::VersionedRead;
            use std::sync::atomic::{AtomicBool, Ordering};
            let read_threads = 4usize;
            let reads_per_thread = 5000u32;
            let reader_server = ConnServer::start_versioned(
                BatchDynamicConnectivity::new(n),
                ServerConfig::new()
                    .batch_cap(service_cap)
                    .coalesce_wait(Duration::from_micros(50))
                    .queue_capacity(2 * clients)
                    .worker_threads(threads)
                    .retain_views(8),
            );
            for ops in zipf_client_schedules(n, 1, 8, 64, 0.3, 1.1, 19).remove(0) {
                reader_server
                    .submit_blocking(ops)
                    .expect("service is open")
                    .wait()
                    .expect("round commits");
            }
            let read_run = || {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..read_threads)
                        .map(|r| {
                            let server = &reader_server;
                            scope.spawn(move || {
                                let mut probe = r as u32;
                                for _ in 0..reads_per_thread {
                                    let view = server.read_view().expect("views retained");
                                    probe = probe.wrapping_add(1) % n as u32;
                                    std::hint::black_box(
                                        view.connected(probe, (probe + 7) % n as u32),
                                    );
                                }
                            })
                        })
                        .collect();
                    time(|| {
                        for h in handles {
                            h.join().unwrap();
                        }
                    })
                    .0
                })
            };
            let read_wall = median_duration(reps, read_run);
            reader_server.join();

            let versioned_schedules = zipf_client_schedules(n, clients, 16, 64, 0.5, 1.1, 15);
            let versioned_run = || {
                let server = ConnServer::start_versioned(
                    BatchDynamicConnectivity::new(n),
                    ServerConfig::new()
                        .batch_cap(service_cap)
                        .coalesce_wait(Duration::from_micros(50))
                        .queue_capacity(2 * clients)
                        .worker_threads(threads)
                        .retain_views(8),
                );
                let stop = AtomicBool::new(false);
                let wall = std::thread::scope(|scope| {
                    for r in 0..16usize {
                        let (server, stop) = (&server, &stop);
                        scope.spawn(move || {
                            let mut probe = r as u32;
                            while !stop.load(Ordering::Relaxed) {
                                if let Ok(view) = server.read_view() {
                                    probe = probe.wrapping_add(1) % n as u32;
                                    std::hint::black_box(
                                        view.connected(probe, (probe + 7) % n as u32),
                                    );
                                }
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        });
                    }
                    let (wall, _lats) = drive_service(&server, &versioned_schedules);
                    stop.store(true, Ordering::Relaxed);
                    wall
                });
                server.join();
                wall
            };
            let versioned_wall = median_duration(reps, versioned_run);
            for (op, median_ns) in [
                ("read_view_throughput", read_wall.as_nanos()),
                ("writer_throughput_with_readers", versioned_wall.as_nanos()),
            ] {
                records.push(Record {
                    op,
                    n,
                    batch: service_cap,
                    threads,
                    median_ns,
                });
                eprintln!("{op} @ {threads} threads: {median_ns}");
            }
        }

        // The durable layer: WAL append wall time for `wal_rounds` mixed
        // rounds (no fsync — the pure encode+write path CI can time
        // stably) and full crash recovery (snapshot load + deterministic
        // replay) of that log. Single-threaded operations, recorded per
        // matrix cell so the artifact stays uniform.
        let wal_rounds = 128usize;
        let wal_ops = 64usize;
        let round_ops = zipf_client_schedules(n, 1, wal_rounds, wal_ops, 0.3, 1.1, 16).remove(0);
        let append_run = || {
            let dir = scratch_dir("perf-wal");
            std::fs::create_dir_all(&dir).unwrap();
            let mut wal = WalWriter::open(&dir, FsyncPolicy::Never, 0).unwrap();
            let d = time(|| {
                for ops in &round_ops {
                    wal.append_round(ops).unwrap();
                }
            })
            .0;
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
            d
        };
        let recover_dir = scratch_dir("perf-recover");
        std::fs::create_dir_all(&recover_dir).unwrap();
        Snapshot {
            num_vertices: n,
            next_round: 0,
            edges: Vec::new(),
        }
        .write_atomic(&recover_dir)
        .unwrap();
        let mut wal = WalWriter::open(&recover_dir, FsyncPolicy::Never, 0).unwrap();
        for ops in &round_ops {
            wal.append_round(ops).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let recover_run = || {
            time(|| {
                let (g, meta) = recover::<BatchDynamicConnectivity>(&recover_dir).unwrap();
                assert_eq!(meta.replayed_rounds, wal_rounds as u64);
                std::hint::black_box(g);
            })
            .0
        };
        for (op, mut run) in [
            (
                "wal_append_ns",
                Box::new(append_run) as Box<dyn FnMut() -> Duration>,
            ),
            ("recovery_ms", Box::new(recover_run)),
        ] {
            let median = median_duration(reps, &mut run);
            records.push(Record {
                op,
                n,
                batch: wal_ops,
                threads,
                median_ns: median.as_nanos(),
            });
            eprintln!("{op} @ {threads} threads: median {} ns", median.as_nanos());
        }
        let _ = std::fs::remove_dir_all(&recover_dir);
    }

    // Validation: obviously broken output must fail the job.
    if records.is_empty() {
        eprintln!("perf_json: no records produced");
        std::process::exit(1);
    }
    for r in &records {
        if r.median_ns == 0 {
            eprintln!(
                "perf_json: zero median for {} at {} threads — timer broken?",
                r.op, r.threads
            );
            std::process::exit(1);
        }
    }
    // The load quantiles must be coherent per thread count: all three
    // present and monotone p50 ≤ p99 ≤ p999 (they describe one run).
    for threads in thread_counts() {
        let q = |op: &str| {
            records
                .iter()
                .find(|r| r.op == op && r.threads == threads)
                .map(|r| r.median_ns)
                .unwrap_or_else(|| {
                    eprintln!("perf_json: missing {op} at {threads} threads");
                    std::process::exit(1);
                })
        };
        let (p50, p99, p999) = (q("load_p50_ns"), q("load_p99_ns"), q("load_p999_ns"));
        if !(p50 <= p99 && p99 <= p999) {
            eprintln!(
                "perf_json: non-monotone load quantiles at {threads} threads: \
                 p50={p50} p99={p99} p999={p999}"
            );
            std::process::exit(1);
        }
    }

    let body: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect();
    let json = format!(
        "{{\n\"schema\": \"dyncon-bench-v1\",\n\"records\": [\n{}\n]\n}}\n",
        body.join(",\n")
    );
    // Round-trip sanity: the artifact must contain every op at every
    // thread count and no NaN/inf artifacts from formatting.
    assert!(!json.to_ascii_lowercase().contains("nan") && !json.contains("inf"));
    for op in [
        "batch_insert",
        "batch_connected",
        "batch_delete",
        "service_throughput",
        "service_latency_p50",
        "trace_overhead_pct",
        "slow_round_p99_ns",
        "export_frames_total",
        "export_lag_ms",
        "load_p50_ns",
        "load_p99_ns",
        "load_p999_ns",
        "queue_depth_max",
        "shard_throughput",
        "shard_boundary_ops",
        "read_view_throughput",
        "writer_throughput_with_readers",
        "wal_append_ns",
        "recovery_ms",
    ] {
        assert_eq!(
            json.matches(&format!("\"op\":\"{op}\"")).count(),
            thread_counts().len(),
            "missing records for {op}"
        );
    }

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("perf_json: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {} records to {out_path}", records.len());
}
