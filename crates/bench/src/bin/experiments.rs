//! Regenerate every experiment table of EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run --release -p dyncon-bench --bin experiments [--quick] [e1 e4 ...]
//! ```
//! With no experiment arguments, all of E1–E15 run. `--quick` shrinks
//! problem sizes by 4× for a fast smoke pass.

use dyncon_bench::{
    drive_open_loop, drive_service, latency_quantile, lg_factor, median_duration, ns_per,
    print_table, replay, time, us,
};
use dyncon_core::{BatchDynamicConnectivity, Builder, DeletionAlgorithm};
use dyncon_durable::{recover, scratch_dir, FsyncPolicy, Snapshot, WalWriter};
use dyncon_ett::EulerTourForest;
use dyncon_graphgen::{
    cycle, erdos_renyi, grid2d, path, poisson_arrivals, random_tree, rmat, zipf_client_schedules,
    UpdateStream,
};
use dyncon_hdt::HdtConnectivity;
use dyncon_server::{ConnServer, ServerConfig};
use dyncon_spanning::StaticRecompute;

struct Cfg {
    scale: usize, // divide default sizes by this
}

fn build_forest(n: usize, seed: u64) -> BatchDynamicConnectivity {
    let mut g = BatchDynamicConnectivity::new(n);
    g.batch_insert(&random_tree(n, seed));
    g
}

/// E1 — Theorem 3: batch connectivity queries.
fn e1(cfg: &Cfg) {
    let n = (1 << 18) / cfg.scale;
    let g = build_forest(n, 1);
    let mut rows = Vec::new();
    for kexp in [4usize, 6, 8, 10, 12, 14, 16] {
        let k = 1 << kexp;
        let qs = UpdateStream::random_queries(n, k, 7 + kexp as u64);
        let d = median_duration(3, || time(|| g.batch_connected(&qs)).0);
        rows.push(vec![
            format!("2^{kexp}"),
            ns_per(d, k),
            format!("{:.2}", lg_factor(n, k)),
            format!("{:.1}", d.as_secs_f64() * 1e9 / k as f64 / lg_factor(n, k)),
        ]);
    }
    print_table(
        &format!("E1 (Thm 3) — batch queries, n = {n}, random spanning tree"),
        &["k", "ns/query", "lg(1+n/k)", "ns per lg-factor"],
        &rows,
    );
}

/// E2 — Theorem 4: batch insertion.
fn e2(cfg: &Cfg) {
    let n = (1 << 17) / cfg.scale;
    let edges = erdos_renyi(n, n, 2);
    let mut rows = Vec::new();
    for kexp in [6usize, 8, 10, 12, 14, 16] {
        let k = 1 << kexp;
        let d = median_duration(3, || {
            let mut g = BatchDynamicConnectivity::new(n);
            time(|| {
                for chunk in edges.chunks(k) {
                    g.batch_insert(chunk);
                }
            })
            .0
        });
        rows.push(vec![
            format!("2^{kexp}"),
            ns_per(d, edges.len()),
            format!("{:.2}", lg_factor(n, k)),
        ]);
    }
    print_table(
        &format!(
            "E2 (Thm 4) — batch insertion of m = {} edges, n = {n}",
            edges.len()
        ),
        &["batch k", "ns/edge", "lg(1+n/k)"],
        &rows,
    );
}

/// E3 — Theorems 5 vs 7: round/phase structure of the two searches.
fn e3(cfg: &Cfg) {
    let n = (1 << 12) / cfg.scale;
    let workloads: Vec<(&str, Vec<(u32, u32)>)> = vec![
        ("path", path(n)),
        ("grid", grid2d(n / 64, 64)),
        ("ER m=2n", erdos_renyi(n, 2 * n, 3)),
    ];
    let mut rows = Vec::new();
    for (name, edges) in &workloads {
        for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
            let mut g: BatchDynamicConnectivity = Builder::new(n).algorithm(algo).build().unwrap();
            g.batch_insert(edges);
            g.reset_stats();
            let stream = UpdateStream::insert_then_delete(&[], 1, 256, 4);
            drop(stream);
            let (d, _) = time(|| {
                for chunk in edges.chunks(256) {
                    g.batch_delete(chunk);
                }
            });
            let s = g.stats();
            rows.push(vec![
                name.to_string(),
                format!("{algo:?}"),
                s.levels_searched.to_string(),
                s.rounds.to_string(),
                s.phases.to_string(),
                s.max_phases_in_level.to_string(),
                us(d),
            ]);
        }
    }
    print_table(
        &format!("E3 (Thm 5 vs 7) — deletion round/phase structure, n = {n}, k = 256"),
        &[
            "workload",
            "algorithm",
            "levels",
            "rounds",
            "phases",
            "max phases/level",
            "total µs",
        ],
        &rows,
    );
}

/// E4 — Theorem 9 (headline): amortized deletion cost vs Δ.
fn e4(cfg: &Cfg) {
    let n = (1 << 14) / cfg.scale;
    let m = 2 * n;
    let edges = erdos_renyi(n, m, 5);
    let mut rows = Vec::new();
    for delta in [1usize, 4, 16, 64, 256, 1024, 4096] {
        let mut cols = vec![format!("{delta}")];
        for algo in [DeletionAlgorithm::Interleaved, DeletionAlgorithm::Simple] {
            let mut pushes = 0u64;
            let d = median_duration(3, || {
                let mut g: BatchDynamicConnectivity =
                    Builder::new(n).algorithm(algo).build().unwrap();
                g.batch_insert(&edges);
                g.reset_stats();
                let stream = UpdateStream::insert_then_delete(&edges, m, delta, 6)
                    .batches
                    .into_iter()
                    .filter(|b| matches!(b, dyncon_graphgen::Batch::Delete(_)))
                    .collect::<Vec<_>>();
                let (d, _) = time(|| {
                    for b in &stream {
                        if let dyncon_graphgen::Batch::Delete(v) = b {
                            g.batch_delete(v);
                        }
                    }
                });
                pushes = g.stats().total_pushes();
                d
            });
            cols.push(ns_per(d, m));
            if algo == DeletionAlgorithm::Interleaved {
                cols.push(pushes.to_string());
            }
        }
        cols.push(format!("{:.2}", lg_factor(n, delta)));
        rows.push(cols);
    }
    print_table(
        &format!("E4 (Thm 9) — deletion cost vs Δ, n = {n}, {m} deletions total"),
        &[
            "Δ",
            "Interleaved ns/edge",
            "pushes",
            "Simple ns/edge",
            "lg(1+n/Δ)",
        ],
        &rows,
    );
}

/// E5 — work-efficiency vs sequential HDT (Thm 6 / Thm 9).
fn e5(cfg: &Cfg) {
    let n = (1 << 13) / cfg.scale;
    let m = 2 * n;
    let edges = erdos_renyi(n, m, 8);
    let mut rows = Vec::new();
    // Sequential HDT: one op at a time, batch size irrelevant.
    let hdt_time = {
        let stream = UpdateStream::insert_then_delete(&edges, m, 1, 9);
        let mut h = HdtConnectivity::new(n);
        replay(&mut h, &stream)
    };
    for kexp in [0usize, 4, 8, 12] {
        let k = 1 << kexp;
        let stream = UpdateStream::insert_then_delete(&edges, k.max(64), k, 9);
        let mut g = BatchDynamicConnectivity::new(n);
        let d = replay(&mut g, &stream);
        rows.push(vec![
            format!("2^{kexp}"),
            ns_per(d, 2 * m),
            ns_per(hdt_time, 2 * m),
            format!("{:.2}×", hdt_time.as_secs_f64() / d.as_secs_f64()),
        ]);
    }
    print_table(
        &format!("E5 — batch-dynamic (Interleaved) vs sequential HDT, n = {n}, m = {m} (insert+delete all)"),
        &["batch k", "batch ns/op", "HDT ns/op", "speedup vs HDT"],
        &rows,
    );
}

/// E6 — vs the O(m+n) static-recompute baseline. The baseline pays a full
/// relabel per (batch + query) round, so it needs a graph large enough for
/// that to cost something: m = 16n.
fn e6(cfg: &Cfg) {
    let n = (1 << 16) / cfg.scale;
    let m = 16 * n;
    let base = erdos_renyi(n, m, 10);
    let mut rows = Vec::new();
    for kexp in [4usize, 8, 12] {
        let k = 1 << kexp;
        // Churn workload: delete k, insert k fresh, query 64, repeated.
        let base_set: std::collections::HashSet<(u32, u32)> = base.iter().copied().collect();
        let fresh = erdos_renyi(n, m + 8 * k, 11);
        let fresh: Vec<(u32, u32)> = fresh
            .into_iter()
            .filter(|e| !base_set.contains(e))
            .take(4 * k)
            .collect();
        let queries = UpdateStream::random_queries(n, 64, 12);

        let mut g = BatchDynamicConnectivity::new(n);
        g.batch_insert(&base);
        let (d_dyn, _) = time(|| {
            for round in 0..4 {
                g.batch_delete(&base[round * k..(round + 1) * k]);
                g.batch_insert(&fresh[round * k..(round + 1) * k]);
                g.batch_connected(&queries);
            }
        });

        let mut s = StaticRecompute::new(n);
        s.batch_insert(&base);
        let (d_static, _) = time(|| {
            for round in 0..4 {
                s.batch_delete(&base[round * k..(round + 1) * k]);
                s.batch_insert(&fresh[round * k..(round + 1) * k]);
                s.batch_connected(&queries);
            }
        });
        rows.push(vec![
            format!("2^{kexp}"),
            us(d_dyn / 4),
            us(d_static / 4),
            format!("{:.2}×", d_static.as_secs_f64() / d_dyn.as_secs_f64()),
        ]);
    }
    print_table(
        &format!("E6 — per-batch latency vs static recompute, n = {n}, m = {m} (delete k + insert k + 64 queries)"),
        &["k", "dynamic µs/batch", "static µs/batch", "dynamic advantage"],
        &rows,
    );
}

/// E7 — self-relative parallel speedup across the `DYNCON_THREADS` matrix
/// (comma-separated list, default `1,2`; speedups are relative to the
/// first entry).
fn e7(cfg: &Cfg) {
    let n = (1 << 16) / cfg.scale;
    let edges = erdos_renyi(n, 2 * n, 13);
    let run = |threads: usize| -> (
        std::time::Duration,
        std::time::Duration,
        std::time::Duration,
    ) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut g = BatchDynamicConnectivity::new(n);
            let (ti, _) = time(|| {
                for chunk in edges.chunks(1 << 14) {
                    g.batch_insert(chunk);
                }
            });
            let qs = UpdateStream::random_queries(n, 1 << 15, 14);
            let (tq, _) = time(|| {
                g.batch_connected(&qs);
            });
            let (td, _) = time(|| {
                for chunk in edges.chunks(1 << 13) {
                    g.batch_delete(chunk);
                }
            });
            (ti, tq, td)
        })
    };
    let counts = dyncon_bench::thread_counts();
    let results: Vec<(usize, _)> = counts.iter().map(|&t| (t, run(t))).collect();
    let (_, (i1, q1, d1)) = results[0];
    let mut rows = Vec::new();
    for &(t, (ti, tq, td)) in &results {
        rows.push(vec![
            t.to_string(),
            us(ti),
            format!("{:.2}×", i1.as_secs_f64() / ti.as_secs_f64()),
            us(tq),
            format!("{:.2}×", q1.as_secs_f64() / tq.as_secs_f64()),
            us(td),
            format!("{:.2}×", d1.as_secs_f64() / td.as_secs_f64()),
        ]);
    }
    print_table(
        &format!(
            "E7 — thread scaling, n = {n}, m = {}, insert k=2^14 / query k=2^15 / delete k=2^13 (speedup vs {} thread{})",
            edges.len(),
            counts[0],
            if counts[0] == 1 { "" } else { "s" }
        ),
        &[
            "threads",
            "insert µs",
            "speedup",
            "query µs",
            "speedup",
            "delete µs",
            "speedup",
        ],
        &rows,
    );
}

/// E8 — Theorem 2 substrate: raw batch-parallel ETT operations.
fn e8(cfg: &Cfg) {
    let n = (1 << 17) / cfg.scale;
    let tree = random_tree(n, 15);
    let mut rows = Vec::new();
    for kexp in [4usize, 8, 12, 16] {
        let k = (1usize << kexp).min(n / 2);
        let mut f = EulerTourForest::new(n, 16);
        let flags = vec![true; tree.len()];
        f.batch_link(&tree, &flags);
        // Cut k random tree edges, then relink them.
        let mut victims: Vec<(u32, u32)> = tree
            .iter()
            .copied()
            .step_by(tree.len() / k)
            .take(k)
            .collect();
        victims.dedup();
        let (d_cut, _) = time(|| f.batch_cut(&victims));
        let vflags = vec![true; victims.len()];
        let (d_link, _) = time(|| f.batch_link(&victims, &vflags));
        let qs = UpdateStream::random_queries(n, k, 17);
        let (d_conn, _) = time(|| f.batch_connected(&qs));
        rows.push(vec![
            format!("2^{kexp}"),
            ns_per(d_link, victims.len()),
            ns_per(d_cut, victims.len()),
            ns_per(d_conn, k),
            format!("{:.2}", lg_factor(n, k)),
        ]);
    }
    print_table(
        &format!("E8 (Thm 2) — batch-parallel ETT primitives, n = {n}"),
        &[
            "k",
            "link ns/op",
            "cut ns/op",
            "connected ns/op",
            "lg(1+n/k)",
        ],
        &rows,
    );
}

/// E9 — ablation: doubling search vs scan-all (§3.3).
fn e9(cfg: &Cfg) {
    let n = (1 << 11) / cfg.scale.min(2);
    // Cycle plus many chords: deleting one cycle edge finds a replacement
    // among the first few candidates; scanning everything is wasteful.
    let mut edges = cycle(n);
    for i in 0..(n as u32 - 2) {
        edges.push((i, i + 2));
    }
    let mut rows = Vec::new();
    for scan_all in [false, true] {
        let mut g: BatchDynamicConnectivity = Builder::new(n)
            .algorithm(DeletionAlgorithm::Simple)
            .scan_all(scan_all)
            .build()
            .unwrap();
        g.batch_insert(&edges);
        g.reset_stats();
        let victims: Vec<(u32, u32)> = (0..n as u32 - 1).step_by(8).map(|i| (i, i + 1)).collect();
        let (d, _) = time(|| {
            for &e in &victims {
                g.batch_delete(&[e]);
            }
        });
        let s = g.stats();
        rows.push(vec![
            if scan_all {
                "scan-all".into()
            } else {
                "doubling".into()
            },
            s.edges_examined.to_string(),
            s.nontree_pushes.to_string(),
            s.replacements.to_string(),
            us(d),
        ]);
    }
    print_table(
        &format!("E9 — doubling ablation, cycle+chords, n = {n}, single-edge deletions"),
        &[
            "search",
            "edges examined",
            "pushes",
            "replacements",
            "total µs",
        ],
        &rows,
    );
}

/// E10 — end-to-end sliding-window ingestion on an R-MAT stream.
fn e10(cfg: &Cfg) {
    let n = (1 << 14) / cfg.scale;
    let mut rows = Vec::new();
    for (name, batch) in [("k=256", 256usize), ("k=1024", 1024), ("k=4096", 4096)] {
        let stream = UpdateStream::sliding_window(n, 24, batch, 8, 512, 18);
        let ops = stream.total_ops();
        let mut g = BatchDynamicConnectivity::new(n);
        let d = replay(&mut g, &stream);
        let (_, delta) = stream.deletion_delta();
        rows.push(vec![
            name.into(),
            ops.to_string(),
            format!("{:.0}", delta),
            format!("{:.0}", ops as f64 / d.as_secs_f64() / 1000.0),
            us(d),
        ]);
    }
    print_table(
        &format!("E10 — sliding-window R-MAT-style ingestion, n = {n}, window = 8 batches"),
        &["batch", "total ops", "Δ", "kops/s", "total µs"],
        &rows,
    );
    // R-MAT specifically exercises skewed degrees; verify it ingests too.
    let edges = rmat(n, 2 * n, 19);
    let mut g = BatchDynamicConnectivity::new(n);
    let (d, _) = time(|| {
        for chunk in edges.chunks(1024) {
            g.batch_insert(chunk);
        }
        for chunk in edges.chunks(1024) {
            g.batch_delete(chunk);
        }
    });
    println!(
        "\nR-MAT churn: {} edges inserted+deleted in {} µs ({} components at end)",
        edges.len(),
        us(d),
        g.num_components()
    );
}

/// E11 — the serving layer: group-commit throughput/latency vs client
/// count × batch cap (closed-loop Zipf clients, read ratio 0.5).
fn e11(cfg: &Cfg) {
    let n = (1 << 14) / cfg.scale;
    let requests = 24 / cfg.scale.clamp(1, 4);
    let ops_per_request = 64;
    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        for cap in [256usize, 1024, 4096] {
            let schedules =
                zipf_client_schedules(n, clients, requests, ops_per_request, 0.5, 1.1, 42);
            let total_ops = clients * requests * ops_per_request;
            let server = ConnServer::start(
                BatchDynamicConnectivity::new(n),
                ServerConfig::new()
                    .batch_cap(cap)
                    .coalesce_wait(std::time::Duration::from_micros(50))
                    .queue_capacity(2 * clients),
            );
            let (wall, lats) = drive_service(&server, &schedules);
            let report = server.join();
            rows.push(vec![
                clients.to_string(),
                cap.to_string(),
                report.rounds_committed.to_string(),
                format!(
                    "{:.0}",
                    report.ops_committed as f64 / report.rounds_committed.max(1) as f64
                ),
                format!("{:.0}", total_ops as f64 / wall.as_secs_f64() / 1000.0),
                us(latency_quantile(&lats, 0.5)),
                us(latency_quantile(&lats, 0.99)),
            ]);
        }
    }
    print_table(
        &format!(
            "E11 — group-commit service, n = {n}, {requests} req/client × {ops_per_request} ops, Zipf s=1.1, 50% reads"
        ),
        &[
            "clients",
            "batch cap",
            "rounds",
            "ops/round",
            "kops/s",
            "p50 µs",
            "p99 µs",
        ],
        &rows,
    );
}

/// E12 — durability: WAL append cost per fsync policy and recovery time
/// vs log length (the curve that motivates compaction).
fn e12(cfg: &Cfg) {
    let n = (1 << 13) / cfg.scale;
    let ops_per_round = 128;
    let mut rows = Vec::new();
    let mut lens = vec![16usize, 64, 256 / cfg.scale.max(1)];
    lens.sort_unstable();
    lens.dedup(); // --quick shrinks 256 onto 64; don't run it twice
    for log_rounds in lens {
        let rounds = zipf_client_schedules(n, 1, log_rounds, ops_per_round, 0.3, 1.1, 12).remove(0);
        let total_ops = log_rounds * ops_per_round;
        for (policy_name, policy) in [
            ("never", FsyncPolicy::Never),
            ("every_8", FsyncPolicy::EveryNRounds(8)),
            ("every_round", FsyncPolicy::EveryRound),
        ] {
            let dir = scratch_dir("e12");
            std::fs::create_dir_all(&dir).unwrap();
            Snapshot {
                num_vertices: n,
                next_round: 0,
                edges: Vec::new(),
            }
            .write_atomic(&dir)
            .unwrap();
            let mut wal = WalWriter::open(&dir, policy, 0).unwrap();
            let (append, _) = time(|| {
                for ops in &rounds {
                    wal.append_round(ops).unwrap();
                }
            });
            wal.sync().unwrap();
            drop(wal);
            let (rec, _) = time(|| {
                let (g, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
                assert_eq!(meta.replayed_rounds, log_rounds as u64);
                std::hint::black_box(g);
            });
            let _ = std::fs::remove_dir_all(&dir);
            rows.push(vec![
                log_rounds.to_string(),
                policy_name.to_string(),
                ns_per(append, total_ops),
                format!("{:.2}", append.as_secs_f64() * 1e3),
                format!("{:.2}", rec.as_secs_f64() * 1e3),
            ]);
        }
    }
    print_table(
        &format!("E12 — durability, n = {n}, {ops_per_round} ops/round (30% reads, Zipf s=1.1)"),
        &[
            "log rounds",
            "fsync",
            "append ns/op",
            "append ms",
            "recovery ms",
        ],
        &rows,
    );
}

/// E13 — latency under open-loop load: Poisson arrivals at a swept
/// offered rate through the group-commit frontend. Unlike E11's
/// closed-loop clients (whose offered rate collapses to whatever the
/// server sustains), the open-loop driver keeps submitting on schedule,
/// measures latency from the *intended* arrival (no coordinated
/// omission), sheds backpressure rejects, and reads the server's own
/// queue-depth gauge from the metrics snapshot.
fn e13(cfg: &Cfg) {
    let n = (1 << 14) / cfg.scale;
    let clients = 4usize;
    let requests = (64 / cfg.scale.clamp(1, 4)).max(8);
    let ops_per_request = 64;
    let mut rows = Vec::new();
    for mean_gap_us in [400u64, 100, 25] {
        let schedules = zipf_client_schedules(n, clients, requests, ops_per_request, 0.5, 1.1, 42);
        let arrivals: Vec<Vec<u64>> = (0..clients)
            .map(|c| poisson_arrivals(requests, mean_gap_us * 1_000, 0xE13 + c as u64))
            .collect();
        let server = ConnServer::start(
            BatchDynamicConnectivity::new(n),
            ServerConfig::new()
                .batch_cap(4096)
                .coalesce_wait(std::time::Duration::from_micros(50))
                .queue_capacity(2 * clients),
        );
        let load = drive_open_loop(&server, &schedules, &arrivals);
        let report = server.join();
        let queue_max = report
            .metrics
            .get("dyncon_server_queue_depth")
            .and_then(|m| m.value.as_gauge())
            .map(|(_, max)| max)
            .unwrap_or(0);
        let offered_kops =
            clients as f64 * ops_per_request as f64 / (mean_gap_us as f64 * 1e-6) / 1000.0;
        let achieved_kops = report.ops_committed as f64 / load.wall.as_secs_f64() / 1000.0;
        rows.push(vec![
            mean_gap_us.to_string(),
            format!("{offered_kops:.0}"),
            format!("{achieved_kops:.0}"),
            us(latency_quantile(&load.latencies, 0.5)),
            us(latency_quantile(&load.latencies, 0.99)),
            us(latency_quantile(&load.latencies, 0.999)),
            queue_max.to_string(),
            load.rejected.to_string(),
        ]);
    }
    print_table(
        &format!(
            "E13 — open-loop latency under load, n = {n}, {clients} clients × {requests} req × {ops_per_request} ops, Poisson arrivals"
        ),
        &[
            "mean gap µs",
            "offered kops/s",
            "achieved kops/s",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "queue max",
            "rejected",
        ],
        &rows,
    );
}

/// E14 — sharded serving: closed-loop throughput vs shard count ×
/// worker thread count, plus the coordinator's own counters (sub-rounds
/// sealed, boundary rebuilds, contracted edges) from the pooled
/// registry. 1 shard is the degenerate baseline: all of the
/// coordination overhead, none of the parallelism.
fn e14(cfg: &Cfg) {
    use dyncon_shard::{ShardConfig, ShardMapKind, ShardedServer};
    let n = (1 << 13) / cfg.scale;
    let clients = 4usize;
    let requests = (16 / cfg.scale.clamp(1, 4)).max(4);
    let ops_per_request = 48;
    let mut rows = Vec::new();
    for threads in dyncon_bench::thread_counts() {
        for shards in dyncon_bench::shard_counts() {
            let schedules =
                zipf_client_schedules(n, clients, requests, ops_per_request, 0.5, 1.1, 42);
            let total_ops = clients * requests * ops_per_request;
            let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
                n,
                ShardConfig::new()
                    .shards(shards)
                    .kind(ShardMapKind::Hash)
                    .batch_cap(4096)
                    .coalesce_wait(std::time::Duration::from_micros(50))
                    .queue_capacity(2 * clients)
                    .shard_worker_threads(threads),
            )
            .expect("sharded server starts");
            let (wall, lats) = drive_service(server.conn(), &schedules);
            let report = server.join().expect("sharded server joins");
            let counter = |name: &str| {
                report
                    .metrics
                    .get(name)
                    .and_then(|m| m.value.as_counter())
                    .unwrap_or(0)
            };
            let boundary_edges = report
                .metrics
                .get("dyncon_shard_boundary_ops")
                .and_then(|m| m.value.as_histogram())
                .map(|h| h.sum)
                .unwrap_or(0);
            rows.push(vec![
                threads.to_string(),
                shards.to_string(),
                report.rounds_committed.to_string(),
                counter("dyncon_shard_subrounds_total").to_string(),
                counter("dyncon_shard_boundary_rebuilds_total").to_string(),
                boundary_edges.to_string(),
                format!("{:.0}", total_ops as f64 / wall.as_secs_f64() / 1000.0),
                us(latency_quantile(&lats, 0.5)),
            ]);
        }
    }
    print_table(
        &format!(
            "E14 — sharded service, n = {n}, {clients} clients × {requests} req × {ops_per_request} ops, Zipf s=1.1, hash partition"
        ),
        &[
            "threads",
            "shards",
            "rounds",
            "sub-rounds",
            "rebuilds",
            "boundary edges",
            "kops/s",
            "p50 µs",
        ],
        &rows,
    );
}

/// E15 — versioned reads: writer throughput with 0 / 4 / 16 concurrent
/// snapshot readers. Readers poll `read_view()` and answer connectivity
/// queries against the returned snapshot, paced at one read per 200 µs
/// each (hot-spinning would measure CPU steal, not interference). The
/// acceptance claim: the 16-reader cell stays within the bench_diff
/// tolerance band (2×) of the 0-reader baseline, because readers share
/// an `Arc` of the published label snapshot and never touch the
/// admission queue.
fn e15(cfg: &Cfg) {
    use dyncon_api::Connectivity;
    use dyncon_server::VersionedRead;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    let n = (1 << 13) / cfg.scale;
    let clients = 4usize;
    let requests = (16 / cfg.scale.clamp(1, 4)).max(4);
    let ops_per_request = 64;
    let mut rows = Vec::new();
    for threads in dyncon_bench::thread_counts() {
        let mut baseline: Option<f64> = None;
        for readers in [0usize, 4, 16] {
            let schedules =
                zipf_client_schedules(n, clients, requests, ops_per_request, 0.5, 1.1, 42);
            let total_ops = clients * requests * ops_per_request;
            let server = ConnServer::start_versioned(
                BatchDynamicConnectivity::new(n),
                ServerConfig::new()
                    .batch_cap(4096)
                    .coalesce_wait(std::time::Duration::from_micros(50))
                    .queue_capacity(2 * clients)
                    .worker_threads(threads)
                    .retain_views(8),
            );
            let stop = AtomicBool::new(false);
            let reads = AtomicU64::new(0);
            let wall = std::thread::scope(|scope| {
                for r in 0..readers {
                    let (server, stop, reads) = (&server, &stop, &reads);
                    scope.spawn(move || {
                        let mut probe = r as u32;
                        while !stop.load(Ordering::Relaxed) {
                            if let Ok(view) = server.read_view() {
                                probe = probe.wrapping_add(1) % n as u32;
                                std::hint::black_box(view.connected(probe, (probe + 7) % n as u32));
                                reads.fetch_add(1, Ordering::Relaxed);
                            }
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                    });
                }
                let (wall, _lats) = drive_service(&server, &schedules);
                stop.store(true, Ordering::Relaxed);
                wall
            });
            let report = server.join();
            let kops = total_ops as f64 / wall.as_secs_f64() / 1000.0;
            let ratio = baseline.map(|b| kops / b).unwrap_or(1.0);
            if readers == 0 {
                baseline = Some(kops);
            }
            let retained = report
                .metrics
                .get("dyncon_server_snapshot_retained")
                .and_then(|m| m.value.as_gauge())
                .map(|(v, _)| v)
                .unwrap_or(0);
            rows.push(vec![
                threads.to_string(),
                readers.to_string(),
                report.rounds_committed.to_string(),
                format!("{:.0}", kops),
                format!("{:.2}x", ratio),
                reads.load(Ordering::Relaxed).to_string(),
                retained.to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "E15 — versioned reads, n = {n}, {clients} clients × {requests} req × {ops_per_request} ops, readers paced at 200 µs"
        ),
        &[
            "threads",
            "readers",
            "rounds",
            "writer kops/s",
            "vs 0 readers",
            "snapshot reads",
            "views retained",
        ],
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = Cfg {
        scale: if quick { 4 } else { 1 },
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = wanted.is_empty();
    let run = |name: &str| all || wanted.contains(&name);

    println!("# dyncon experiment tables (quick = {quick})");
    if run("e1") {
        e1(&cfg);
    }
    if run("e2") {
        e2(&cfg);
    }
    if run("e3") {
        e3(&cfg);
    }
    if run("e4") {
        e4(&cfg);
    }
    if run("e5") {
        e5(&cfg);
    }
    if run("e6") {
        e6(&cfg);
    }
    if run("e7") {
        e7(&cfg);
    }
    if run("e8") {
        e8(&cfg);
    }
    if run("e9") {
        e9(&cfg);
    }
    if run("e10") {
        e10(&cfg);
    }
    if run("e11") {
        e11(&cfg);
    }
    if run("e12") {
        e12(&cfg);
    }
    if run("e13") {
        e13(&cfg);
    }
    if run("e14") {
        e14(&cfg);
    }
    if run("e15") {
        e15(&cfg);
    }
}
