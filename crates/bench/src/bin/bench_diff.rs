//! Row-by-row comparison of two perf artifacts: the `bench-perf` CI
//! job's regression tripwire.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--tolerance X] [--strict]
//!            [--normalize <op>]
//! ```
//!
//! Rows pair up by `(op, n, batch, threads)`. A baseline row missing
//! from the candidate is **always** a failure — a measurement silently
//! vanishing is how perf pipelines rot. Matched rows whose value moved
//! beyond the tolerance band (default ±50%, generous because shared CI
//! runners are noisy) are printed as deviations: warnings by default,
//! failures under `--strict`. Candidate-only rows are informational
//! (new measurements land with new code).
//!
//! `--normalize <op>` divides the machine factor out before comparing:
//! both sides are expressed relative to their own `<op>` row at
//! `threads=1` (the calibration row), so a uniformly slower runner no
//! longer trips the band and `--strict` becomes a real gate. Count
//! rows (`queue_depth_max`, `shard_boundary_ops`, `trace_overhead_pct`)
//! still compare raw — they are machine-speed invariant already.

use dyncon_bench::{
    diff_bench_records, diff_bench_records_normalized, parse_bench_json, BenchRecord,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline.json> <candidate.json> \
         [--tolerance X] [--strict] [--normalize <op>]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Vec<BenchRecord> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_bench_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path}: {e}");
        std::process::exit(2);
    })
}

fn row(r: &BenchRecord) -> String {
    format!(
        "{} (n={}, batch={}, threads={})",
        r.op, r.n, r.batch, r.threads
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut tolerance = 0.5f64;
    let mut strict = false;
    let mut normalize: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--normalize" => {
                normalize = Some(it.next().map(String::as_str).unwrap_or_else(|| usage()));
            }
            p if !p.starts_with('-') => paths.push(p),
            _ => usage(),
        }
    }
    let [baseline_path, candidate_path] = paths[..] else {
        usage();
    };

    let baseline = load(baseline_path);
    let candidate = load(candidate_path);
    let diff = match normalize {
        None => diff_bench_records(&baseline, &candidate, tolerance),
        Some(op) => diff_bench_records_normalized(&baseline, &candidate, tolerance, op)
            .unwrap_or_else(|e| {
                eprintln!("bench_diff: {e}");
                std::process::exit(2);
            }),
    };

    println!(
        "bench_diff: {} baseline rows vs {} candidate rows (tolerance ±{:.0}%{}{})",
        baseline.len(),
        candidate.len(),
        tolerance * 100.0,
        if strict { ", strict" } else { "" },
        match normalize {
            Some(op) => format!(", normalized to {op}@1"),
            None => String::new(),
        }
    );
    println!("  {} matched within the band", diff.matched);
    for r in &diff.added {
        println!("  new: {} = {}", row(r), r.median_ns);
    }
    for (b, c, ratio) in &diff.deviations {
        println!(
            "  {}: {} -> {} ({:.2}x)",
            row(b),
            b.median_ns,
            c.median_ns,
            ratio
        );
    }
    for r in &diff.missing {
        println!("  MISSING from candidate: {}", row(r));
    }

    if !diff.missing.is_empty() {
        eprintln!(
            "bench_diff: FAIL — {} baseline row(s) missing from {candidate_path}",
            diff.missing.len()
        );
        std::process::exit(1);
    }
    if !diff.deviations.is_empty() {
        if strict {
            eprintln!(
                "bench_diff: FAIL — {} deviation(s) beyond ±{:.0}%",
                diff.deviations.len(),
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_diff: WARN — {} deviation(s) beyond ±{:.0}% (non-strict: not failing)",
            diff.deviations.len(),
            tolerance * 100.0
        );
    }
    println!("bench_diff: OK");
}
