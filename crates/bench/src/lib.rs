//! # dyncon-bench
//!
//! Shared measurement harness for the experiment suite (EXPERIMENTS.md).
//! Every experiment exists twice: as a Criterion bench target under
//! `benches/` and as a table printed by the `experiments` binary
//! (`cargo run --release -p dyncon-bench --bin experiments`).

use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{Batch, UpdateStream};
use std::time::{Duration, Instant};

/// Wall-clock a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

/// Median of `reps` runs of `f` (each run gets a fresh input from `setup`).
pub fn median_duration(reps: usize, mut run: impl FnMut() -> Duration) -> Duration {
    let mut ds: Vec<Duration> = (0..reps.max(1)).map(|_| run()).collect();
    ds.sort_unstable();
    ds[ds.len() / 2]
}

/// Replay a stream into the batch-dynamic structure; returns total time.
pub fn replay(g: &mut BatchDynamicConnectivity, stream: &UpdateStream) -> Duration {
    let t = Instant::now();
    for b in &stream.batches {
        match b {
            Batch::Insert(v) => {
                g.batch_insert(v);
            }
            Batch::Delete(v) => {
                g.batch_delete(v);
            }
            Batch::Query(v) => {
                g.batch_connected(v);
            }
        }
    }
    t.elapsed()
}

/// Replay a stream into the sequential HDT baseline (one op at a time, as
/// the sequential algorithm requires); returns total time.
pub fn replay_hdt(g: &mut dyncon_hdt::HdtConnectivity, stream: &UpdateStream) -> Duration {
    let t = Instant::now();
    for b in &stream.batches {
        match b {
            Batch::Insert(v) => {
                for &(u, w) in v {
                    g.insert(u, w);
                }
            }
            Batch::Delete(v) => {
                for &(u, w) in v {
                    g.delete(u, w);
                }
            }
            Batch::Query(v) => {
                for &(u, w) in v {
                    std::hint::black_box(g.connected(u, w));
                }
            }
        }
    }
    t.elapsed()
}

/// Pretty-print a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Format a duration as microseconds with 2 decimals.
pub fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Format nanoseconds-per-item.
pub fn ns_per(d: Duration, items: usize) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e9 / items.max(1) as f64)
}

/// `lg(1 + n/k)` — the per-item factor every batch bound predicts.
pub fn lg_factor(n: usize, k: usize) -> f64 {
    (1.0 + n as f64 / k.max(1) as f64).log2()
}
