//! # dyncon-bench
//!
//! Shared measurement harness for the experiment suite (EXPERIMENTS.md).
//! Every experiment exists twice: as a Criterion bench target under
//! `benches/` and as a table printed by the `experiments` binary
//! (`cargo run --release -p dyncon-bench --bin experiments`).

use dyncon_api::{BatchDynamic, DynConError, Op};
use dyncon_graphgen::{Batch, UpdateStream};
use dyncon_server::{ConnServer, Ticket};
use std::time::{Duration, Instant};

/// The thread matrix for the scaling experiments (E7 and the perf-artifact
/// pipeline): parsed from `DYNCON_THREADS` as a comma-separated list of
/// positive integers (e.g. `DYNCON_THREADS=1,2,4`), defaulting to `[1, 2]`.
///
/// A single-integer `DYNCON_THREADS` also pins the vendored rayon pool's
/// *default* thread count, so `cargo test` runs under the same bound —
/// that is what the CI thread matrix exercises.
pub fn thread_counts() -> Vec<usize> {
    parse_thread_counts(std::env::var("DYNCON_THREADS").ok().as_deref())
}

fn parse_thread_counts(raw: Option<&str>) -> Vec<usize> {
    let parsed: Vec<usize> = raw
        .unwrap_or("")
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
        .collect();
    if parsed.is_empty() {
        vec![1, 2]
    } else {
        parsed
    }
}

/// Wall-clock a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

/// Median of `reps` runs of `f` (each run gets a fresh input from `setup`).
pub fn median_duration(reps: usize, mut run: impl FnMut() -> Duration) -> Duration {
    let mut ds: Vec<Duration> = (0..reps.max(1)).map(|_| run()).collect();
    ds.sort_unstable();
    ds[ds.len() / 2]
}

/// Replay a stream into **any** backend through the workspace-wide
/// [`BatchDynamic`] trait; returns total time. One replay routine serves
/// the parallel structure, the sequential HDT baseline (whose trait impl
/// loops one op at a time, as the sequential algorithm requires), the
/// static-recompute baseline and every future backend — the per-backend
/// replay glue this harness used to carry is gone.
pub fn replay(g: &mut dyn BatchDynamic, stream: &UpdateStream) -> Duration {
    let t = Instant::now();
    for b in &stream.batches {
        match b {
            Batch::Insert(v) => {
                g.batch_insert(v).expect("replay: insert batch rejected");
            }
            Batch::Delete(v) => {
                g.batch_delete(v).expect("replay: delete batch rejected");
            }
            Batch::Query(v) => {
                std::hint::black_box(g.batch_connected(v));
            }
        }
    }
    t.elapsed()
}

/// Flatten an [`UpdateStream`] into per-batch mixed-op slices for
/// [`BatchDynamic::apply`] (one `Vec<Op>` per source batch).
pub fn stream_ops(stream: &UpdateStream) -> Vec<Vec<Op>> {
    stream
        .batches
        .iter()
        .map(|b| match b {
            Batch::Insert(v) => v.iter().map(|&(u, w)| Op::Insert(u, w)).collect(),
            Batch::Delete(v) => v.iter().map(|&(u, w)| Op::Delete(u, w)).collect(),
            Batch::Query(v) => v.iter().map(|&(u, w)| Op::Query(u, w)).collect(),
        })
        .collect()
}

/// Replay a stream through [`BatchDynamic::apply`] (the mixed-op entry
/// point); returns total time.
pub fn replay_ops(g: &mut dyn BatchDynamic, batches: &[Vec<Op>]) -> Duration {
    let t = Instant::now();
    for ops in batches {
        std::hint::black_box(g.apply(ops).expect("replay: batch rejected"));
    }
    t.elapsed()
}

/// Drive per-client schedules (`schedules[client][request]`, as produced
/// by [`dyncon_graphgen::zipf_client_schedules`]) through a group-commit
/// server with one OS thread per client. Every client submits with
/// backpressure blocking and waits each ticket before its next request —
/// a closed-loop load generator. Returns total wall time plus every
/// request's submit→answer latency (client-major order).
pub fn drive_service<B: BatchDynamic + Send + 'static>(
    server: &ConnServer<B>,
    schedules: &[Vec<Vec<Op>>],
) -> (Duration, Vec<Duration>) {
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .enumerate()
            .map(|(c, sched)| {
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(sched.len());
                    for ops in sched {
                        let t = Instant::now();
                        let ticket = server
                            .submit_blocking_as(c as u64, ops.clone())
                            .expect("service open for the whole run");
                        std::hint::black_box(ticket.wait().expect("round commits"));
                        lats.push(t.elapsed());
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    (t0.elapsed(), latencies)
}

/// What [`drive_open_loop`] measured: wall time, every accepted request's
/// intended-arrival→answer latency (client-major order), and how many
/// requests the server shed with backpressure.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Total wall time from the first intended arrival to the last answer.
    pub wall: Duration,
    /// One latency per *accepted* request, measured from the request's
    /// **intended** arrival time (not the instant the submit call ran), so
    /// a stalled server inflates the latencies of everything queued behind
    /// it — the open-loop answer to coordinated omission.
    pub latencies: Vec<Duration>,
    /// Requests rejected with [`DynConError::Backpressure`]. An open-loop
    /// generator sheds these (no retry, no latency sample) so the offered
    /// rate stays independent of server speed.
    pub rejected: u64,
    /// Requests accepted (`latencies.len()` as a counter, for rate math).
    pub accepted: u64,
}

/// Drive per-client schedules through a group-commit server **open-loop**:
/// client `c`'s request `i` is submitted at
/// `t0 + Duration::from_nanos(arrivals[c][i])` regardless of whether
/// earlier answers have come back. Compare [`drive_service`], the
/// closed-loop driver, where each client waits for its previous answer and
/// a slow server silently throttles the offered load.
///
/// Each client runs a submitter thread (sleeps until the intended arrival,
/// then a non-blocking [`ConnServer::submit_as`]; a
/// [`DynConError::Backpressure`] reject is counted and dropped) paired
/// with a collector thread that waits tickets in submission order and
/// records `intended_arrival.elapsed()` — latency from the *schedule*, not
/// the submit call, so queueing delay is charged to the server.
///
/// `arrivals[c]` (nanosecond offsets, as produced by
/// [`dyncon_graphgen::poisson_arrivals`]) must be at least as long as
/// `schedules[c]`; extra arrival slots are ignored.
pub fn drive_open_loop<B: BatchDynamic + Send + 'static>(
    server: &ConnServer<B>,
    schedules: &[Vec<Vec<Op>>],
    arrivals: &[Vec<u64>],
) -> LoadReport {
    assert_eq!(
        schedules.len(),
        arrivals.len(),
        "one arrival schedule per client"
    );
    let t0 = Instant::now();
    let mut report = LoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .zip(arrivals)
            .enumerate()
            .map(|(c, (sched, times))| {
                assert!(
                    times.len() >= sched.len(),
                    "client {c}: {} requests but only {} arrival times",
                    sched.len(),
                    times.len()
                );
                let (tx, rx) = std::sync::mpsc::channel::<(Instant, Ticket)>();
                let submitter = scope.spawn(move || {
                    let mut rejected = 0u64;
                    for (ops, &at_ns) in sched.iter().zip(times) {
                        let due = t0 + Duration::from_nanos(at_ns);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        match server.submit_as(c as u64, ops.clone()) {
                            Ok(ticket) => tx.send((due, ticket)).expect("collector alive"),
                            Err(DynConError::Backpressure { .. }) => rejected += 1,
                            Err(e) => panic!("service open for the whole run: {e}"),
                        }
                    }
                    rejected
                });
                let collector = scope.spawn(move || {
                    let mut lats = Vec::new();
                    while let Ok((due, ticket)) = rx.recv() {
                        std::hint::black_box(ticket.wait().expect("round commits"));
                        // Saturates at zero if the answer somehow beat the
                        // intended arrival (sub-timer-resolution rounds).
                        lats.push(due.elapsed());
                    }
                    lats
                });
                (submitter, collector)
            })
            .collect();
        for (submitter, collector) in handles {
            report.rejected += submitter.join().expect("submitter thread");
            report
                .latencies
                .extend(collector.join().expect("collector thread"));
        }
    });
    report.wall = t0.elapsed();
    report.accepted = report.latencies.len() as u64;
    report
}

/// The `q`-quantile (0.0..=1.0) of a latency sample, by sorting a copy.
pub fn latency_quantile(latencies: &[Duration], q: f64) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Pretty-print a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Format a duration as microseconds with 2 decimals.
pub fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Format nanoseconds-per-item.
pub fn ns_per(d: Duration, items: usize) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e9 / items.max(1) as f64)
}

/// `lg(1 + n/k)` — the per-item factor every batch bound predicts.
pub fn lg_factor(n: usize, k: usize) -> f64 {
    (1.0 + n as f64 / k.max(1) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::{drive_open_loop, latency_quantile, parse_thread_counts};
    use dyncon_api::Op;
    use dyncon_core::BatchDynamicConnectivity;
    use dyncon_server::{ConnServer, ServerConfig};
    use std::time::Duration;

    #[test]
    fn open_loop_driver_answers_every_scheduled_request() {
        let clients = 3usize;
        let requests = 5usize;
        let schedules: Vec<Vec<Vec<Op>>> = (0..clients)
            .map(|c| {
                (0..requests)
                    .map(|i| vec![Op::Insert(c as u32, (clients + i) as u32), Op::Query(0, 1)])
                    .collect()
            })
            .collect();
        // 50 µs mean gap: fast enough to finish instantly, slow enough
        // that the queue never fills (capacity 2 per client).
        let arrivals: Vec<Vec<u64>> = (0..clients)
            .map(|c| dyncon_graphgen::poisson_arrivals(requests, 50_000, c as u64))
            .collect();
        let server = ConnServer::start(
            BatchDynamicConnectivity::new(64),
            ServerConfig::new().queue_capacity(2 * clients),
        );
        let load = drive_open_loop(&server, &schedules, &arrivals);
        let report = server.join();
        assert_eq!(load.accepted + load.rejected, (clients * requests) as u64);
        assert_eq!(load.latencies.len() as u64, load.accepted);
        assert_eq!(report.ops_committed, 2 * load.accepted);
        assert!(load.wall >= Duration::ZERO);
        // The queue-depth gauge saw at least one admitted request.
        let max = report
            .metrics
            .get("dyncon_server_queue_depth")
            .and_then(|m| m.value.as_gauge())
            .map(|(_, max)| max)
            .unwrap_or(0);
        assert!(load.accepted == 0 || max >= 1);
    }

    #[test]
    fn quantiles() {
        assert_eq!(latency_quantile(&[], 0.5), Duration::ZERO);
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(latency_quantile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(latency_quantile(&ms, 1.0), Duration::from_millis(100));
        // idx = round(99 · 0.5) = 50 → the 51st sample.
        assert_eq!(latency_quantile(&ms, 0.5), Duration::from_millis(51));
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(parse_thread_counts(None), vec![1, 2]);
        assert_eq!(parse_thread_counts(Some("")), vec![1, 2]);
        assert_eq!(parse_thread_counts(Some("4")), vec![4]);
        assert_eq!(parse_thread_counts(Some("1,2,4")), vec![1, 2, 4]);
        assert_eq!(parse_thread_counts(Some(" 1 , 8 ")), vec![1, 8]);
        assert_eq!(parse_thread_counts(Some("0,junk")), vec![1, 2]);
    }
}
