//! # dyncon-bench
//!
//! Shared measurement harness for the experiment suite (EXPERIMENTS.md).
//! Every experiment exists twice: as a Criterion bench target under
//! `benches/` and as a table printed by the `experiments` binary
//! (`cargo run --release -p dyncon-bench --bin experiments`).

use dyncon_api::{BatchDynamic, DynConError, Op};
use dyncon_graphgen::{Batch, UpdateStream};
use dyncon_server::{ConnServer, SubmitOptions, Ticket};
use std::time::{Duration, Instant};

/// The thread matrix for the scaling experiments (E7 and the perf-artifact
/// pipeline): parsed from `DYNCON_THREADS` as a comma-separated list of
/// positive integers (e.g. `DYNCON_THREADS=1,2,4`), defaulting to `[1, 2]`.
///
/// A single-integer `DYNCON_THREADS` also pins the vendored rayon pool's
/// *default* thread count, so `cargo test` runs under the same bound —
/// that is what the CI thread matrix exercises.
pub fn thread_counts() -> Vec<usize> {
    parse_thread_counts(std::env::var("DYNCON_THREADS").ok().as_deref())
}

fn parse_thread_counts(raw: Option<&str>) -> Vec<usize> {
    let parsed: Vec<usize> = raw
        .unwrap_or("")
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
        .collect();
    if parsed.is_empty() {
        vec![1, 2]
    } else {
        parsed
    }
}

/// The shard-count matrix for the sharding experiments (E14 and the
/// perf-artifact pipeline): parsed from `DYNCON_SHARDS` the same way
/// [`thread_counts`] parses `DYNCON_THREADS`, defaulting to `[1, 2, 4]`.
pub fn shard_counts() -> Vec<usize> {
    parse_shard_counts(std::env::var("DYNCON_SHARDS").ok().as_deref())
}

fn parse_shard_counts(raw: Option<&str>) -> Vec<usize> {
    let parsed: Vec<usize> = raw
        .unwrap_or("")
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
        .collect();
    if parsed.is_empty() {
        vec![1, 2, 4]
    } else {
        parsed
    }
}

/// One row of a `BENCH_PR*.json` perf artifact (the `perf_json` binary's
/// output): a measurement keyed by `(op, n, batch, threads)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Which measurement the row is (`batch_insert`, `service_throughput`, …).
    pub op: String,
    /// Vertex universe size of the run.
    pub n: u64,
    /// Batch size / round cap of the run.
    pub batch: u64,
    /// Worker thread count of the run.
    pub threads: u64,
    /// The measured value (nanoseconds for timings; some rows carry
    /// counts in this field for schema uniformity).
    pub median_ns: u128,
}

impl BenchRecord {
    /// The identity of a row across artifacts (everything but the value).
    pub fn key(&self) -> (String, u64, u64, u64) {
        (self.op.clone(), self.n, self.batch, self.threads)
    }
}

/// Parse a `BENCH_PR*.json` artifact. This is not a general JSON parser:
/// it reads exactly the flat shape `perf_json` writes (a `schema` header
/// and one object per record with numeric fields), and rejects anything
/// else with a line-numbered message — so a malformed artifact fails a
/// CI diff loudly instead of comparing against garbage.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    if !text.contains("\"schema\": \"dyncon-bench-v1\"") {
        return Err("missing or unknown schema header (want dyncon-bench-v1)".into());
    }
    let mut records = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"op\"") {
            continue;
        }
        let field = |name: &str| -> Result<&str, String> {
            let tag = format!("\"{name}\":");
            let at = line
                .find(&tag)
                .ok_or_else(|| format!("line {}: missing field {name}", ln + 1))?;
            let rest = &line[at + tag.len()..];
            Ok(rest
                .split([',', '}'])
                .next()
                .unwrap_or("")
                .trim()
                .trim_matches('"'))
        };
        let num = |name: &str| -> Result<u128, String> {
            field(name)?
                .parse::<u128>()
                .map_err(|e| format!("line {}: bad {name}: {e}", ln + 1))
        };
        records.push(BenchRecord {
            op: field("op")?.to_string(),
            n: num("n")? as u64,
            batch: num("batch")? as u64,
            threads: num("threads")? as u64,
            median_ns: num("median_ns")?,
        });
    }
    if records.is_empty() {
        return Err("no records found".into());
    }
    Ok(records)
}

/// Outcome of [`diff_bench_records`]: row-by-row comparison of two perf
/// artifacts.
#[derive(Clone, Debug, Default)]
pub struct BenchDiff {
    /// Rows present in the baseline but absent from the candidate —
    /// always a failure (a silently dropped measurement).
    pub missing: Vec<BenchRecord>,
    /// Rows only the candidate has (new measurements; informational).
    pub added: Vec<BenchRecord>,
    /// Matched rows whose candidate value left the tolerance band:
    /// `(baseline, candidate, ratio)` with `ratio = candidate / baseline`.
    pub deviations: Vec<(BenchRecord, BenchRecord, f64)>,
    /// Matched rows inside the band.
    pub matched: usize,
}

/// Compare two artifacts row by row. Rows pair up by
/// [`BenchRecord::key`]; a matched row deviates when the value ratio
/// falls outside `[1/(1+tolerance), 1+tolerance]` (so `tolerance = 0.5`
/// flags changes beyond ±50% in either direction). Timing noise on
/// shared CI runners is real; callers decide whether deviations warn or
/// fail.
pub fn diff_bench_records(
    baseline: &[BenchRecord],
    candidate: &[BenchRecord],
    tolerance: f64,
) -> BenchDiff {
    let mut diff = BenchDiff::default();
    let mut unseen: Vec<&BenchRecord> = candidate.iter().collect();
    for base in baseline {
        match unseen.iter().position(|c| c.key() == base.key()) {
            None => diff.missing.push(base.clone()),
            Some(at) => {
                let cand = unseen.swap_remove(at);
                let ratio = cand.median_ns as f64 / (base.median_ns as f64).max(1.0);
                let band = 1.0 + tolerance.max(0.0);
                if ratio > band || ratio < 1.0 / band {
                    diff.deviations.push((base.clone(), cand.clone(), ratio));
                } else {
                    diff.matched += 1;
                }
            }
        }
    }
    diff.added = unseen.into_iter().cloned().collect();
    diff
}

/// Ops whose `median_ns` field carries a count or a ratio rather than a
/// wall time. Counts are machine-speed invariant, so normalization
/// would *introduce* the machine factor it is meant to remove — these
/// rows always compare raw.
pub const COUNT_OPS: &[&str] = &[
    "queue_depth_max",
    "shard_boundary_ops",
    "trace_overhead_pct",
    "export_lag_ms",
];

/// [`diff_bench_records`] with the machine factor divided out: both
/// sides are expressed relative to their own **calibration row** — the
/// `calibrate` op at `threads == 1` — so a uniformly 2× slower CI
/// runner shows every ratio ≈ 1.0 instead of 2.0, and the tolerance
/// band can be tightened into a gate. Each matched timing row deviates
/// when `(candidate/baseline) / (calib_cand/calib_base)` leaves
/// `[1/(1+tolerance), 1+tolerance]`; rows in [`COUNT_OPS`] still
/// compare raw. Errors when either side lacks the calibration row.
pub fn diff_bench_records_normalized(
    baseline: &[BenchRecord],
    candidate: &[BenchRecord],
    tolerance: f64,
    calibrate: &str,
) -> Result<BenchDiff, String> {
    let calib = |records: &[BenchRecord], side: &str| -> Result<f64, String> {
        records
            .iter()
            .find(|r| r.op == calibrate && r.threads == 1)
            .map(|r| (r.median_ns as f64).max(1.0))
            .ok_or_else(|| format!("{side} has no calibration row {calibrate} at threads=1"))
    };
    let calib_ratio = calib(candidate, "candidate")? / calib(baseline, "baseline")?;
    let mut diff = BenchDiff::default();
    let mut unseen: Vec<&BenchRecord> = candidate.iter().collect();
    for base in baseline {
        match unseen.iter().position(|c| c.key() == base.key()) {
            None => diff.missing.push(base.clone()),
            Some(at) => {
                let cand = unseen.swap_remove(at);
                let raw = cand.median_ns as f64 / (base.median_ns as f64).max(1.0);
                let ratio = if COUNT_OPS.contains(&base.op.as_str()) {
                    raw
                } else {
                    raw / calib_ratio
                };
                let band = 1.0 + tolerance.max(0.0);
                if ratio > band || ratio < 1.0 / band {
                    diff.deviations.push((base.clone(), cand.clone(), ratio));
                } else {
                    diff.matched += 1;
                }
            }
        }
    }
    diff.added = unseen.into_iter().cloned().collect();
    Ok(diff)
}

/// Wall-clock a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

/// Median of `reps` runs of `f` (each run gets a fresh input from `setup`).
pub fn median_duration(reps: usize, mut run: impl FnMut() -> Duration) -> Duration {
    let mut ds: Vec<Duration> = (0..reps.max(1)).map(|_| run()).collect();
    ds.sort_unstable();
    ds[ds.len() / 2]
}

/// Replay a stream into **any** backend through the workspace-wide
/// [`BatchDynamic`] trait; returns total time. One replay routine serves
/// the parallel structure, the sequential HDT baseline (whose trait impl
/// loops one op at a time, as the sequential algorithm requires), the
/// static-recompute baseline and every future backend — the per-backend
/// replay glue this harness used to carry is gone.
pub fn replay(g: &mut dyn BatchDynamic, stream: &UpdateStream) -> Duration {
    let t = Instant::now();
    for b in &stream.batches {
        match b {
            Batch::Insert(v) => {
                g.batch_insert(v).expect("replay: insert batch rejected");
            }
            Batch::Delete(v) => {
                g.batch_delete(v).expect("replay: delete batch rejected");
            }
            Batch::Query(v) => {
                std::hint::black_box(g.batch_connected(v));
            }
        }
    }
    t.elapsed()
}

/// Flatten an [`UpdateStream`] into per-batch mixed-op slices for
/// [`BatchDynamic::apply`] (one `Vec<Op>` per source batch).
pub fn stream_ops(stream: &UpdateStream) -> Vec<Vec<Op>> {
    stream
        .batches
        .iter()
        .map(|b| match b {
            Batch::Insert(v) => v.iter().map(|&(u, w)| Op::Insert(u, w)).collect(),
            Batch::Delete(v) => v.iter().map(|&(u, w)| Op::Delete(u, w)).collect(),
            Batch::Query(v) => v.iter().map(|&(u, w)| Op::Query(u, w)).collect(),
        })
        .collect()
}

/// Replay a stream through [`BatchDynamic::apply`] (the mixed-op entry
/// point); returns total time.
pub fn replay_ops(g: &mut dyn BatchDynamic, batches: &[Vec<Op>]) -> Duration {
    let t = Instant::now();
    for ops in batches {
        std::hint::black_box(g.apply(ops).expect("replay: batch rejected"));
    }
    t.elapsed()
}

/// Drive per-client schedules (`schedules[client][request]`, as produced
/// by [`dyncon_graphgen::zipf_client_schedules`]) through a group-commit
/// server with one OS thread per client. Every client submits with
/// backpressure blocking and waits each ticket before its next request —
/// a closed-loop load generator. Returns total wall time plus every
/// request's submit→answer latency (client-major order).
pub fn drive_service<B: BatchDynamic + Send + 'static>(
    server: &ConnServer<B>,
    schedules: &[Vec<Vec<Op>>],
) -> (Duration, Vec<Duration>) {
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .enumerate()
            .map(|(c, sched)| {
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(sched.len());
                    for ops in sched {
                        let t = Instant::now();
                        let ticket = server
                            .submit_with(
                                ops.clone(),
                                SubmitOptions::new().as_client(c as u64).blocking(true),
                            )
                            .expect("service open for the whole run");
                        std::hint::black_box(ticket.wait().expect("round commits"));
                        lats.push(t.elapsed());
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    (t0.elapsed(), latencies)
}

/// What [`drive_open_loop`] measured: wall time, every accepted request's
/// intended-arrival→answer latency (client-major order), and how many
/// requests the server shed with backpressure.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Total wall time from the first intended arrival to the last answer.
    pub wall: Duration,
    /// One latency per *accepted* request, measured from the request's
    /// **intended** arrival time (not the instant the submit call ran), so
    /// a stalled server inflates the latencies of everything queued behind
    /// it — the open-loop answer to coordinated omission.
    pub latencies: Vec<Duration>,
    /// Requests rejected with [`DynConError::Backpressure`]. An open-loop
    /// generator sheds these (no retry, no latency sample) so the offered
    /// rate stays independent of server speed.
    pub rejected: u64,
    /// Requests accepted (`latencies.len()` as a counter, for rate math).
    pub accepted: u64,
}

/// Drive per-client schedules through a group-commit server **open-loop**:
/// client `c`'s request `i` is submitted at
/// `t0 + Duration::from_nanos(arrivals[c][i])` regardless of whether
/// earlier answers have come back. Compare [`drive_service`], the
/// closed-loop driver, where each client waits for its previous answer and
/// a slow server silently throttles the offered load.
///
/// Each client runs a submitter thread (sleeps until the intended arrival,
/// then a non-blocking [`ConnServer::submit_as`]; a
/// [`DynConError::Backpressure`] reject is counted and dropped) paired
/// with a collector thread that waits tickets in submission order and
/// records `intended_arrival.elapsed()` — latency from the *schedule*, not
/// the submit call, so queueing delay is charged to the server.
///
/// `arrivals[c]` (nanosecond offsets, as produced by
/// [`dyncon_graphgen::poisson_arrivals`]) must be at least as long as
/// `schedules[c]`; extra arrival slots are ignored.
pub fn drive_open_loop<B: BatchDynamic + Send + 'static>(
    server: &ConnServer<B>,
    schedules: &[Vec<Vec<Op>>],
    arrivals: &[Vec<u64>],
) -> LoadReport {
    assert_eq!(
        schedules.len(),
        arrivals.len(),
        "one arrival schedule per client"
    );
    let t0 = Instant::now();
    let mut report = LoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .zip(arrivals)
            .enumerate()
            .map(|(c, (sched, times))| {
                assert!(
                    times.len() >= sched.len(),
                    "client {c}: {} requests but only {} arrival times",
                    sched.len(),
                    times.len()
                );
                let (tx, rx) = std::sync::mpsc::channel::<(Instant, Ticket)>();
                let submitter = scope.spawn(move || {
                    let mut rejected = 0u64;
                    for (ops, &at_ns) in sched.iter().zip(times) {
                        let due = t0 + Duration::from_nanos(at_ns);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let options = SubmitOptions::new().as_client(c as u64);
                        match server.submit_with(ops.clone(), options) {
                            Ok(ticket) => tx.send((due, ticket)).expect("collector alive"),
                            Err(DynConError::Backpressure { .. }) => rejected += 1,
                            Err(e) => panic!("service open for the whole run: {e}"),
                        }
                    }
                    rejected
                });
                let collector = scope.spawn(move || {
                    let mut lats = Vec::new();
                    while let Ok((due, ticket)) = rx.recv() {
                        std::hint::black_box(ticket.wait().expect("round commits"));
                        // Saturates at zero if the answer somehow beat the
                        // intended arrival (sub-timer-resolution rounds).
                        lats.push(due.elapsed());
                    }
                    lats
                });
                (submitter, collector)
            })
            .collect();
        for (submitter, collector) in handles {
            report.rejected += submitter.join().expect("submitter thread");
            report
                .latencies
                .extend(collector.join().expect("collector thread"));
        }
    });
    report.wall = t0.elapsed();
    report.accepted = report.latencies.len() as u64;
    report
}

/// The `q`-quantile (0.0..=1.0) of a latency sample, by sorting a copy.
pub fn latency_quantile(latencies: &[Duration], q: f64) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Pretty-print a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Format a duration as microseconds with 2 decimals.
pub fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Format nanoseconds-per-item.
pub fn ns_per(d: Duration, items: usize) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e9 / items.max(1) as f64)
}

/// `lg(1 + n/k)` — the per-item factor every batch bound predicts.
pub fn lg_factor(n: usize, k: usize) -> f64 {
    (1.0 + n as f64 / k.max(1) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::{drive_open_loop, latency_quantile, parse_thread_counts};
    use dyncon_api::Op;
    use dyncon_core::BatchDynamicConnectivity;
    use dyncon_server::{ConnServer, ServerConfig};
    use std::time::Duration;

    #[test]
    fn open_loop_driver_answers_every_scheduled_request() {
        let clients = 3usize;
        let requests = 5usize;
        let schedules: Vec<Vec<Vec<Op>>> = (0..clients)
            .map(|c| {
                (0..requests)
                    .map(|i| vec![Op::Insert(c as u32, (clients + i) as u32), Op::Query(0, 1)])
                    .collect()
            })
            .collect();
        // 50 µs mean gap: fast enough to finish instantly, slow enough
        // that the queue never fills (capacity 2 per client).
        let arrivals: Vec<Vec<u64>> = (0..clients)
            .map(|c| dyncon_graphgen::poisson_arrivals(requests, 50_000, c as u64))
            .collect();
        let server = ConnServer::start(
            BatchDynamicConnectivity::new(64),
            ServerConfig::new().queue_capacity(2 * clients),
        );
        let load = drive_open_loop(&server, &schedules, &arrivals);
        let report = server.join();
        assert_eq!(load.accepted + load.rejected, (clients * requests) as u64);
        assert_eq!(load.latencies.len() as u64, load.accepted);
        assert_eq!(report.ops_committed, 2 * load.accepted);
        assert!(load.wall >= Duration::ZERO);
        // The queue-depth gauge saw at least one admitted request.
        let max = report
            .metrics
            .get("dyncon_server_queue_depth")
            .and_then(|m| m.value.as_gauge())
            .map(|(_, max)| max)
            .unwrap_or(0);
        assert!(load.accepted == 0 || max >= 1);
    }

    #[test]
    fn quantiles() {
        assert_eq!(latency_quantile(&[], 0.5), Duration::ZERO);
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(latency_quantile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(latency_quantile(&ms, 1.0), Duration::from_millis(100));
        // idx = round(99 · 0.5) = 50 → the 51st sample.
        assert_eq!(latency_quantile(&ms, 0.5), Duration::from_millis(51));
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(parse_thread_counts(None), vec![1, 2]);
        assert_eq!(parse_thread_counts(Some("")), vec![1, 2]);
        assert_eq!(parse_thread_counts(Some("4")), vec![4]);
        assert_eq!(parse_thread_counts(Some("1,2,4")), vec![1, 2, 4]);
        assert_eq!(parse_thread_counts(Some(" 1 , 8 ")), vec![1, 8]);
        assert_eq!(parse_thread_counts(Some("0,junk")), vec![1, 2]);
    }

    #[test]
    fn shard_count_parsing() {
        use super::parse_shard_counts;
        assert_eq!(parse_shard_counts(None), vec![1, 2, 4]);
        assert_eq!(parse_shard_counts(Some("2,8")), vec![2, 8]);
        assert_eq!(parse_shard_counts(Some("0")), vec![1, 2, 4]);
    }

    fn artifact(rows: &[(&str, u64, u128)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(op, threads, ns)| {
                format!(
                    r#"  {{"op":"{op}","n":16384,"batch":4096,"threads":{threads},"median_ns":{ns}}}"#
                )
            })
            .collect();
        format!(
            "{{\n\"schema\": \"dyncon-bench-v1\",\n\"records\": [\n{}\n]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        use super::parse_bench_json;
        let text = artifact(&[("batch_insert", 1, 1000), ("batch_insert", 2, 600)]);
        let records = parse_bench_json(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].op, "batch_insert");
        assert_eq!(
            (records[0].n, records[0].batch, records[0].threads),
            (16384, 4096, 1)
        );
        assert_eq!(records[1].median_ns, 600);

        assert!(parse_bench_json("{}").is_err(), "schema header required");
        assert!(
            parse_bench_json("{\"schema\": \"dyncon-bench-v1\",\n\"records\": []}").is_err(),
            "empty artifact rejected"
        );
        let bad = artifact(&[("x", 1, 5)]).replace(":5}", ":oops}");
        let err = parse_bench_json(&bad).unwrap_err();
        assert!(err.contains("median_ns"), "{err}");
    }

    #[test]
    fn bench_diff_classifies_rows() {
        use super::{diff_bench_records, parse_bench_json};
        let base = parse_bench_json(&artifact(&[
            ("batch_insert", 1, 1000),
            ("batch_insert", 2, 600),
            ("recovery_ms", 1, 5000),
        ]))
        .unwrap();
        let cand = parse_bench_json(&artifact(&[
            ("batch_insert", 1, 1100),     // within ±50%
            ("batch_insert", 2, 2000),     // 3.3x — deviation
            ("shard_throughput", 1, 9000), // new row
        ]))
        .unwrap();
        let diff = diff_bench_records(&base, &cand, 0.5);
        assert_eq!(diff.matched, 1);
        assert_eq!(diff.missing.len(), 1, "recovery_ms vanished");
        assert_eq!(diff.missing[0].op, "recovery_ms");
        assert_eq!(diff.added.len(), 1);
        assert_eq!(diff.added[0].op, "shard_throughput");
        assert_eq!(diff.deviations.len(), 1);
        let (b, c, ratio) = &diff.deviations[0];
        assert_eq!((b.threads, c.median_ns), (2, 2000));
        assert!((ratio - 2000.0 / 600.0).abs() < 1e-9);
        // Speedups beyond the band are deviations too (a 10x "win" is
        // usually a broken measurement, not a miracle).
        let fast = diff_bench_records(
            &base[..1],
            &parse_bench_json(&artifact(&[("batch_insert", 1, 50)])).unwrap(),
            0.5,
        );
        assert_eq!(fast.deviations.len(), 1);
    }

    #[test]
    fn normalized_diff_divides_out_the_machine_factor() {
        use super::{diff_bench_records, diff_bench_records_normalized, parse_bench_json};
        let base = parse_bench_json(&artifact(&[
            ("service_throughput", 1, 1_000_000),
            ("batch_insert", 1, 400_000),
            ("recovery_ms", 1, 5_000_000),
            ("queue_depth_max", 1, 6),
        ]))
        .unwrap();
        // A uniformly 2x slower runner: every timing doubled, counts
        // unchanged. The raw diff at ±20% flags every timing row; the
        // normalized diff sees every ratio as exactly 1.0.
        let cand = parse_bench_json(&artifact(&[
            ("service_throughput", 1, 2_000_000),
            ("batch_insert", 1, 800_000),
            ("recovery_ms", 1, 10_000_000),
            ("queue_depth_max", 1, 6),
        ]))
        .unwrap();
        let raw = diff_bench_records(&base, &cand, 0.2);
        assert_eq!(raw.deviations.len(), 3);
        let norm = diff_bench_records_normalized(&base, &cand, 0.2, "service_throughput").unwrap();
        assert_eq!(norm.deviations.len(), 0);
        assert_eq!(norm.matched, 4);

        // A genuine regression survives normalization: recovery got 3x
        // slower while the calibration row only doubled.
        let regressed = parse_bench_json(&artifact(&[
            ("service_throughput", 1, 2_000_000),
            ("batch_insert", 1, 800_000),
            ("recovery_ms", 1, 30_000_000),
            ("queue_depth_max", 1, 6),
        ]))
        .unwrap();
        let norm =
            diff_bench_records_normalized(&base, &regressed, 0.2, "service_throughput").unwrap();
        assert_eq!(norm.deviations.len(), 1);
        let (b, _, ratio) = &norm.deviations[0];
        assert_eq!(b.op, "recovery_ms");
        assert!((ratio - 3.0).abs() < 1e-9, "normalized ratio {ratio}");

        // Count rows stay raw: a doubled queue depth deviates even
        // though the machine factor would excuse a doubled timing.
        let counts = parse_bench_json(&artifact(&[
            ("service_throughput", 1, 2_000_000),
            ("queue_depth_max", 1, 12),
        ]))
        .unwrap();
        let norm = diff_bench_records_normalized(&base[..1], &counts, 0.2, "service_throughput")
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(norm.matched, 1, "calibration row matches itself");
        let counts_diff =
            diff_bench_records_normalized(&base[3..], &counts[1..], 0.2, "service_throughput");
        assert!(counts_diff.is_err(), "missing calibration row is an error");
        let both = [base[0].clone(), base[3].clone()];
        let norm =
            diff_bench_records_normalized(&both, &counts, 0.2, "service_throughput").unwrap();
        assert_eq!(norm.deviations.len(), 1);
        assert_eq!(norm.deviations[0].0.op, "queue_depth_max");

        // Missing rows are still always reported.
        let norm =
            diff_bench_records_normalized(&base, &cand[..2], 0.2, "service_throughput").unwrap();
        assert_eq!(norm.missing.len(), 2);
    }
}
