//! Property tests for the snapshot algebra behind push-mode export:
//! `MetricsSnapshot::delta` and `MetricsSnapshot::merge` must round-trip
//! (`prev.merge(&cur.delta(&prev)) == cur` for any monotonic history)
//! and merged histograms must stay internally consistent (bucket counts
//! sum to `count`, cumulative rendering monotone). These are the exact
//! invariants the exporter→collector pipeline relies on: exporters ship
//! deltas, collectors re-accumulate by merging.

use dyncon_metrics::Registry;
use proptest::prelude::*;

/// One recorded observation against a fixed metric family. Drawn as
/// plain integers because the vendored proptest subset has no float or
/// enum strategies.
#[derive(Clone, Copy, Debug)]
struct Observation {
    /// 0..2 → one of two counters, 2 → gauge, 3..5 → one of two
    /// histograms.
    metric: u8,
    amount: u64,
}

fn observation() -> impl Strategy<Value = Observation> {
    (0u8..5, 0u64..1 << 48).prop_map(|(metric, amount)| Observation { metric, amount })
}

/// Apply observations to a registry holding the fixed metric family.
fn apply(registry: &Registry, observations: &[Observation]) {
    let c0 = registry.counter("dyncon_test_alpha_total", "ops", "test");
    let c1 = registry.counter("dyncon_test_beta_total", "ops", "test");
    let g = registry.gauge("dyncon_test_depth", "items", "test");
    let h0 = registry.histogram("dyncon_test_lat_ns", "ns", "test");
    let h1 = registry.histogram("dyncon_test_size_ops", "ops", "test");
    for o in observations {
        match o.metric {
            0 => c0.add(o.amount % 1000),
            1 => c1.add(o.amount % 1000),
            // Gauges move both ways; keep them in i64 range.
            2 => g.set((o.amount % 2001) as i64 - 1000),
            3 => h0.record(o.amount),
            _ => h1.record(o.amount),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The exporter's core identity: for any history split into a
    /// prefix (what the collector already accumulated) and a suffix
    /// (what happened since), shipping `delta` and re-`merge`-ing
    /// reconstructs the full snapshot exactly — across counters,
    /// gauges (value and high-water mark) and histograms.
    #[test]
    fn delta_then_merge_round_trips(
        prefix in prop::collection::vec(observation(), 0..60),
        suffix in prop::collection::vec(observation(), 0..60),
    ) {
        let registry = Registry::new();
        apply(&registry, &prefix);
        let prev = registry.snapshot();
        apply(&registry, &suffix);
        let cur = registry.snapshot();
        let delta = cur.delta(&prev);
        let rebuilt = prev.merge(&delta);
        prop_assert_eq!(rebuilt, cur);
    }

    /// Merging snapshots from *different processes* (the collector's
    /// fleet view) keeps every histogram internally consistent: bucket
    /// counts sum to `count`, `count`/`sum` add across sources, and the
    /// Prometheus rendering's cumulative buckets are monotone.
    #[test]
    fn merged_histograms_stay_consistent(
        a in prop::collection::vec(observation(), 0..60),
        b in prop::collection::vec(observation(), 0..60),
    ) {
        let ra = Registry::new();
        let rb = Registry::new();
        apply(&ra, &a);
        apply(&rb, &b);
        let sa = ra.snapshot();
        let sb = rb.snapshot();
        let merged = sa.merge(&sb);
        for m in &merged.metrics {
            let Some(h) = m.value.as_histogram() else { continue };
            let ha = sa.get(&m.name).and_then(|x| x.value.as_histogram()).unwrap();
            let hb = sb.get(&m.name).and_then(|x| x.value.as_histogram()).unwrap();
            prop_assert_eq!(h.count, ha.count + hb.count, "{}: count adds", &m.name);
            prop_assert_eq!(
                h.sum,
                ha.sum.wrapping_add(hb.sum),
                "{}: sum adds", &m.name
            );
            prop_assert_eq!(
                h.buckets.iter().sum::<u64>(),
                h.count,
                "{}: buckets sum to count", &m.name
            );
            for (i, (&ma, (&ba, &bb))) in h
                .buckets
                .iter()
                .zip(ha.buckets.iter().zip(hb.buckets.iter()))
                .enumerate()
            {
                prop_assert_eq!(ma, ba + bb, "{}: bucket {} adds", &m.name, i);
            }
        }
        // The cumulative `_bucket` series in the rendered exposition is
        // non-decreasing — the property Prometheus quantile math needs.
        let rendered = merged.render_prometheus();
        let mut last: Option<(String, u64)> = None;
        for line in rendered.lines() {
            let Some((name_le, value)) = line.rsplit_once(' ') else { continue };
            let Some((name, _le)) = name_le.split_once("_bucket{le=") else {
                last = None;
                continue;
            };
            let cumulative: u64 = value.parse().unwrap();
            if let Some((prev_name, prev_value)) = &last {
                if prev_name == name {
                    prop_assert!(
                        cumulative >= *prev_value,
                        "{name}: cumulative bucket decreased ({prev_value} -> {cumulative})"
                    );
                }
            }
            last = Some((name.to_string(), cumulative));
        }
    }
}
