//! Property tests for the log2-histogram quantile contract:
//! for any sample set and any `q`, the reported quantile never
//! understates the true nearest-rank sample quantile and overstates it
//! by less than 2x (see the module docs of `dyncon_metrics::histogram`).

use dyncon_metrics::{bucket_bounds, bucket_index, Histogram, BUCKETS};
use proptest::prelude::*;

/// Exact nearest-rank quantile over the raw samples.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn recorded_quantiles_bound_true_quantiles(
        mut samples in prop::collection::vec(0u64..u64::MAX, 1..200),
        // The vendored proptest subset has no float strategies; draw q in
        // per-mille steps, which covers p50/p99/p999 and both endpoints.
        q_mille in 0u32..1001,
    ) {
        let q = f64::from(q_mille) / 1000.0;
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();

        let truth = true_quantile(&samples, q);
        let reported = h.quantile(q).expect("non-empty histogram");

        // Lower bound: never understate.
        prop_assert!(
            reported >= truth,
            "reported {reported} < true {truth} at q={q}"
        );
        // Upper bound: overstate by less than 2x (with max(.,1) so the
        // all-zeros bucket, whose upper bound is 0, also satisfies it).
        prop_assert!(
            (reported as u128) < 2 * (truth.max(1) as u128),
            "reported {reported} >= 2 * {} at q={q}", truth.max(1)
        );
    }

    #[test]
    fn count_and_sum_match_the_samples(
        samples in prop::collection::vec(0u64..1 << 40, 0..200),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    #[test]
    fn bucket_index_agrees_with_bounds(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }
}
