//! Fixed-bucket log2 histograms with quantile extraction.
//!
//! The bucket layout is the classic power-of-two scheme used by HDR-style
//! latency recorders: bucket `0` holds exactly the value `0`, and bucket
//! `i >= 1` holds the values in `[2^(i-1), 2^i - 1]`. 65 buckets cover
//! the whole `u64` range, so recording never clamps and never allocates.
//!
//! The price of fixed buckets is bounded relative error: an extracted
//! quantile is the **upper bound of the bucket holding the rank**, so for
//! any sample set and any `q`
//!
//! ```text
//! true_quantile <= quantile(q) < 2 * max(true_quantile, 1)
//! ```
//!
//! — reported quantiles never understate latency, and overstate it by
//! less than 2×. The proptest suite (`tests/proptest_quantiles.rs`)
//! holds both bounds against exact sorted-sample quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two in `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index of a value: `0` for `0`, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive `(lo, hi)` value range of bucket `i` (`i < BUCKETS`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A concurrent fixed-bucket log2 histogram. Recording is one relaxed
/// `fetch_add` per atomic touched; extraction walks 65 buckets.
///
/// ```
/// let h = dyncon_metrics::Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// // p50 falls in the [2,3] bucket; its upper bound is reported.
/// assert_eq!(h.quantile(0.5), Some(3));
/// assert_eq!(h.quantile(1.0), Some(127));
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds (saturating at `u64::MAX`,
    /// i.e. after ~584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values (wrapping on overflow; meaningful for
    /// totals well below `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) as the upper bound of
    /// the bucket holding the rank, or `None` on an empty histogram. See
    /// the module docs for the two-sided error bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Freeze the current contents. Concurrent recorders may land between
    /// the bucket loads; the snapshot is internally consistent as a set
    /// of per-bucket counts (each bucket is read once), which is all the
    /// quantile math needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable bucket counts of a [`Histogram`] at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`BUCKETS` entries, non-cumulative).
    pub buckets: Vec<u64>,
    /// Total samples (the sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile of the frozen counts; `None` when empty. Same
    /// contract as [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // Nearest-rank: the smallest value v such that at least
        // ceil(q * count) samples are <= v, evaluated on buckets.
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(i).1);
            }
        }
        unreachable!("rank <= count implies some bucket reaches it")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's bounds agree with the index function, and the
        // buckets tile u64 with no gaps or overlaps.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_bounds(i + 1).0, hi + 1, "tiling at bucket {i}");
            }
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(1000); // bucket [512, 1023]
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(1023), "q = {q}");
        }
        assert_eq!((h.count(), h.sum()), (1, 1000));
    }

    #[test]
    fn zero_samples_live_in_their_own_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
    }

    #[test]
    fn quantiles_walk_the_ranks() {
        let h = Histogram::new();
        // 90 samples at 1, 9 at ~1000, 1 at ~1e6: a classic latency tail.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.9), Some(1));
        assert_eq!(h.quantile(0.91), Some(1023));
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(h.quantile(0.999), Some((1 << 20) - 1));
        assert_eq!(h.quantile(1.0), Some((1 << 20) - 1));
    }

    #[test]
    fn extreme_values_do_not_clamp() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
        let (lo, hi) = bucket_bounds(64);
        assert_eq!((lo, hi), (1 << 63, u64::MAX));
    }

    #[test]
    fn snapshot_is_frozen() {
        let h = Histogram::new();
        h.record(5);
        let snap = h.snapshot();
        h.record(5);
        h.record(7);
        assert_eq!(snap.count, 1, "snapshot does not see later samples");
        assert_eq!(h.snapshot().count, 3);
        assert_eq!(snap.quantile(0.5), Some(7)); // bucket [4,7]
    }

    #[test]
    fn record_duration_uses_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(std::time::Duration::from_micros(3));
        assert_eq!(h.sum(), 3000);
        // 3000 ns falls in [2048, 4095].
        assert_eq!(h.quantile(0.5), Some(4095));
    }
}
