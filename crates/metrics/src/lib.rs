//! # dyncon-metrics
//!
//! Runtime observability for the dyncon serving stack: **atomic
//! counters**, **gauges** (with a high-water mark), and **fixed-bucket
//! log2 histograms** with p50/p99/p999 extraction, collected under names
//! in a [`Registry`], frozen into an immutable [`MetricsSnapshot`], and
//! rendered in the Prometheus text exposition format
//! ([`MetricsSnapshot::render_prometheus`]).
//!
//! Std-only and dependency-free, like the serving layer it instruments.
//! Every recording operation is a handful of relaxed atomic instructions
//! — cheap enough to leave on in production and in the determinism test
//! matrix.
//!
//! ## Metrics are observational, never inputs
//!
//! Nothing in this crate feeds back into algorithmic decisions: the
//! serving and durability layers *record* into these types but never
//! *read* them on a decision path. That is what lets instrumentation
//! coexist with the workspace byte-determinism contract — enabling
//! metrics must leave every `BatchResult` byte-identical at any
//! `DYNCON_THREADS` (enforced in `tests/determinism.rs`).
//!
//! ## Example
//!
//! ```
//! use dyncon_metrics::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("demo_requests_total", "requests", "requests admitted");
//! let depth = registry.gauge("demo_queue_depth", "requests", "queued right now");
//! let latency = registry.histogram("demo_latency_ns", "ns", "submit to answer");
//!
//! requests.inc();
//! depth.set(3);
//! latency.record(1_500);
//! latency.record(40_000);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.get("demo_requests_total").unwrap().value.as_counter(), Some(1));
//! let text = snap.render_prometheus();
//! assert!(text.contains("# TYPE demo_latency_ns histogram"));
//! ```

mod histogram;
mod registry;
mod scalar;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricSnapshot, MetricValue, MetricsSnapshot, Registry};
pub use scalar::{Counter, Gauge};
