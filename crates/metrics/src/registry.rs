//! The named-metric registry, immutable snapshots, and the text
//! exposition renderer.

use crate::histogram::{bucket_bounds, Histogram, HistogramSnapshot};
use crate::scalar::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// What kind of metric a name is bound to (snapshot side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic total.
    Counter(u64),
    /// Current value plus high-water mark.
    Gauge {
        /// The value at snapshot time.
        value: i64,
        /// The largest value ever set.
        max: i64,
    },
    /// Frozen bucket counts.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The counter total, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `(value, max)`, if this is a gauge.
    pub fn as_gauge(&self) -> Option<(i64, i64)> {
        match self {
            MetricValue::Gauge { value, max } => Some((*value, *max)),
            _ => None,
        }
    }

    /// The histogram snapshot, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// One named metric inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Registered name (`[a-z_][a-z0-9_]*`, Prometheus-compatible).
    pub name: String,
    /// Unit of the recorded values (`ns`, `ops`, `bytes`, `requests`, …)
    /// — documentation, not semantics.
    pub unit: String,
    /// One-line human description (the `# HELP` text).
    pub help: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// An immutable, alphabetically ordered capture of every metric in a
/// [`Registry`] at one instant. Cheap to clone, safe to ship across
/// threads, and renderable as Prometheus text exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

/// The live handle behind a registered name.
#[derive(Clone)]
enum LiveMetric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl LiveMetric {
    fn kind(&self) -> &'static str {
        match self {
            LiveMetric::Counter(_) => "counter",
            LiveMetric::Gauge(_) => "gauge",
            LiveMetric::Histogram(_) => "histogram",
        }
    }
}

struct Registered {
    unit: String,
    help: String,
    metric: LiveMetric,
}

/// A shared, cheaply clonable collection of named metrics. Clones refer
/// to the same underlying map, so a registry threaded through server and
/// durability layers snapshots everything at once.
///
/// Registration is **idempotent**: asking for an existing name of the
/// same kind returns the same handle (unit/help of the first
/// registration win). Re-registering a name as a *different* kind is a
/// programming error and panics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Registered>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.inner.lock().unwrap().keys().cloned().collect();
        f.debug_struct("Registry").field("metrics", &names).finish()
    }
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = matches!(chars.next(), Some('a'..='z' | '_'));
    let tail_ok = chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'));
    assert!(
        head_ok && tail_ok,
        "metric name {name:?} must match [a-z_][a-z0-9_]*"
    );
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T>(
        &self,
        name: &str,
        unit: &str,
        help: &str,
        wrap: impl FnOnce(Arc<T>) -> LiveMetric,
        unwrap: impl FnOnce(&LiveMetric) -> Option<Arc<T>>,
    ) -> Arc<T>
    where
        T: Default,
    {
        validate_name(name);
        let mut map = self.inner.lock().unwrap();
        if let Some(existing) = map.get(name) {
            return unwrap(&existing.metric).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    existing.metric.kind()
                )
            });
        }
        let handle = Arc::new(T::default());
        map.insert(
            name.to_string(),
            Registered {
                unit: unit.to_string(),
                help: help.to_string(),
                metric: wrap(Arc::clone(&handle)),
            },
        );
        handle
    }

    /// Register (or retrieve) a [`Counter`] under `name`.
    pub fn counter(&self, name: &str, unit: &str, help: &str) -> Arc<Counter> {
        self.register(name, unit, help, LiveMetric::Counter, |m| match m {
            LiveMetric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// Register (or retrieve) a [`Gauge`] under `name`.
    pub fn gauge(&self, name: &str, unit: &str, help: &str) -> Arc<Gauge> {
        self.register(name, unit, help, LiveMetric::Gauge, |m| match m {
            LiveMetric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Register (or retrieve) a [`Histogram`] under `name`.
    pub fn histogram(&self, name: &str, unit: &str, help: &str) -> Arc<Histogram> {
        self.register(name, unit, help, LiveMetric::Histogram, |m| match m {
            LiveMetric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Freeze every registered metric into an immutable, name-sorted
    /// [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().unwrap();
        MetricsSnapshot {
            metrics: map
                .iter()
                .map(|(name, reg)| MetricSnapshot {
                    name: name.clone(),
                    unit: reg.unit.clone(),
                    help: reg.help.clone(),
                    value: match &reg.metric {
                        LiveMetric::Counter(c) => MetricValue::Counter(c.get()),
                        LiveMetric::Gauge(g) => MetricValue::Gauge {
                            value: g.get(),
                            max: g.max(),
                        },
                        LiveMetric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// Subtract one [`MetricValue`] from another of the same kind (the
/// delta side of [`MetricsSnapshot::delta`]). `None` on kind mismatch.
fn delta_value(cur: &MetricValue, prev: &MetricValue) -> Option<MetricValue> {
    match (cur, prev) {
        (MetricValue::Counter(c), MetricValue::Counter(p)) => {
            Some(MetricValue::Counter(c.saturating_sub(*p)))
        }
        // Gauge deltas subtract the value but carry the *current* max:
        // the high-water mark is monotonic, so merge's max-of-max puts
        // the round-trip back exactly.
        (MetricValue::Gauge { value: c, max: cm }, MetricValue::Gauge { value: p, .. }) => {
            Some(MetricValue::Gauge {
                value: c.wrapping_sub(*p),
                max: *cm,
            })
        }
        (MetricValue::Histogram(c), MetricValue::Histogram(p)) => {
            let buckets = c
                .buckets
                .iter()
                .zip(&p.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect();
            Some(MetricValue::Histogram(HistogramSnapshot {
                buckets,
                count: c.count.saturating_sub(p.count),
                sum: c.sum.wrapping_sub(p.sum),
            }))
        }
        _ => None,
    }
}

/// Add two [`MetricValue`]s of the same kind (the merge side of
/// [`MetricsSnapshot::merge`]). `None` on kind mismatch.
fn merge_value(a: &MetricValue, b: &MetricValue) -> Option<MetricValue> {
    match (a, b) {
        (MetricValue::Counter(x), MetricValue::Counter(y)) => {
            Some(MetricValue::Counter(x.saturating_add(*y)))
        }
        (MetricValue::Gauge { value: xv, max: xm }, MetricValue::Gauge { value: yv, max: ym }) => {
            Some(MetricValue::Gauge {
                value: xv.wrapping_add(*yv),
                max: (*xm).max(*ym),
            })
        }
        (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
            let buckets = x
                .buckets
                .iter()
                .zip(&y.buckets)
                .map(|(a, b)| a.saturating_add(*b))
                .collect();
            Some(MetricValue::Histogram(HistogramSnapshot {
                buckets,
                count: x.count.saturating_add(y.count),
                sum: x.sum.wrapping_add(y.sum),
            }))
        }
        _ => None,
    }
}

impl MetricsSnapshot {
    /// Look a metric up by name (binary search — snapshots are sorted).
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i])
    }

    /// What happened between `prev` and `self`: counter differences,
    /// gauge value differences (carrying the current high-water mark,
    /// which is monotonic), and bucket-wise histogram subtraction.
    /// Metrics absent from `prev` (registered since) pass through
    /// whole; metrics absent from `self` are dropped. Designed so that
    /// `prev.merge(&self.delta(&prev)) == self` whenever both snapshots
    /// came from the same registry (counters and buckets only grow).
    pub fn delta(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .map(|cur| {
                    let value = prev
                        .get(&cur.name)
                        .and_then(|p| delta_value(&cur.value, &p.value))
                        .unwrap_or_else(|| cur.value.clone());
                    MetricSnapshot {
                        name: cur.name.clone(),
                        unit: cur.unit.clone(),
                        help: cur.help.clone(),
                        value,
                    }
                })
                .collect(),
        }
    }

    /// Accumulate `other` (typically a [`delta`](Self::delta)) into a
    /// copy of `self`: counters and histogram buckets add, gauge values
    /// add with max-of-max high-water marks. Names present in only one
    /// side pass through; a name bound to different kinds keeps
    /// `other`'s value (last writer wins). The result stays name-sorted.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut metrics = Vec::with_capacity(self.metrics.len().max(other.metrics.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.metrics.len() || j < other.metrics.len() {
            let take_left = match (self.metrics.get(i), other.metrics.get(j)) {
                (Some(a), Some(b)) => match a.name.cmp(&b.name) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        let value =
                            merge_value(&a.value, &b.value).unwrap_or_else(|| b.value.clone());
                        metrics.push(MetricSnapshot {
                            name: a.name.clone(),
                            unit: a.unit.clone(),
                            help: a.help.clone(),
                            value,
                        });
                        i += 1;
                        j += 1;
                        continue;
                    }
                },
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_left {
                metrics.push(self.metrics[i].clone());
                i += 1;
            } else {
                metrics.push(other.metrics[j].clone());
                j += 1;
            }
        }
        MetricsSnapshot { metrics }
    }

    /// Render the snapshot in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` comments, plain samples for counters and
    /// gauges (gauges also emit a `<name>_max` high-water sample), and
    /// cumulative `_bucket{le="…"}` / `_sum` / `_count` series for
    /// histograms. Empty log2 buckets are elided; the `+Inf` bucket is
    /// always present.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for m in &self.metrics {
            let unit = if m.unit.is_empty() {
                String::new()
            } else {
                format!(" ({})", m.unit)
            };
            writeln!(out, "# HELP {} {}{unit}", m.name, m.help).unwrap();
            match &m.value {
                MetricValue::Counter(v) => {
                    writeln!(out, "# TYPE {} counter", m.name).unwrap();
                    writeln!(out, "{} {v}", m.name).unwrap();
                }
                MetricValue::Gauge { value, max } => {
                    writeln!(out, "# TYPE {} gauge", m.name).unwrap();
                    writeln!(out, "{} {value}", m.name).unwrap();
                    writeln!(out, "{}_max {max}", m.name).unwrap();
                }
                MetricValue::Histogram(h) => {
                    writeln!(out, "# TYPE {} histogram", m.name).unwrap();
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_bounds(i).1;
                        writeln!(out, "{}_bucket{{le=\"{le}\"}} {cumulative}", m.name).unwrap();
                    }
                    writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count).unwrap();
                    writeln!(out, "{}_sum {}", m.name, h.sum).unwrap();
                    writeln!(out, "{}_count {}", m.name, h.count).unwrap();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "ops", "first");
        let b = r.counter("x_total", "ops", "second registration is ignored");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7, "same underlying counter");
        let snap = r.snapshot();
        assert_eq!(snap.get("x_total").unwrap().help, "first");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("x_total", "ops", "");
        r.gauge("x_total", "ops", "");
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn bad_names_panic() {
        Registry::new().counter("9bad-name", "", "");
    }

    #[test]
    fn clones_share_the_map() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("a_total", "ops", "").inc();
        r2.gauge("b_depth", "requests", "").set(5);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert_eq!(snap.get("a_total").unwrap().value.as_counter(), Some(1));
        assert_eq!(snap.get("b_depth").unwrap().value.as_gauge(), Some((5, 5)));
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn snapshots_are_sorted_and_immutable() {
        let r = Registry::new();
        let c = r.counter("zz_total", "ops", "");
        r.counter("aa_total", "ops", "");
        let snap = r.snapshot();
        c.inc();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["aa_total", "zz_total"]);
        assert_eq!(snap.get("zz_total").unwrap().value.as_counter(), Some(0));
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("req_total", "requests", "requests admitted")
            .add(5);
        r.gauge("depth", "requests", "queued now").set(2);
        let h = r.histogram("lat_ns", "ns", "latency");
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(900);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# HELP req_total requests admitted (requests)"));
        assert!(text.contains("# TYPE req_total counter\nreq_total 5\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth 2\ndepth_max 2\n"));
        // Histogram: cumulative buckets, empty ones elided, +Inf closes.
        assert!(text.contains("lat_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"1023\"} 4"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_ns_sum 906"));
        assert!(text.contains("lat_ns_count 4"));
        assert!(!text.contains("le=\"1\"} "), "empty buckets elided");
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(Registry::new().snapshot().render_prometheus(), "");
        assert_eq!(Registry::new().snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn delta_subtracts_every_kind() {
        let r = Registry::new();
        let c = r.counter("c_total", "ops", "");
        let g = r.gauge("g_depth", "requests", "");
        let h = r.histogram("h_ns", "ns", "");
        c.add(5);
        g.set(9);
        h.record(3);
        h.record(900);
        let prev = r.snapshot();
        c.add(2);
        g.set(4); // below the high-water mark of 9
        h.record(3);
        let cur = r.snapshot();
        let d = cur.delta(&prev);
        assert_eq!(d.get("c_total").unwrap().value.as_counter(), Some(2));
        // Gauge delta: value difference, but the *current* max rides
        // along (it is monotonic, so merge restores it exactly).
        assert_eq!(d.get("g_depth").unwrap().value.as_gauge(), Some((-5, 9)));
        let dh = d.get("h_ns").unwrap().value.as_histogram().unwrap();
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 3);
        assert_eq!(dh.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn delta_passes_new_metrics_through_whole() {
        let r = Registry::new();
        r.counter("old_total", "ops", "").add(1);
        let prev = r.snapshot();
        r.counter("new_total", "ops", "").add(7);
        let cur = r.snapshot();
        let d = cur.delta(&prev);
        assert_eq!(d.get("new_total").unwrap().value.as_counter(), Some(7));
        assert_eq!(d.get("old_total").unwrap().value.as_counter(), Some(0));
    }

    #[test]
    fn delta_then_merge_round_trips() {
        let r = Registry::new();
        let c = r.counter("c_total", "ops", "");
        let g = r.gauge("g_depth", "requests", "");
        let h = r.histogram("h_ns", "ns", "");
        c.add(11);
        g.set(6);
        h.record(0);
        h.record(42);
        let prev = r.snapshot();
        c.add(3);
        g.set(2);
        h.record(42);
        h.record(1 << 30);
        let cur = r.snapshot();
        assert_eq!(prev.merge(&cur.delta(&prev)), cur);
    }

    #[test]
    fn merge_unions_disjoint_processes() {
        // Two processes, overlapping + disjoint names: the collector's
        // aggregation case.
        let a = Registry::new();
        a.counter("shared_total", "ops", "").add(2);
        a.gauge("only_a_depth", "requests", "").set(3);
        let b = Registry::new();
        b.counter("shared_total", "ops", "").add(5);
        let hb = b.histogram("only_b_ns", "ns", "");
        hb.record(7);
        let merged = a.snapshot().merge(&b.snapshot());
        let names: Vec<&str> = merged.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["only_a_depth", "only_b_ns", "shared_total"]);
        assert_eq!(
            merged.get("shared_total").unwrap().value.as_counter(),
            Some(7)
        );
        assert_eq!(
            merged.get("only_a_depth").unwrap().value.as_gauge(),
            Some((3, 3))
        );
        assert_eq!(
            merged
                .get("only_b_ns")
                .unwrap()
                .value
                .as_histogram()
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn merged_histograms_render_cumulative_and_monotone() {
        let a = Registry::new();
        let ha = a.histogram("lat_ns", "ns", "latency");
        ha.record(3);
        ha.record(900);
        let b = Registry::new();
        let hb = b.histogram("lat_ns", "ns", "latency");
        hb.record(3);
        let merged = a.snapshot().merge(&b.snapshot());
        let h = merged.get("lat_ns").unwrap().value.as_histogram().unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 906);
        let text = merged.render_prometheus();
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
    }
}
