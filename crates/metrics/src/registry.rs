//! The named-metric registry, immutable snapshots, and the text
//! exposition renderer.

use crate::histogram::{bucket_bounds, Histogram, HistogramSnapshot};
use crate::scalar::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// What kind of metric a name is bound to (snapshot side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic total.
    Counter(u64),
    /// Current value plus high-water mark.
    Gauge {
        /// The value at snapshot time.
        value: i64,
        /// The largest value ever set.
        max: i64,
    },
    /// Frozen bucket counts.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The counter total, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `(value, max)`, if this is a gauge.
    pub fn as_gauge(&self) -> Option<(i64, i64)> {
        match self {
            MetricValue::Gauge { value, max } => Some((*value, *max)),
            _ => None,
        }
    }

    /// The histogram snapshot, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// One named metric inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Registered name (`[a-z_][a-z0-9_]*`, Prometheus-compatible).
    pub name: String,
    /// Unit of the recorded values (`ns`, `ops`, `bytes`, `requests`, …)
    /// — documentation, not semantics.
    pub unit: String,
    /// One-line human description (the `# HELP` text).
    pub help: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// An immutable, alphabetically ordered capture of every metric in a
/// [`Registry`] at one instant. Cheap to clone, safe to ship across
/// threads, and renderable as Prometheus text exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

/// The live handle behind a registered name.
#[derive(Clone)]
enum LiveMetric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl LiveMetric {
    fn kind(&self) -> &'static str {
        match self {
            LiveMetric::Counter(_) => "counter",
            LiveMetric::Gauge(_) => "gauge",
            LiveMetric::Histogram(_) => "histogram",
        }
    }
}

struct Registered {
    unit: String,
    help: String,
    metric: LiveMetric,
}

/// A shared, cheaply clonable collection of named metrics. Clones refer
/// to the same underlying map, so a registry threaded through server and
/// durability layers snapshots everything at once.
///
/// Registration is **idempotent**: asking for an existing name of the
/// same kind returns the same handle (unit/help of the first
/// registration win). Re-registering a name as a *different* kind is a
/// programming error and panics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Registered>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.inner.lock().unwrap().keys().cloned().collect();
        f.debug_struct("Registry").field("metrics", &names).finish()
    }
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = matches!(chars.next(), Some('a'..='z' | '_'));
    let tail_ok = chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'));
    assert!(
        head_ok && tail_ok,
        "metric name {name:?} must match [a-z_][a-z0-9_]*"
    );
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T>(
        &self,
        name: &str,
        unit: &str,
        help: &str,
        wrap: impl FnOnce(Arc<T>) -> LiveMetric,
        unwrap: impl FnOnce(&LiveMetric) -> Option<Arc<T>>,
    ) -> Arc<T>
    where
        T: Default,
    {
        validate_name(name);
        let mut map = self.inner.lock().unwrap();
        if let Some(existing) = map.get(name) {
            return unwrap(&existing.metric).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    existing.metric.kind()
                )
            });
        }
        let handle = Arc::new(T::default());
        map.insert(
            name.to_string(),
            Registered {
                unit: unit.to_string(),
                help: help.to_string(),
                metric: wrap(Arc::clone(&handle)),
            },
        );
        handle
    }

    /// Register (or retrieve) a [`Counter`] under `name`.
    pub fn counter(&self, name: &str, unit: &str, help: &str) -> Arc<Counter> {
        self.register(name, unit, help, LiveMetric::Counter, |m| match m {
            LiveMetric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// Register (or retrieve) a [`Gauge`] under `name`.
    pub fn gauge(&self, name: &str, unit: &str, help: &str) -> Arc<Gauge> {
        self.register(name, unit, help, LiveMetric::Gauge, |m| match m {
            LiveMetric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Register (or retrieve) a [`Histogram`] under `name`.
    pub fn histogram(&self, name: &str, unit: &str, help: &str) -> Arc<Histogram> {
        self.register(name, unit, help, LiveMetric::Histogram, |m| match m {
            LiveMetric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Freeze every registered metric into an immutable, name-sorted
    /// [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().unwrap();
        MetricsSnapshot {
            metrics: map
                .iter()
                .map(|(name, reg)| MetricSnapshot {
                    name: name.clone(),
                    unit: reg.unit.clone(),
                    help: reg.help.clone(),
                    value: match &reg.metric {
                        LiveMetric::Counter(c) => MetricValue::Counter(c.get()),
                        LiveMetric::Gauge(g) => MetricValue::Gauge {
                            value: g.get(),
                            max: g.max(),
                        },
                        LiveMetric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

impl MetricsSnapshot {
    /// Look a metric up by name (binary search — snapshots are sorted).
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i])
    }

    /// Render the snapshot in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` comments, plain samples for counters and
    /// gauges (gauges also emit a `<name>_max` high-water sample), and
    /// cumulative `_bucket{le="…"}` / `_sum` / `_count` series for
    /// histograms. Empty log2 buckets are elided; the `+Inf` bucket is
    /// always present.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for m in &self.metrics {
            let unit = if m.unit.is_empty() {
                String::new()
            } else {
                format!(" ({})", m.unit)
            };
            writeln!(out, "# HELP {} {}{unit}", m.name, m.help).unwrap();
            match &m.value {
                MetricValue::Counter(v) => {
                    writeln!(out, "# TYPE {} counter", m.name).unwrap();
                    writeln!(out, "{} {v}", m.name).unwrap();
                }
                MetricValue::Gauge { value, max } => {
                    writeln!(out, "# TYPE {} gauge", m.name).unwrap();
                    writeln!(out, "{} {value}", m.name).unwrap();
                    writeln!(out, "{}_max {max}", m.name).unwrap();
                }
                MetricValue::Histogram(h) => {
                    writeln!(out, "# TYPE {} histogram", m.name).unwrap();
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_bounds(i).1;
                        writeln!(out, "{}_bucket{{le=\"{le}\"}} {cumulative}", m.name).unwrap();
                    }
                    writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count).unwrap();
                    writeln!(out, "{}_sum {}", m.name, h.sum).unwrap();
                    writeln!(out, "{}_count {}", m.name, h.count).unwrap();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "ops", "first");
        let b = r.counter("x_total", "ops", "second registration is ignored");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7, "same underlying counter");
        let snap = r.snapshot();
        assert_eq!(snap.get("x_total").unwrap().help, "first");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("x_total", "ops", "");
        r.gauge("x_total", "ops", "");
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn bad_names_panic() {
        Registry::new().counter("9bad-name", "", "");
    }

    #[test]
    fn clones_share_the_map() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("a_total", "ops", "").inc();
        r2.gauge("b_depth", "requests", "").set(5);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert_eq!(snap.get("a_total").unwrap().value.as_counter(), Some(1));
        assert_eq!(snap.get("b_depth").unwrap().value.as_gauge(), Some((5, 5)));
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn snapshots_are_sorted_and_immutable() {
        let r = Registry::new();
        let c = r.counter("zz_total", "ops", "");
        r.counter("aa_total", "ops", "");
        let snap = r.snapshot();
        c.inc();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["aa_total", "zz_total"]);
        assert_eq!(snap.get("zz_total").unwrap().value.as_counter(), Some(0));
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("req_total", "requests", "requests admitted")
            .add(5);
        r.gauge("depth", "requests", "queued now").set(2);
        let h = r.histogram("lat_ns", "ns", "latency");
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(900);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# HELP req_total requests admitted (requests)"));
        assert!(text.contains("# TYPE req_total counter\nreq_total 5\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth 2\ndepth_max 2\n"));
        // Histogram: cumulative buckets, empty ones elided, +Inf closes.
        assert!(text.contains("lat_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"1023\"} 4"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_ns_sum 906"));
        assert!(text.contains("lat_ns_count 4"));
        assert!(!text.contains("le=\"1\"} "), "empty buckets elided");
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(Registry::new().snapshot().render_prometheus(), "");
        assert_eq!(Registry::new().snapshot(), MetricsSnapshot::default());
    }
}
