//! The scalar metric kinds: monotonic counters and settable gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count (requests admitted, rounds
/// committed, bytes appended). All operations are relaxed atomics:
/// recording never orders anything, it only tallies.
///
/// ```
/// let c = dyncon_metrics::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that goes up *and* down (queue depth, bytes on disk), with a
/// tracked **high-water mark**: the largest value ever set, which is what
/// load experiments report as `queue_depth_max`.
///
/// ```
/// let g = dyncon_metrics::Gauge::new();
/// g.set(7);
/// g.set(3);
/// assert_eq!((g.get(), g.max()), (3, 7));
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// A gauge at zero (high-water mark zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current value and fold it into the high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative); the result feeds the high-water
    /// mark.
    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever observed by [`Gauge::set`] / [`Gauge::add`]
    /// (zero if never set above zero).
    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_tracks_value_and_high_water_mark() {
        let g = Gauge::new();
        assert_eq!((g.get(), g.max()), (0, 0));
        g.set(5);
        g.add(3); // 8: the new high-water mark
        g.add(-6); // 2
        g.set(4);
        assert_eq!((g.get(), g.max()), (4, 8));
        // Negative values are legal; the mark never decreases.
        g.set(-100);
        assert_eq!((g.get(), g.max()), (-100, 8));
    }

    #[test]
    fn counter_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
