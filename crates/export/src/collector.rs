//! The pull-side of the push pipeline: a TCP sink that accepts framed
//! telemetry from any number of exporters, validates every checksum,
//! aggregates per source, and re-renders the merged fleet view as
//! Prometheus text.
//!
//! Exporters send metric **deltas**, so the collector accumulates:
//! each source's deltas are [`MetricsSnapshot::merge`]d into that
//! source's running total, and [`Collector::merged_snapshot`] folds the
//! per-source totals into one fleet-wide snapshot (counters and
//! histogram buckets add, gauge high-water marks take the max).
//!
//! Corruption policy mirrors the WAL's: a frame that fails its header
//! or payload checksum is counted in
//! [`Collector::checksum_failures`] and the connection is dropped —
//! a TCP byte stream cannot be resynchronised trustworthily past a bad
//! length field, and the exporter reconnects with a fresh stream
//! anyway.

use crate::frame::{decode_frame, FramePayload, WireSlowRound, EXPORT_MAGIC};
use dyncon_metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Read timeout for collector connections: bounds how long a dead
/// exporter holds a handler thread, and how often a live one checks
/// the stop flag.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Retained slow-round captures across all sources (newest win).
const SLOW_RETAIN: usize = 64;

/// What the collector accumulated from one exporting process.
#[derive(Default)]
struct SourceState {
    metrics: MetricsSnapshot,
    frames: u64,
    spans: u64,
    slow_rounds: u64,
}

#[derive(Default)]
struct Shared {
    sources: Mutex<BTreeMap<String, SourceState>>,
    slow: Mutex<Vec<(String, WireSlowRound)>>,
    frames_received: AtomicU64,
    spans_received: AtomicU64,
    slow_rounds_received: AtomicU64,
    checksum_failures: AtomicU64,
    connections: AtomicU64,
}

/// A running collector. Bind with [`Collector::bind`], point exporters
/// at [`Collector::local_addr`], read the fleet view with
/// [`Collector::render_prometheus`]; stop with [`Collector::close`]
/// (drop does too).
pub struct Collector {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<Shared>,
}

impl Collector {
    /// Bind and start accepting exporter connections (each served on
    /// its own thread).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Collector> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared::default());
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_shared = Arc::clone(&shared);
        let thread_handles = Arc::clone(&conn_handles);
        let accept_handle = std::thread::Builder::new()
            .name("dyncon-collector".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_stop = Arc::clone(&thread_stop);
                    let conn_shared = Arc::clone(&thread_shared);
                    let handle = std::thread::Builder::new()
                        .name("dyncon-collector-conn".into())
                        .spawn(move || serve_connection(stream, &conn_shared, &conn_stop));
                    if let Ok(handle) = handle {
                        thread_handles.lock().unwrap().push(handle);
                    }
                }
            })
            .expect("spawn dyncon collector thread");
        Ok(Collector {
            addr,
            stop,
            accept_handle: Mutex::new(Some(accept_handle)),
            conn_handles,
            shared,
        })
    }

    /// The bound address (bind to port 0 for an ephemeral one).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Valid frames accepted so far (across all connections).
    pub fn frames_received(&self) -> u64 {
        self.shared.frames_received.load(Ordering::Relaxed)
    }

    /// Frames rejected for checksum/format corruption.
    pub fn checksum_failures(&self) -> u64 {
        self.shared.checksum_failures.load(Ordering::Relaxed)
    }

    /// Spans received across all span frames.
    pub fn spans_received(&self) -> u64 {
        self.shared.spans_received.load(Ordering::Relaxed)
    }

    /// Slow-round captures received.
    pub fn slow_rounds_received(&self) -> u64 {
        self.shared.slow_rounds_received.load(Ordering::Relaxed)
    }

    /// Exporter connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// The sources that have reported, sorted.
    pub fn sources(&self) -> Vec<String> {
        self.shared
            .sources
            .lock()
            .unwrap()
            .keys()
            .cloned()
            .collect()
    }

    /// One source's accumulated metric totals, if it has reported.
    pub fn source_snapshot(&self, source: &str) -> Option<MetricsSnapshot> {
        self.shared
            .sources
            .lock()
            .unwrap()
            .get(source)
            .map(|s| s.metrics.clone())
    }

    /// The fleet view: every source's accumulated totals merged into
    /// one snapshot.
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let sources = self.shared.sources.lock().unwrap();
        sources
            .values()
            .fold(MetricsSnapshot::default(), |acc, s| acc.merge(&s.metrics))
    }

    /// [`merged_snapshot`](Self::merged_snapshot) rendered as
    /// Prometheus text exposition — what a fleet-level scrape serves.
    pub fn render_prometheus(&self) -> String {
        self.merged_snapshot().render_prometheus()
    }

    /// The most recent slow-round captures (source, capture), oldest
    /// first, bounded.
    pub fn slow_rounds(&self) -> Vec<(String, WireSlowRound)> {
        self.shared.slow.lock().unwrap().clone()
    }

    /// Stop accepting, close connection handlers, join all threads.
    /// Accumulated state (counters, per-source totals, slow captures)
    /// stays readable afterwards — [`Collector::shutdown`] is the
    /// shared-reference variant for killing a collector mid-run while
    /// something else still holds it.
    pub fn close(self) {
        self.shutdown();
    }

    /// Stop the collector through a shared reference: refuse new
    /// connections, unblock and join every handler thread. Idempotent;
    /// accessors keep returning the state accumulated before the stop.
    pub fn shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Wake the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        let accept = self.accept_handle.lock().unwrap().take();
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conn_handles.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one exporter connection: verify the magic, then decode and
/// apply frames until EOF, corruption, or shutdown.
fn serve_connection(mut stream: TcpStream, shared: &Shared, stop: &AtomicBool) {
    shared.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut magic_ok = false;
    loop {
        // Parse everything complete in the buffer before reading more.
        loop {
            if !magic_ok {
                if buf.len() < EXPORT_MAGIC.len() {
                    break;
                }
                if buf[..EXPORT_MAGIC.len()] != EXPORT_MAGIC {
                    shared.checksum_failures.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                buf.drain(..EXPORT_MAGIC.len());
                magic_ok = true;
            }
            match decode_frame(&buf) {
                Ok(None) => break,
                Ok(Some((frame, consumed))) => {
                    buf.drain(..consumed);
                    apply_frame(shared, frame);
                }
                Err(_) => {
                    shared.checksum_failures.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        // Check on every pass, not just on timeout: a live exporter
        // pushing faster than READ_TIMEOUT would otherwise keep this
        // handler unjoinable through a shutdown.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

fn apply_frame(shared: &Shared, frame: crate::frame::Frame) {
    shared.frames_received.fetch_add(1, Ordering::Relaxed);
    let mut sources = shared.sources.lock().unwrap();
    let entry = sources.entry(frame.source.clone()).or_default();
    entry.frames += 1;
    match frame.payload {
        FramePayload::Metrics(delta) => {
            entry.metrics = entry.metrics.merge(&delta);
        }
        FramePayload::Spans(spans) => {
            entry.spans += spans.len() as u64;
            shared
                .spans_received
                .fetch_add(spans.len() as u64, Ordering::Relaxed);
        }
        FramePayload::SlowRounds(rounds) => {
            entry.slow_rounds += rounds.len() as u64;
            shared
                .slow_rounds_received
                .fetch_add(rounds.len() as u64, Ordering::Relaxed);
            drop(sources);
            let mut slow = shared.slow.lock().unwrap();
            for r in rounds {
                slow.push((frame.source.clone(), r));
            }
            let excess = slow.len().saturating_sub(SLOW_RETAIN);
            if excess > 0 {
                slow.drain(..excess);
            }
        }
    }
}
