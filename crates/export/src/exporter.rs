//! The push-side: a background thread draining telemetry into framed
//! TCP pushes, built so it can NEVER block or slow the commit path.
//!
//! Isolation from the writer is structural, not best-effort:
//!
//! - The exporter shares nothing with the serving hot path except the
//!   metric handles (relaxed atomics) and the trace ring (per-slot
//!   locks the recorder already takes). Draining means one registry
//!   snapshot and two cursor reads per tick — the same cost as a
//!   `/metrics` scrape.
//! - All socket work happens on the exporter's own thread, behind a
//!   **bounded drop-oldest buffer**: a slow or dead collector fills the
//!   buffer and evicts the oldest frames (counted in
//!   `dyncon_export_frames_dropped_total`), it never applies
//!   backpressure inward.
//! - Reconnects use capped exponential backoff with deterministic
//!   jitter, so a restarting collector is rediscovered quickly without
//!   a thundering herd from a fleet of exporters.

use crate::frame::{encode_frame, Frame, FramePayload, WireSlowRound, WireSpan, EXPORT_MAGIC};
use dyncon_metrics::{Counter, Histogram, MetricsSnapshot, Registry};
use dyncon_primitives::hash64;
use dyncon_trace::TraceRecorder;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::health::HealthState;

const INITIAL_BACKOFF: Duration = Duration::from_millis(10);

/// Tuning for a [`TelemetryExporter`]. All knobs have working defaults.
#[derive(Clone, Debug, Default)]
pub struct ExportConfig {
    interval: Option<Duration>,
    buffer_frames: Option<usize>,
    max_backoff: Option<Duration>,
    source: Option<String>,
    io_timeout: Option<Duration>,
    trace: Option<TraceRecorder>,
    health: Option<HealthState>,
}

impl ExportConfig {
    /// Defaults: 100 ms interval, 256-frame buffer, 2 s max backoff,
    /// source `"dyncon"`, 250 ms connect/write timeout.
    pub fn new() -> Self {
        Self::default()
    }

    /// How often the exporter drains and pushes (default 100 ms).
    pub fn interval(mut self, d: Duration) -> Self {
        self.interval = Some(d);
        self
    }

    /// Drop-oldest buffer capacity in frames (default 256). When the
    /// collector is slow or away, at most this many frames of history
    /// are retained; older ones are dropped and counted.
    pub fn buffer_frames(mut self, frames: usize) -> Self {
        self.buffer_frames = Some(frames.max(1));
        self
    }

    /// Cap on the reconnect backoff (default 2 s; initial is 10 ms,
    /// doubling per failed attempt, with deterministic jitter).
    pub fn max_backoff(mut self, d: Duration) -> Self {
        self.max_backoff = Some(d);
        self
    }

    /// The resource identity stamped on every frame (default
    /// `"dyncon"`). Give each process in a fleet a distinct one; the
    /// collector aggregates per source.
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Connect/write timeout for the push socket (default 250 ms). A
    /// write that cannot finish within it is treated as a dead
    /// connection (frames stay buffered; the stream is re-framed on
    /// reconnect).
    pub fn io_timeout(mut self, d: Duration) -> Self {
        self.io_timeout = Some(d);
        self
    }

    /// Also drain fresh spans and slow-round captures from this
    /// recorder (metrics-only export without it).
    pub fn trace(mut self, recorder: TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Refresh this health engine every tick, so the stall watchdog
    /// runs on the exporter's heartbeat without a dedicated thread.
    pub fn health(mut self, health: HealthState) -> Self {
        self.health = Some(health);
        self
    }
}

struct Resolved {
    interval: Duration,
    buffer_frames: usize,
    max_backoff: Duration,
    source: String,
    io_timeout: Duration,
    trace: Option<TraceRecorder>,
    health: Option<HealthState>,
}

impl Resolved {
    fn from(config: ExportConfig) -> Self {
        Resolved {
            interval: config.interval.unwrap_or(Duration::from_millis(100)),
            buffer_frames: config.buffer_frames.unwrap_or(256),
            max_backoff: config.max_backoff.unwrap_or(Duration::from_secs(2)),
            source: config.source.unwrap_or_else(|| "dyncon".to_string()),
            io_timeout: config.io_timeout.unwrap_or(Duration::from_millis(250)),
            trace: config.trace,
            health: config.health,
        }
    }
}

/// Exporter-side instrumentation, registered on the exported registry
/// itself (so the collector sees the exporter's own health).
struct ExportMetrics {
    frames_total: Arc<Counter>,
    frames_dropped_total: Arc<Counter>,
    reconnects_total: Arc<Counter>,
    bytes_total: Arc<Counter>,
    lag_ns: Arc<Histogram>,
}

impl ExportMetrics {
    fn register(registry: &Registry) -> Self {
        ExportMetrics {
            frames_total: registry.counter(
                "dyncon_export_frames_total",
                "frames",
                "telemetry frames successfully pushed to the collector",
            ),
            frames_dropped_total: registry.counter(
                "dyncon_export_frames_dropped_total",
                "frames",
                "frames evicted from the bounded buffer (collector slow or away)",
            ),
            reconnects_total: registry.counter(
                "dyncon_export_reconnects_total",
                "connects",
                "collector connections established after the first",
            ),
            bytes_total: registry.counter(
                "dyncon_export_bytes_total",
                "bytes",
                "wire bytes successfully pushed",
            ),
            lag_ns: registry.histogram(
                "dyncon_export_lag_ns",
                "ns",
                "frame creation to successful socket write",
            ),
        }
    }
}

/// A frame queued for push: its wire bytes plus when it was created
/// (for the lag histogram).
struct Queued {
    bytes: Vec<u8>,
    created: Instant,
}

/// Handle of a running exporter thread. Stop it with
/// [`TelemetryExporter::close`] (final drain + best-effort flush);
/// dropping without `close` stops it without the final flush wait.
pub struct TelemetryExporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    metrics: ExportMetrics,
}

impl TelemetryExporter {
    /// Start pushing `registry` (and optionally trace data, see
    /// [`ExportConfig::trace`]) to the collector at `addr` ("host:port").
    ///
    /// Never fails and never blocks on the collector: if it is
    /// unreachable the exporter buffers (bounded) and retries with
    /// backoff forever.
    pub fn start(addr: impl Into<String>, registry: Registry, config: ExportConfig) -> Self {
        let addr = addr.into();
        let resolved = Resolved::from(config);
        let metrics = ExportMetrics::register(&registry);
        let thread_metrics = ExportMetrics::register(&registry);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dyncon-export".into())
            .spawn(move || run(addr, registry, resolved, thread_metrics, thread_stop))
            .expect("spawn dyncon export thread");
        TelemetryExporter {
            stop,
            handle: Some(handle),
            metrics,
        }
    }

    /// Frames successfully pushed so far.
    pub fn frames_sent(&self) -> u64 {
        self.metrics.frames_total.get()
    }

    /// Frames evicted from the bounded buffer so far.
    pub fn frames_dropped(&self) -> u64 {
        self.metrics.frames_dropped_total.get()
    }

    /// Collector connections established after the first.
    pub fn reconnects(&self) -> u64 {
        self.metrics.reconnects_total.get()
    }

    /// Stop the exporter: one final drain (so everything recorded
    /// before `close` is framed), one best-effort flush, then join.
    /// Frames that still cannot be delivered are counted dropped —
    /// `close` never hangs on a dead collector.
    pub fn close(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Everything the exporter thread owns.
struct ExporterLoop {
    addr: String,
    registry: Registry,
    config: Resolved,
    metrics: ExportMetrics,
    prev_snapshot: MetricsSnapshot,
    spans_seen: u64,
    slow_seen: u64,
    seq: u64,
    buffer: VecDeque<Queued>,
    conn: Option<TcpStream>,
    connected_once: bool,
    backoff: Duration,
    next_connect_at: Instant,
    attempts: u64,
}

fn run(
    addr: String,
    registry: Registry,
    config: Resolved,
    metrics: ExportMetrics,
    stop: Arc<AtomicBool>,
) {
    let interval = config.interval;
    let mut state = ExporterLoop {
        addr,
        registry,
        config,
        metrics,
        prev_snapshot: MetricsSnapshot::default(),
        spans_seen: 0,
        slow_seen: 0,
        seq: 0,
        buffer: VecDeque::new(),
        conn: None,
        connected_once: false,
        backoff: INITIAL_BACKOFF,
        next_connect_at: Instant::now(),
        attempts: 0,
    };
    while !stop.load(Ordering::SeqCst) {
        // Sleep in small slices so close() latency stays low even with
        // long export intervals.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2).min(interval));
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(health) = &state.config.health {
            health.refresh();
        }
        state.drain();
        state.flush();
    }
    // Final tick: frame everything recorded before close, then one
    // best-effort flush (a fresh connect attempt is allowed, backoff
    // or not — this is the last chance).
    if let Some(health) = &state.config.health {
        health.refresh();
    }
    state.drain();
    state.next_connect_at = Instant::now();
    state.flush();
    // Whatever could not be delivered is dropped, visibly.
    let undelivered = state.buffer.len() as u64;
    if undelivered > 0 {
        state.metrics.frames_dropped_total.add(undelivered);
    }
}

impl ExporterLoop {
    /// Snapshot the registry and the trace cursors into frames.
    fn drain(&mut self) {
        let cur = self.registry.snapshot();
        let delta = cur.delta(&self.prev_snapshot);
        self.prev_snapshot = cur;
        let source = self.config.source.clone();
        self.enqueue(FramePayload::Metrics(delta), &source);
        if let Some(recorder) = self.config.trace.clone() {
            // Fresh spans: everything recorded since the last drain
            // that the ring still retains (the cursor rides the
            // lifetime count; overwritten spans are simply gone — the
            // ring is sized for scrape intervals, same as /trace).
            let recorded = recorder.recorded();
            if recorded > self.spans_seen {
                let retained = recorder.spans();
                let fresh_count = ((recorded - self.spans_seen) as usize).min(retained.len());
                let fresh: Vec<WireSpan> = retained[retained.len() - fresh_count..]
                    .iter()
                    .map(WireSpan::from)
                    .collect();
                self.spans_seen = recorded;
                if !fresh.is_empty() {
                    self.enqueue(FramePayload::Spans(fresh), &source);
                }
            }
            let slow = recorder.slow_round_log();
            if slow.captured > self.slow_seen {
                let fresh_count =
                    ((slow.captured - self.slow_seen) as usize).min(slow.rounds.len());
                let fresh: Vec<WireSlowRound> = slow.rounds[slow.rounds.len() - fresh_count..]
                    .iter()
                    .map(|r| WireSlowRound {
                        round: r.round,
                        wall_ns: r.wall_ns,
                        ops: r.ops,
                        text: r.render_text(),
                    })
                    .collect();
                self.slow_seen = slow.captured;
                self.enqueue(FramePayload::SlowRounds(fresh), &source);
            }
        }
    }

    fn enqueue(&mut self, payload: FramePayload, source: &str) {
        let frame = Frame {
            seq: self.seq,
            source: source.to_string(),
            payload,
        };
        self.seq += 1;
        if self.buffer.len() >= self.config.buffer_frames {
            self.buffer.pop_front();
            self.metrics.frames_dropped_total.inc();
        }
        self.buffer.push_back(Queued {
            bytes: encode_frame(&frame),
            created: Instant::now(),
        });
    }

    /// Push buffered frames; on any socket trouble, drop the connection
    /// and schedule a backoff reconnect. Partial writes would tear the
    /// framing, so a timed-out write also means reconnect (the stream
    /// restarts with a fresh magic; the collector treats connections
    /// independently).
    fn flush(&mut self) {
        if self.conn.is_none() {
            if self.buffer.is_empty() || Instant::now() < self.next_connect_at {
                return;
            }
            match self.connect() {
                Some(stream) => {
                    if self.connected_once {
                        self.metrics.reconnects_total.inc();
                    }
                    self.connected_once = true;
                    self.backoff = INITIAL_BACKOFF;
                    self.conn = Some(stream);
                }
                None => {
                    self.schedule_backoff();
                    return;
                }
            }
        }
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        while let Some(front) = self.buffer.front() {
            match conn.write_all(&front.bytes) {
                Ok(()) => {
                    self.metrics.frames_total.inc();
                    self.metrics.bytes_total.add(front.bytes.len() as u64);
                    self.metrics
                        .lag_ns
                        .record(front.created.elapsed().as_nanos() as u64);
                    self.buffer.pop_front();
                }
                Err(_) => {
                    self.conn = None;
                    self.schedule_backoff();
                    return;
                }
            }
        }
        let _ = conn.flush();
    }

    /// One connection attempt: resolve, connect with timeout, write the
    /// stream magic. Sequence numbers keep ascending across
    /// connections; the collector only requires per-connection order.
    fn connect(&mut self) -> Option<TcpStream> {
        self.attempts += 1;
        let addr = self.addr.to_socket_addrs().ok()?.next()?;
        let mut stream = TcpStream::connect_timeout(&addr, self.config.io_timeout).ok()?;
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(Some(self.config.io_timeout)).ok();
        stream.write_all(&EXPORT_MAGIC).ok()?;
        Some(stream)
    }

    fn schedule_backoff(&mut self) {
        // Deterministic jitter (hash of the attempt counter): spread a
        // fleet's retries over [backoff/2, backoff).
        let base = self.backoff.as_nanos() as u64;
        let jittered = base / 2 + hash64(self.attempts) % (base / 2).max(1);
        self.next_connect_at = Instant::now() + Duration::from_nanos(jittered);
        self.backoff = (self.backoff * 2).min(self.config.max_backoff);
    }
}
