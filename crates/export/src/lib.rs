//! # dyncon-export
//!
//! Push-mode telemetry export and the health engine for the dyncon
//! serving stack — the always-on measurement plane the pull-only
//! `/metrics` endpoint cannot provide for a fleet (NAT'd shards,
//! central trend stores). Std-only and dependency-free, like every
//! crate in the workspace.
//!
//! Three pieces:
//!
//! - [`TelemetryExporter`] — a background thread that, on a
//!   configurable interval, drains **metric snapshot deltas**
//!   ([`dyncon_metrics::MetricsSnapshot::delta`]), fresh trace spans
//!   and slow-round captures into OTLP-shaped, checksummed,
//!   length-framed binary frames (the `DCEXP001` wire format in
//!   [`frame`], the same framing discipline as the durable layer's
//!   `DCWAL001` log) and pushes them over a plain `TcpStream`. A
//!   bounded drop-oldest buffer plus reconnect-with-jittered-backoff
//!   means a slow or dead collector costs dropped frames (counted in
//!   `dyncon_export_frames_dropped_total`) — never a blocked or
//!   slowed commit path.
//! - [`Collector`] — the sink: accepts frames from any number of
//!   exporters, validates every checksum, accumulates per source, and
//!   re-renders the merged fleet view as Prometheus text. Ships as a
//!   library plus the `dyncon-collector` binary.
//! - [`HealthState`] — writer-stall watchdog (last-commit heartbeat
//!   against a configurable threshold; trips `dyncon_server_writer_stalled`
//!   and flips readiness), WAL-error and backpressure-saturation
//!   signals, and 1 m / 5 m rolling-window SLO burn-rate tracking over
//!   the round-latency observations. Surfaced as metrics and as the
//!   `/healthz` + `/readyz` routes on
//!   [`dyncon_trace::serve_telemetry_with_health`] (via
//!   [`HealthState::routes`]).
//!
//! ## Observational only, like everything before it
//!
//! The exporter and the health engine read the same snapshots and
//! cursors a scraper reads; nothing feeds back into admission, round
//! formation, or results. `tests/determinism.rs` proves rounds stay
//! byte-identical with an exporter attached and a collector receiving
//! frames mid-run — and that killing the collector mid-run never
//! stalls, fails, or reorders a commit round.
//!
//! ## Example
//!
//! ```
//! use dyncon_export::{Collector, ExportConfig, TelemetryExporter};
//! use dyncon_metrics::Registry;
//! use std::time::Duration;
//!
//! let collector = Collector::bind("127.0.0.1:0").unwrap();
//! let registry = Registry::new();
//! let requests = registry.counter("demo_requests_total", "requests", "demo");
//! let exporter = TelemetryExporter::start(
//!     collector.local_addr().to_string(),
//!     registry,
//!     ExportConfig::new()
//!         .interval(Duration::from_millis(5))
//!         .source("demo-proc"),
//! );
//! requests.add(3);
//! // … the exporter pushes deltas in the background …
//! exporter.close(); // final drain + flush
//! while collector.frames_received() == 0 {
//!     std::thread::sleep(Duration::from_millis(1));
//! }
//! let merged = collector.merged_snapshot();
//! assert_eq!(
//!     merged.get("demo_requests_total").unwrap().value.as_counter(),
//!     Some(3)
//! );
//! collector.close();
//! ```

mod collector;
mod exporter;
pub mod frame;
mod health;

pub use collector::Collector;
pub use exporter::{ExportConfig, TelemetryExporter};
pub use frame::{Frame, FramePayload, WireSlowRound, WireSpan};
pub use health::{HealthConfig, HealthReport, HealthState, HealthWatchdog};
