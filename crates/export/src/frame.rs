//! The checksummed, length-framed binary wire format frames travel in.
//!
//! ## Wire format
//!
//! A connection is a magic preamble followed by frames, in the same
//! framing discipline as the durable layer's `DCWAL001` log (header
//! checksum validated *before* the length is trusted, payload checksum
//! over the body):
//!
//! ```text
//! stream := magic "DCEXP001" (8 bytes, once per connection)
//!           frame*
//! frame  := seq          u64 LE   -- per-connection ascending frame id
//!           len          u32 LE   -- payload byte length
//!           header_chk   u64 LE   -- over (seq, len)
//!           payload_chk  u64 LE   -- over (seq, payload)
//!           payload      len bytes
//! ```
//!
//! The payload is OTLP-shaped: a resource identity (the `source`
//! string, standing in for OTLP resource attributes) followed by one
//! batch of one signal kind — a metrics *delta* (what changed since the
//! previous frame, see [`dyncon_metrics::MetricsSnapshot::delta`]),
//! trace spans, or slow-round captures:
//!
//! ```text
//! payload := kind   u8          -- 1 metrics, 2 spans, 3 slow rounds
//!            source str16       -- exporting process identity
//!            body               -- per kind, see encode_* below
//! str16   := len u16 LE, UTF-8 bytes
//! str32   := len u32 LE, UTF-8 bytes
//! ```

use dyncon_metrics::{HistogramSnapshot, MetricSnapshot, MetricValue, MetricsSnapshot, BUCKETS};
use dyncon_primitives::hash64;
use dyncon_trace::Span;

/// Connection preamble: protocol + version, sent once per connection.
pub const EXPORT_MAGIC: [u8; 8] = *b"DCEXP001";

/// seq (8) + len (4) + header checksum (8) + payload checksum (8).
pub const FRAME_HEADER: usize = 28;

/// Sanity bound on a decoded payload length: anything larger is treated
/// as corruption, not an allocation request.
const MAX_PAYLOAD: u32 = 16 << 20;

/// Payload checksum: a seeded SplitMix64 chain over the frame id and
/// payload words — the same construction (and guarantees) as the WAL's
/// record checksum. Not cryptographic; it catches truncation, reorder
/// and bit rot on the wire.
fn payload_checksum(seq: u64, payload: &[u8]) -> u64 {
    let mut acc = hash64(seq ^ (payload.len() as u64).rotate_left(32));
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = hash64(acc ^ u64::from_le_bytes(word));
    }
    acc
}

/// Header checksum over `(seq, len)`: validated BEFORE `len` is used
/// for framing, so a corrupted length can never desynchronise the
/// stream silently.
fn header_checksum(seq: u64, len: u32) -> u64 {
    hash64(hash64(seq ^ u64::from_le_bytes(EXPORT_MAGIC)) ^ len as u64)
}

/// A span as it travels on the wire. The stage is carried by its stable
/// snake_case name (`Stage::name`), so the collector can aggregate
/// without depending on the enum's layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSpan {
    /// Commit round (or resolved version for reader-path stages).
    pub round: u64,
    /// Stable stage name (`coalesce_wait`, `apply`, …).
    pub stage: String,
    /// Start offset from the recorder's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Operations the stage processed.
    pub ops: u64,
    /// Shard index for per-shard stages.
    pub shard: Option<u32>,
}

impl From<&Span> for WireSpan {
    fn from(s: &Span) -> Self {
        WireSpan {
            round: s.round,
            stage: s.stage.name().to_string(),
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            ops: s.ops,
            shard: s.shard,
        }
    }
}

/// One slow-round capture on the wire: identity plus the rendered stage
/// table (the collector stores it for humans, it does not re-aggregate
/// stage rows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSlowRound {
    /// The committed round.
    pub round: u64,
    /// Wall time of the round, nanoseconds.
    pub wall_ns: u64,
    /// Operations the round committed.
    pub ops: u64,
    /// `RoundTrace::render_text` of the capture.
    pub text: String,
}

/// What one frame carries.
#[derive(Clone, Debug, PartialEq)]
pub enum FramePayload {
    /// A metrics **delta** since the exporter's previous metrics frame
    /// (the first frame of a connection carries absolute values — a
    /// delta against the empty snapshot).
    Metrics(MetricsSnapshot),
    /// Trace spans recorded since the previous spans frame.
    Spans(Vec<WireSpan>),
    /// Slow rounds captured since the previous slow-rounds frame.
    SlowRounds(Vec<WireSlowRound>),
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Per-connection ascending frame id.
    pub seq: u64,
    /// The exporting process identity (OTLP resource stand-in).
    pub source: String,
    /// The signal batch.
    pub payload: FramePayload,
}

// ---- encoding -----------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    let bytes = &s.as_bytes()[..s.len().min(u16::MAX as usize)];
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode_metrics(out: &mut Vec<u8>, snap: &MetricsSnapshot) {
    put_u32(out, snap.metrics.len() as u32);
    for m in &snap.metrics {
        put_str16(out, &m.name);
        put_str16(out, &m.unit);
        put_str16(out, &m.help);
        match &m.value {
            MetricValue::Counter(v) => {
                out.push(0);
                put_u64(out, *v);
            }
            MetricValue::Gauge { value, max } => {
                out.push(1);
                put_u64(out, *value as u64);
                put_u64(out, *max as u64);
            }
            MetricValue::Histogram(h) => {
                out.push(2);
                put_u64(out, h.count);
                put_u64(out, h.sum);
                let nonzero: Vec<(usize, u64)> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(i, &c)| (i, c))
                    .collect();
                put_u16(out, nonzero.len() as u16);
                for (i, c) in nonzero {
                    out.push(i as u8);
                    put_u64(out, c);
                }
            }
        }
    }
}

fn encode_spans(out: &mut Vec<u8>, spans: &[WireSpan]) {
    put_u32(out, spans.len() as u32);
    for s in spans {
        put_u64(out, s.round);
        put_str16(out, &s.stage);
        put_u64(out, s.start_ns);
        put_u64(out, s.dur_ns);
        put_u64(out, s.ops);
        match s.shard {
            Some(idx) => {
                out.push(1);
                put_u32(out, idx);
            }
            None => out.push(0),
        }
    }
}

fn encode_slow(out: &mut Vec<u8>, rounds: &[WireSlowRound]) {
    put_u32(out, rounds.len() as u32);
    for r in rounds {
        put_u64(out, r.round);
        put_u64(out, r.wall_ns);
        put_u64(out, r.ops);
        put_str32(out, &r.text);
    }
}

/// Encode one frame into its full wire representation (header +
/// payload, without the connection magic).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match &frame.payload {
        FramePayload::Metrics(snap) => {
            payload.push(1);
            put_str16(&mut payload, &frame.source);
            encode_metrics(&mut payload, snap);
        }
        FramePayload::Spans(spans) => {
            payload.push(2);
            put_str16(&mut payload, &frame.source);
            encode_spans(&mut payload, spans);
        }
        FramePayload::SlowRounds(rounds) => {
            payload.push(3);
            put_str16(&mut payload, &frame.source);
            encode_slow(&mut payload, rounds);
        }
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u64(&mut out, frame.seq);
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, header_checksum(frame.seq, payload.len() as u32));
    put_u64(&mut out, payload_checksum(frame.seq, &payload));
    out.extend_from_slice(&payload);
    out
}

// ---- decoding -----------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err("payload truncated".to_string());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    fn str32(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }
}

fn decode_metrics(c: &mut Cursor) -> Result<MetricsSnapshot, String> {
    let count = c.u32()? as usize;
    let mut metrics = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let name = c.str16()?;
        let unit = c.str16()?;
        let help = c.str16()?;
        let value = match c.u8()? {
            0 => MetricValue::Counter(c.u64()?),
            1 => MetricValue::Gauge {
                value: c.u64()? as i64,
                max: c.u64()? as i64,
            },
            2 => {
                let count = c.u64()?;
                let sum = c.u64()?;
                let nonzero = c.u16()? as usize;
                let mut buckets = vec![0u64; BUCKETS];
                for _ in 0..nonzero {
                    let idx = c.u8()? as usize;
                    if idx >= BUCKETS {
                        return Err(format!("bucket index {idx} out of range"));
                    }
                    buckets[idx] = c.u64()?;
                }
                MetricValue::Histogram(HistogramSnapshot {
                    buckets,
                    count,
                    sum,
                })
            }
            tag => return Err(format!("unknown metric tag {tag}")),
        };
        metrics.push(MetricSnapshot {
            name,
            unit,
            help,
            value,
        });
    }
    // The wire order is the snapshot's (sorted) order, but re-sorting is
    // cheap insurance: `MetricsSnapshot::get`/`merge` require it.
    metrics.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(MetricsSnapshot { metrics })
}

fn decode_spans(c: &mut Cursor) -> Result<Vec<WireSpan>, String> {
    let count = c.u32()? as usize;
    let mut spans = Vec::with_capacity(count.min(65536));
    for _ in 0..count {
        let round = c.u64()?;
        let stage = c.str16()?;
        let start_ns = c.u64()?;
        let dur_ns = c.u64()?;
        let ops = c.u64()?;
        let shard = match c.u8()? {
            0 => None,
            1 => Some(c.u32()?),
            tag => return Err(format!("unknown shard tag {tag}")),
        };
        spans.push(WireSpan {
            round,
            stage,
            start_ns,
            dur_ns,
            ops,
            shard,
        });
    }
    Ok(spans)
}

fn decode_slow(c: &mut Cursor) -> Result<Vec<WireSlowRound>, String> {
    let count = c.u32()? as usize;
    let mut rounds = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        rounds.push(WireSlowRound {
            round: c.u64()?,
            wall_ns: c.u64()?,
            ops: c.u64()?,
            text: c.str32()?,
        });
    }
    Ok(rounds)
}

/// Try to decode one frame from the front of `buf`.
///
/// - `Ok(None)` — `buf` holds a valid prefix but not a whole frame yet;
///   read more bytes and retry.
/// - `Ok(Some((frame, consumed)))` — one frame decoded; drop `consumed`
///   bytes from the front of `buf`.
/// - `Err(reason)` — the stream is corrupt at the front of `buf`
///   (checksum mismatch, bad tag, truncated payload inside a verified
///   length). Byte streams cannot be resynchronised safely: drop the
///   connection.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, String> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let seq = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    let len = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let header_chk = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let payload_chk = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    if header_checksum(seq, len) != header_chk {
        return Err("header checksum mismatch".to_string());
    }
    if len > MAX_PAYLOAD {
        return Err(format!("payload length {len} over bound"));
    }
    let total = FRAME_HEADER + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[FRAME_HEADER..total];
    if payload_checksum(seq, payload) != payload_chk {
        return Err("payload checksum mismatch".to_string());
    }
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let kind = c.u8()?;
    let source = c.str16()?;
    let payload = match kind {
        1 => FramePayload::Metrics(decode_metrics(&mut c)?),
        2 => FramePayload::Spans(decode_spans(&mut c)?),
        3 => FramePayload::SlowRounds(decode_slow(&mut c)?),
        tag => return Err(format!("unknown frame kind {tag}")),
    };
    Ok(Some((
        Frame {
            seq,
            source,
            payload,
        },
        total,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncon_metrics::Registry;

    fn sample_metrics() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("c_total", "ops", "a counter").add(7);
        r.gauge("g_depth", "requests", "a gauge").set(-3);
        let h = r.histogram("h_ns", "ns", "a histogram");
        h.record(0);
        h.record(5);
        h.record(1 << 40);
        r.snapshot()
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame {
                seq: 0,
                source: "proc-a".to_string(),
                payload: FramePayload::Metrics(sample_metrics()),
            },
            Frame {
                seq: 1,
                source: "proc-a".to_string(),
                payload: FramePayload::Spans(vec![
                    WireSpan {
                        round: 4,
                        stage: "apply".to_string(),
                        start_ns: 10,
                        dur_ns: 250,
                        ops: 12,
                        shard: None,
                    },
                    WireSpan {
                        round: 4,
                        stage: "shard_round".to_string(),
                        start_ns: 20,
                        dur_ns: 90,
                        ops: 6,
                        shard: Some(2),
                    },
                ]),
            },
            Frame {
                seq: 2,
                source: "proc-a".to_string(),
                payload: FramePayload::SlowRounds(vec![WireSlowRound {
                    round: 9,
                    wall_ns: 12_000_000,
                    ops: 64,
                    text: "round 9: slow\n".to_string(),
                }]),
            },
        ];
        // Concatenated stream decode: frames arrive back to back.
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut decoded = Vec::new();
        let mut off = 0usize;
        while let Some((frame, consumed)) = decode_frame(&wire[off..]).unwrap() {
            decoded.push(frame);
            off += consumed;
        }
        assert_eq!(off, wire.len());
        assert_eq!(decoded, frames);
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let wire = encode_frame(&Frame {
            seq: 3,
            source: "p".to_string(),
            payload: FramePayload::Metrics(sample_metrics()),
        });
        for cut in [0, 1, FRAME_HEADER - 1, FRAME_HEADER, wire.len() - 1] {
            assert_eq!(decode_frame(&wire[..cut]).unwrap(), None, "cut at {cut}");
        }
        assert!(decode_frame(&wire).unwrap().is_some());
    }

    #[test]
    fn corruption_is_detected() {
        let wire = encode_frame(&Frame {
            seq: 5,
            source: "p".to_string(),
            payload: FramePayload::Metrics(sample_metrics()),
        });
        // A flipped bit anywhere — header or payload — fails a checksum.
        for pos in [0usize, 9, 13, 21, FRAME_HEADER, wire.len() - 1] {
            let mut bad = wire.clone();
            bad[pos] ^= 0x40;
            assert!(decode_frame(&bad).is_err(), "flip at {pos} undetected");
        }
    }

    #[test]
    fn histogram_sparse_encoding_preserves_buckets() {
        let r = Registry::new();
        let h = r.histogram("h_ns", "ns", "");
        for v in [0u64, 1, 1, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let snap = r.snapshot();
        let wire = encode_frame(&Frame {
            seq: 0,
            source: "p".to_string(),
            payload: FramePayload::Metrics(snap.clone()),
        });
        let (frame, _) = decode_frame(&wire).unwrap().unwrap();
        match frame.payload {
            FramePayload::Metrics(got) => assert_eq!(got, snap),
            other => panic!("wrong payload {other:?}"),
        }
    }
}
