//! The fleet-aggregation sink as a process: accept exporter frames on
//! one port, serve the merged Prometheus text on stdout on demand.
//!
//! ```text
//! dyncon-collector [LISTEN_ADDR] [--once SECONDS]
//! ```
//!
//! With `--once N` the collector runs for N seconds, prints the merged
//! exposition and summary counters, and exits — the shape CI smoke
//! runs and scripted experiments want. Without it, it runs until
//! SIGINT/EOF and prints the merged view every 10 s.

use dyncon_export::Collector;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut listen = "127.0.0.1:4317".to_string();
    let mut once: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => {
                let secs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--once needs a positive integer of seconds");
                once = Some(secs);
            }
            "--help" | "-h" => {
                eprintln!("usage: dyncon-collector [LISTEN_ADDR] [--once SECONDS]");
                return;
            }
            other => listen = other.to_string(),
        }
    }
    let collector = Collector::bind(listen.as_str())
        .unwrap_or_else(|e| panic!("dyncon-collector: cannot bind {listen}: {e}"));
    eprintln!("dyncon-collector: listening on {}", collector.local_addr());
    let report = |collector: &Collector| {
        println!("{}", collector.render_prometheus());
        eprintln!(
            "dyncon-collector: {} source(s), {} frame(s), {} span(s), {} slow round(s), {} checksum failure(s)",
            collector.sources().len(),
            collector.frames_received(),
            collector.spans_received(),
            collector.slow_rounds_received(),
            collector.checksum_failures(),
        );
    };
    match once {
        Some(secs) => {
            std::thread::sleep(Duration::from_secs(secs));
            report(&collector);
            collector.close();
        }
        None => loop {
            let tick = Instant::now();
            std::thread::sleep(Duration::from_secs(10));
            report(&collector);
            // A wedged stdout (closed pipe) is our exit signal too.
            let _ = tick;
        },
    }
}
