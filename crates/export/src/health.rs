//! The health engine: writer-stall watchdog, WAL-error and
//! backpressure-saturation signals, and rolling-window SLO burn-rate
//! tracking — surfaced as metrics and as `/healthz` + `/readyz` probes.
//!
//! [`HealthState`] is a cheap clonable handle the serving layers feed
//! from their hot paths (`note_round_start`, `note_round_commit`,
//! `set_pending`, …: a few atomics and one tiny uncontended lock for
//! the per-second rings). Evaluation is pulled, not pushed:
//! [`HealthState::refresh`] recomputes readiness from the raw signals
//! and is invoked by the probes themselves, by the exporter's tick, or
//! by a dedicated [`HealthWatchdog`] thread for deployments where
//! nobody polls.
//!
//! Like metrics and tracing, health is **observational only**: nothing
//! here feeds back into admission or round formation, so attaching a
//! `HealthState` leaves deterministic rounds byte-identical.

use dyncon_metrics::{Counter, Gauge, Registry};
use dyncon_trace::HealthRoutes;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// 5-minute window plus one slot so the in-progress second never
/// evicts the oldest complete one.
const SLO_SLOTS: usize = 301;

/// How many trailing seconds of backpressure rejects count as
/// "saturated" (each of them must have seen at least one reject).
const SATURATION_SECS: u64 = 3;

/// Tuning for the health engine. All knobs have working defaults.
#[derive(Clone, Debug)]
pub struct HealthConfig {
    pub(crate) stall_threshold: Duration,
    pub(crate) round_slo: Duration,
    pub(crate) slo_target_permille: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stall_threshold: Duration::from_secs(2),
            round_slo: Duration::from_millis(10),
            slo_target_permille: 990,
        }
    }
}

impl HealthConfig {
    /// Defaults: 2 s stall threshold, 10 ms round SLO, 99.0% target.
    pub fn new() -> Self {
        Self::default()
    }

    /// How long the writer may sit on pending work without committing
    /// before readiness flips and `dyncon_server_writer_stalled` bumps.
    pub fn stall_threshold(mut self, d: Duration) -> Self {
        self.stall_threshold = d;
        self
    }

    /// The per-round wall-time objective the SLO windows grade against.
    pub fn round_slo(mut self, d: Duration) -> Self {
        self.round_slo = d;
        self
    }

    /// The SLO target in permille of rounds that must meet
    /// [`round_slo`](Self::round_slo) (990 = 99.0%). The error budget is
    /// the remainder; burn rate 1000 (permille) means consuming it
    /// exactly as fast as it accrues.
    pub fn slo_target_permille(mut self, p: u32) -> Self {
        assert!(p < 1000, "a 100% target leaves no error budget");
        self.slo_target_permille = p;
        self
    }
}

/// One second of round-latency observations.
#[derive(Clone, Copy, Default)]
struct SloSlot {
    sec: u64,
    total: u32,
    slow: u32,
}

/// One second of backpressure rejects.
#[derive(Clone, Copy, Default)]
struct RejectSlot {
    sec: u64,
    rejects: u32,
}

/// Metric handles, bound once via [`HealthState::with_metrics`].
struct HealthMetrics {
    writer_stalled: Arc<Counter>,
    ready: Arc<Gauge>,
    burn_1m: Arc<Gauge>,
    burn_5m: Arc<Gauge>,
    backpressure_saturated: Arc<Gauge>,
}

struct HealthInner {
    config: HealthConfig,
    t0: Instant,
    /// Milliseconds since `t0` of the last writer progress (round taken
    /// or committed). Starts at 0: a server that never commits but has
    /// work queued stalls `stall_threshold` after birth.
    last_progress_ms: AtomicU64,
    /// A round is currently between `note_round_start` and its commit.
    inflight: AtomicBool,
    /// Current admission queue depth (what `set_pending` last said).
    pending: AtomicI64,
    wal_errors: AtomicU64,
    reads_served: AtomicU64,
    rounds_seen: AtomicU64,
    /// Edge detector: currently considered stalled.
    stalled: AtomicBool,
    ready: AtomicBool,
    slo: Mutex<[SloSlot; SLO_SLOTS]>,
    rejects: Mutex<[RejectSlot; SATURATION_SECS as usize + 1]>,
    metrics: OnceLock<HealthMetrics>,
}

/// A point-in-time health verdict (what [`HealthState::refresh`]
/// computed last).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReport {
    /// Overall readiness: no stall, no WAL errors, not saturated.
    pub ready: bool,
    /// The writer currently looks stalled (pending work, no progress
    /// within the stall threshold).
    pub writer_stalled: bool,
    /// WAL append/abort errors seen (latches unreadiness — a durable
    /// server with a broken log must be drained, not routed to).
    pub wal_errors: u64,
    /// Backpressure rejects in each of the last `SATURATION_SECS` (3)
    /// seconds: admission is saturated.
    pub backpressure_saturated: bool,
    /// SLO burn rate over the last minute, in permille (1000 = burning
    /// the error budget exactly as fast as it accrues).
    pub slo_burn_1m_permille: u64,
    /// SLO burn rate over the last five minutes, in permille.
    pub slo_burn_5m_permille: u64,
    /// Rounds the engine has graded.
    pub rounds_seen: u64,
    /// Reads the reader pool has reported.
    pub reads_served: u64,
}

/// The clonable health handle. See the module docs for the model.
#[derive(Clone)]
pub struct HealthState {
    inner: Arc<HealthInner>,
}

impl Default for HealthState {
    fn default() -> Self {
        Self::new(HealthConfig::default())
    }
}

impl std::fmt::Debug for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthState")
            .field("config", &self.inner.config)
            .field("ready", &self.inner.ready.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl HealthState {
    /// A fresh, ready health engine with the given tuning.
    pub fn new(config: HealthConfig) -> Self {
        HealthState {
            inner: Arc::new(HealthInner {
                config,
                t0: Instant::now(),
                last_progress_ms: AtomicU64::new(0),
                inflight: AtomicBool::new(false),
                pending: AtomicI64::new(0),
                wal_errors: AtomicU64::new(0),
                reads_served: AtomicU64::new(0),
                rounds_seen: AtomicU64::new(0),
                stalled: AtomicBool::new(false),
                ready: AtomicBool::new(true),
                slo: Mutex::new([SloSlot::default(); SLO_SLOTS]),
                rejects: Mutex::new([RejectSlot::default(); SATURATION_SECS as usize + 1]),
                metrics: OnceLock::new(),
            }),
        }
    }

    /// Register the health metrics on `registry` so scrapes and the
    /// exporter carry them: `dyncon_server_writer_stalled` (stall
    /// onsets), `dyncon_health_ready` (0/1), burn-rate gauges in
    /// permille and a saturation gauge. Idempotent per registry names;
    /// the first binding wins.
    pub fn with_metrics(self, registry: &Registry) -> Self {
        let _ = self.inner.metrics.set(HealthMetrics {
            writer_stalled: registry.counter(
                "dyncon_server_writer_stalled",
                "stalls",
                "times the writer stall watchdog tripped",
            ),
            ready: registry.gauge(
                "dyncon_health_ready",
                "",
                "1 when /readyz would answer 200, else 0",
            ),
            burn_1m: registry.gauge(
                "dyncon_health_slo_burn_1m_permille",
                "permille",
                "round-latency SLO burn rate over the last minute (1000 = at budget)",
            ),
            burn_5m: registry.gauge(
                "dyncon_health_slo_burn_5m_permille",
                "permille",
                "round-latency SLO burn rate over the last five minutes (1000 = at budget)",
            ),
            backpressure_saturated: registry.gauge(
                "dyncon_health_backpressure_saturated",
                "",
                "1 while every recent second saw admission rejects",
            ),
        });
        self.refresh();
        self
    }

    fn now_ms(&self) -> u64 {
        self.inner.t0.elapsed().as_millis() as u64
    }

    fn now_sec(&self) -> u64 {
        self.inner.t0.elapsed().as_secs()
    }

    /// The writer took a round (work is in flight — taking it counts as
    /// progress for the stall clock).
    pub fn note_round_start(&self) {
        self.inner
            .last_progress_ms
            .store(self.now_ms(), Ordering::Relaxed);
        self.inner.inflight.store(true, Ordering::Relaxed);
    }

    /// The writer committed a round that took `wall` end to end. Feeds
    /// the stall clock and the SLO windows.
    pub fn note_round_commit(&self, wall: Duration) {
        self.inner
            .last_progress_ms
            .store(self.now_ms(), Ordering::Relaxed);
        self.inner.inflight.store(false, Ordering::Relaxed);
        self.inner.rounds_seen.fetch_add(1, Ordering::Relaxed);
        let sec = self.now_sec();
        let slow = wall > self.inner.config.round_slo;
        let mut slots = self.inner.slo.lock().unwrap();
        let slot = &mut slots[(sec % SLO_SLOTS as u64) as usize];
        if slot.sec != sec {
            *slot = SloSlot {
                sec,
                total: 0,
                slow: 0,
            };
        }
        slot.total = slot.total.saturating_add(1);
        if slow {
            slot.slow = slot.slow.saturating_add(1);
        }
    }

    /// Current admission queue depth (drives the "is there work the
    /// writer should be making progress on?" half of stall detection).
    pub fn set_pending(&self, pending: i64) {
        self.inner.pending.store(pending, Ordering::Relaxed);
    }

    /// Admission rejected a submission under backpressure.
    pub fn note_backpressure_reject(&self) {
        let sec = self.now_sec();
        let mut slots = self.inner.rejects.lock().unwrap();
        let len = slots.len() as u64;
        let slot = &mut slots[(sec % len) as usize];
        if slot.sec != sec {
            *slot = RejectSlot { sec, rejects: 0 };
        }
        slot.rejects = slot.rejects.saturating_add(1);
    }

    /// The durable layer failed a WAL append/abort. Latches
    /// unreadiness: a serving process whose log is broken should be
    /// drained, and the `DurableServer` is about to fail pending
    /// submissions anyway.
    pub fn note_wal_error(&self) {
        self.inner.wal_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The reader pool served a read (liveness signal for the read
    /// plane; surfaced in the probe bodies and [`HealthReport`]).
    pub fn note_read_served(&self) {
        self.inner.reads_served.fetch_add(1, Ordering::Relaxed);
    }

    fn burn_permille(&self, window_secs: u64, now: u64) -> u64 {
        let slots = self.inner.slo.lock().unwrap();
        let (mut total, mut slow) = (0u64, 0u64);
        for slot in slots.iter() {
            if slot.sec + window_secs > now && slot.sec <= now && slot.total > 0 {
                total += slot.total as u64;
                slow += slot.slow as u64;
            }
        }
        if total == 0 {
            return 0;
        }
        let budget_permille = 1000 - self.inner.config.slo_target_permille as u64;
        // burn = (slow/total) / (budget/1000), in permille.
        (slow * 1000 * 1000) / (total * budget_permille)
    }

    fn saturated(&self, now: u64) -> bool {
        let slots = self.inner.rejects.lock().unwrap();
        (0..SATURATION_SECS)
            .all(|back| now >= back && slots.iter().any(|s| s.sec == now - back && s.rejects > 0))
    }

    /// Re-evaluate every signal and publish the verdict (readiness
    /// flag, bound metrics). Called by the probes, the exporter tick,
    /// and the [`HealthWatchdog`]; cheap enough to call per scrape.
    pub fn refresh(&self) -> HealthReport {
        let now_ms = self.now_ms();
        let now_sec = self.now_sec();
        let has_work = self.inner.inflight.load(Ordering::Relaxed)
            || self.inner.pending.load(Ordering::Relaxed) > 0;
        let idle_ms = now_ms.saturating_sub(self.inner.last_progress_ms.load(Ordering::Relaxed));
        let stalled_now =
            has_work && idle_ms > self.inner.config.stall_threshold.as_millis() as u64;
        let was_stalled = self.inner.stalled.swap(stalled_now, Ordering::Relaxed);
        let wal_errors = self.inner.wal_errors.load(Ordering::Relaxed);
        let saturated = self.saturated(now_sec);
        let ready = !stalled_now && wal_errors == 0 && !saturated;
        self.inner.ready.store(ready, Ordering::Relaxed);
        let burn_1m = self.burn_permille(60, now_sec);
        let burn_5m = self.burn_permille(300, now_sec);
        if let Some(m) = self.inner.metrics.get() {
            if stalled_now && !was_stalled {
                m.writer_stalled.inc();
            }
            m.ready.set(ready as i64);
            m.burn_1m.set(burn_1m as i64);
            m.burn_5m.set(burn_5m as i64);
            m.backpressure_saturated.set(saturated as i64);
        }
        HealthReport {
            ready,
            writer_stalled: stalled_now,
            wal_errors,
            backpressure_saturated: saturated,
            slo_burn_1m_permille: burn_1m,
            slo_burn_5m_permille: burn_5m,
            rounds_seen: self.inner.rounds_seen.load(Ordering::Relaxed),
            reads_served: self.inner.reads_served.load(Ordering::Relaxed),
        }
    }

    /// Readiness right now (refreshes first).
    pub fn is_ready(&self) -> bool {
        self.refresh().ready
    }

    /// Build the `/healthz` + `/readyz` probes for
    /// [`dyncon_trace::serve_telemetry_with_health`]. Liveness is
    /// unconditional (the process is serving the probe); readiness is
    /// the full verdict with a reason body on 503.
    pub fn routes(&self) -> HealthRoutes {
        let live = self.clone();
        let ready = self.clone();
        HealthRoutes {
            healthz: Arc::new(move || {
                let r = live.refresh();
                (
                    true,
                    format!(
                        "ok: {} rounds, {} reads served\n",
                        r.rounds_seen, r.reads_served
                    ),
                )
            }),
            readyz: Arc::new(move || {
                let r = ready.refresh();
                if r.ready {
                    (
                        true,
                        format!(
                            "ready: burn 1m {}‰, 5m {}‰\n",
                            r.slo_burn_1m_permille, r.slo_burn_5m_permille
                        ),
                    )
                } else {
                    let mut reasons = Vec::new();
                    if r.writer_stalled {
                        reasons.push("writer stalled".to_string());
                    }
                    if r.wal_errors > 0 {
                        reasons.push(format!("{} wal error(s)", r.wal_errors));
                    }
                    if r.backpressure_saturated {
                        reasons.push("backpressure saturated".to_string());
                    }
                    (false, format!("not ready: {}\n", reasons.join(", ")))
                }
            }),
        }
    }

    /// Spawn a thread that calls [`refresh`](Self::refresh) every
    /// `interval`, so stalls flip readiness (and bump the counter) even
    /// when nobody is scraping or probing. Stop it with
    /// [`HealthWatchdog::close`] (drop does too).
    pub fn spawn_watchdog(&self, interval: Duration) -> HealthWatchdog {
        let state = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dyncon-health-watchdog".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    state.refresh();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn dyncon health watchdog");
        HealthWatchdog {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle of a running background refresh thread
/// ([`HealthState::spawn_watchdog`]).
pub struct HealthWatchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HealthWatchdog {
    /// Stop and join the watchdog thread. Idempotent.
    pub fn close(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HealthWatchdog {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> HealthConfig {
        HealthConfig::new()
            .stall_threshold(Duration::from_millis(40))
            .round_slo(Duration::from_millis(5))
    }

    #[test]
    fn fresh_state_is_ready() {
        let h = HealthState::new(fast_config());
        let r = h.refresh();
        assert!(r.ready);
        assert!(!r.writer_stalled);
        assert_eq!(r.slo_burn_1m_permille, 0);
    }

    #[test]
    fn idle_without_work_never_stalls() {
        let h = HealthState::new(fast_config());
        std::thread::sleep(Duration::from_millis(90));
        assert!(h.is_ready(), "no pending work, no stall");
    }

    #[test]
    fn pending_work_without_progress_stalls_then_recovers() {
        let registry = Registry::new();
        let h = HealthState::new(fast_config()).with_metrics(&registry);
        h.set_pending(4);
        std::thread::sleep(Duration::from_millis(90));
        let r = h.refresh();
        assert!(r.writer_stalled && !r.ready);
        assert_eq!(
            registry
                .snapshot()
                .get("dyncon_server_writer_stalled")
                .unwrap()
                .value
                .as_counter(),
            Some(1)
        );
        // Stall onset counted once while it persists…
        std::thread::sleep(Duration::from_millis(50));
        h.refresh();
        assert_eq!(
            registry
                .snapshot()
                .get("dyncon_server_writer_stalled")
                .unwrap()
                .value
                .as_counter(),
            Some(1)
        );
        // …and a commit recovers readiness.
        h.note_round_commit(Duration::from_millis(1));
        h.set_pending(0);
        assert!(h.is_ready());
        assert_eq!(
            registry
                .snapshot()
                .get("dyncon_health_ready")
                .unwrap()
                .value
                .as_gauge()
                .map(|(v, _)| v),
            Some(1)
        );
    }

    #[test]
    fn wal_errors_latch_unready() {
        let h = HealthState::new(fast_config());
        assert!(h.is_ready());
        h.note_wal_error();
        let r = h.refresh();
        assert!(!r.ready);
        assert_eq!(r.wal_errors, 1);
        // Commits do not clear it.
        h.note_round_commit(Duration::from_millis(1));
        assert!(!h.is_ready());
    }

    #[test]
    fn slo_burn_rate_reflects_slow_rounds() {
        // target 990‰ → 1% budget. All rounds slow → burn = 100x budget
        // = 100_000‰.
        let h = HealthState::new(fast_config().slo_target_permille(990));
        for _ in 0..10 {
            h.note_round_commit(Duration::from_millis(50));
        }
        let r = h.refresh();
        assert_eq!(r.slo_burn_1m_permille, 100_000);
        assert_eq!(r.slo_burn_5m_permille, 100_000);
        assert_eq!(r.rounds_seen, 10);
        // Fast rounds dilute the burn.
        for _ in 0..90 {
            h.note_round_commit(Duration::from_micros(10));
        }
        let r = h.refresh();
        assert_eq!(r.slo_burn_1m_permille, 10_000, "10% slow / 1% budget");
    }

    #[test]
    fn probes_render_verdicts() {
        let h = HealthState::new(fast_config());
        let routes = h.routes();
        let (ok, body) = (routes.healthz)();
        assert!(ok && body.starts_with("ok"));
        let (ok, body) = (routes.readyz)();
        assert!(ok && body.starts_with("ready"), "{body}");
        h.note_wal_error();
        let (ok, body) = (routes.readyz)();
        assert!(!ok && body.contains("wal error"), "{body}");
        let (ok, _) = (routes.healthz)();
        assert!(ok, "liveness survives unreadiness");
    }

    #[test]
    fn watchdog_trips_the_stall_counter_unattended() {
        let registry = Registry::new();
        let h = HealthState::new(fast_config()).with_metrics(&registry);
        let mut watchdog = h.spawn_watchdog(Duration::from_millis(10));
        h.set_pending(1);
        std::thread::sleep(Duration::from_millis(120));
        watchdog.close();
        assert_eq!(
            registry
                .snapshot()
                .get("dyncon_server_writer_stalled")
                .unwrap()
                .value
                .as_counter(),
            Some(1),
            "the watchdog noticed without any probe traffic"
        );
    }
}
