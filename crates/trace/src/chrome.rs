//! Chrome-trace JSON export.
//!
//! The [trace event format] is the lowest-common-denominator timeline
//! interchange: `chrome://tracing`, [Perfetto](https://ui.perfetto.dev)
//! and `speedscope` all load it. Every span becomes one complete event
//! (`"ph": "X"`) — complete events carry their own duration, so the
//! output is well-formed by construction (no begin/end pairing to get
//! wrong).
//!
//! Lane assignment: single-pipeline stages (coalesce, WAL, apply,
//! publish, fill) share `tid` 0 — the writer executes them one after
//! another, so they never overlap; each shard's sub-rounds get
//! `tid = shard + 1` (they genuinely run in parallel and deserve their
//! own lanes); reader-path spans go to a dedicated lane above the
//! shards so concurrent reads never partially overlap writer stages in
//! one lane.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::recorder::{Span, Stage};

/// The `tid` lane a span renders in (see the module docs).
fn lane(span: &Span) -> u64 {
    match span.shard {
        Some(s) => s as u64 + 1,
        // Reader-path spans run concurrently with writer stages; park
        // them in a high lane so each lane stays overlap-free.
        None if matches!(span.stage, Stage::ViewResolve | Stage::ReadExec) => 1_000_000,
        None => 0,
    }
}

/// Serialize `spans` as a Chrome-trace JSON document (an object with a
/// `traceEvents` array of complete events, timestamps in microseconds
/// with nanosecond precision). [`crate::TraceRecorder::chrome_trace_json`]
/// calls this on the ring's retained window; it is exposed separately
/// so filtered span sets export the same way.
pub fn chrome_trace_json_from(spans: &[Span]) -> String {
    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.start_ns, s.dur_ns, s.round));
    let mut out = String::with_capacity(128 + ordered.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in ordered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Stage names are static snake_case identifiers: nothing to
        // JSON-escape anywhere in the document.
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":{}.{:03},\
             \"dur\":{}.{:03},\"pid\":0,\"tid\":{},\"args\":{{\"round\":{},\"ops\":{}{}}}}}",
            s.stage.name(),
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.dur_ns / 1000,
            s.dur_ns % 1000,
            lane(s),
            s.round,
            s.ops,
            match s.shard {
                Some(shard) => format!(",\"shard\":{shard}"),
                None => String::new(),
            },
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: Stage, start_ns: u64, dur_ns: u64, shard: Option<u32>) -> Span {
        Span {
            round: 1,
            stage,
            start_ns,
            dur_ns,
            ops: 2,
            shard,
        }
    }

    #[test]
    fn events_carry_the_trace_event_format_fields() {
        let json = chrome_trace_json_from(&[span(Stage::Apply, 1500, 2750, None)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"apply\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"), "µs with ns precision");
        assert!(json.contains("\"dur\":2.750"));
        assert!(json.contains("\"args\":{\"round\":1,\"ops\":2}"));
    }

    #[test]
    fn lanes_separate_shards_writer_and_readers() {
        let json = chrome_trace_json_from(&[
            span(Stage::Fill, 0, 1, None),
            span(Stage::ShardRound, 0, 1, Some(3)),
            span(Stage::ReadExec, 0, 1, None),
        ]);
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":4"), "shard 3 renders in lane 4");
        assert!(json.contains("\"tid\":1000000"));
        assert!(json.contains("\"shard\":3"));
    }

    #[test]
    fn empty_ring_is_still_a_valid_document() {
        assert_eq!(
            chrome_trace_json_from(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
