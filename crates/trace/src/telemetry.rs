//! The scrapeable telemetry endpoint: a std-only `TcpListener` thread
//! serving the metric registry and the trace ring over plain HTTP/1.1.

use crate::recorder::TraceRecorder;
use dyncon_metrics::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket timeout: a scraper that stalls mid-request is
/// cut off here, freeing its handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on concurrent per-connection handler threads. At the cap the
/// accept loop serves inline, which backpressures accepting — still
/// strictly better than the old serve-everything-serially behaviour.
const MAX_CONCURRENT_HANDLERS: usize = 32;

/// A health probe: `(healthy, body)`. The closure must be cheap and
/// non-blocking — it runs on the telemetry serving path.
pub type HealthProbe = Arc<dyn Fn() -> (bool, String) + Send + Sync>;

/// Liveness + readiness probes for the `/healthz` and `/readyz` routes.
///
/// Defined here (rather than in the health engine that feeds it) so the
/// telemetry endpoint stays decoupled: any layer can hand in closures.
/// `dyncon-export`'s `HealthState::routes()` is the canonical producer.
#[derive(Clone)]
pub struct HealthRoutes {
    /// `/healthz`: is the process alive and serving at all?
    pub healthz: HealthProbe,
    /// `/readyz`: should a load balancer route traffic here? Flips to
    /// `false` (HTTP 503) on writer stall, WAL errors or backpressure
    /// saturation.
    pub readyz: HealthProbe,
}

impl std::fmt::Debug for HealthRoutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthRoutes").finish_non_exhaustive()
    }
}

/// Handle of a running [`serve_telemetry`] endpoint. Scrape it at
/// [`TelemetryServer::local_addr`]; stop it with
/// [`TelemetryServer::close`] + [`TelemetryServer::join`] (or just
/// drop it — drop closes and joins too).
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address (pass port 0 to [`serve_telemetry`] to let
    /// the OS pick a free one, then read it back here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting scrapes. Idempotent; in-flight requests finish
    /// (bounded by the per-connection timeout). [`TelemetryServer::join`]
    /// waits for the serving thread itself.
    pub fn close(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop only observes the flag between connections;
        // poke it with one so a fully idle listener wakes up too.
        let _ = TcpStream::connect(self.addr);
    }

    /// Close (if not already closed) and wait for the serving thread
    /// to exit.
    pub fn join(mut self) {
        self.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Serve `registry` and `recorder` over HTTP on `addr` from a
/// dedicated thread, until the returned handle is closed:
///
/// - `GET /metrics` — the registry snapshot in Prometheus text
///   exposition format (what `render_prometheus()` produces).
/// - `GET /trace` — the trace ring as Chrome-trace JSON (load the
///   response body in `chrome://tracing` or Perfetto).
/// - `GET /slow` — the slow-round log as human-readable stage tables.
/// - anything else — 404.
///
/// Observational only, like the recorder itself: scraping snapshots
/// shared-state copies and never touches admission or the writer.
/// One request per connection (`Connection: close`); each accepted
/// connection is served on a short-lived thread (capped at
/// `MAX_CONCURRENT_HANDLERS`, 32) so one stalled scraper cannot
/// head-of-line block `/metrics` for everyone else.
pub fn serve_telemetry(
    addr: impl ToSocketAddrs,
    registry: Registry,
    recorder: TraceRecorder,
) -> io::Result<TelemetryServer> {
    serve_telemetry_with_health(addr, registry, recorder, None)
}

/// Decrements the live-handler count when the connection finishes —
/// or when a failed `spawn` drops the un-run closure holding it.
struct HandlerGuard(Arc<AtomicUsize>);

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// [`serve_telemetry`], plus `/healthz` and `/readyz` backed by the
/// given [`HealthRoutes`]. With `None` both routes answer 200 (the
/// process is trivially alive and nothing is tracking readiness);
/// with probes attached an unhealthy/unready answer is an HTTP 503
/// whose body explains why.
pub fn serve_telemetry_with_health(
    addr: impl ToSocketAddrs,
    registry: Registry,
    recorder: TraceRecorder,
    health: Option<HealthRoutes>,
) -> io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("dyncon-telemetry".into())
        .spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                // Serve errors are the scraper's problem (it hung up,
                // timed out, or sent garbage); the endpoint lives on.
                if active.fetch_add(1, Ordering::AcqRel) < MAX_CONCURRENT_HANDLERS {
                    let guard = HandlerGuard(Arc::clone(&active));
                    let registry = registry.clone();
                    let recorder = recorder.clone();
                    let health = health.clone();
                    // Failed spawns drop the closure, which drops the
                    // guard (count stays balanced) and the stream (the
                    // scraper sees a reset and retries).
                    let _ = std::thread::Builder::new()
                        .name("dyncon-telemetry-conn".into())
                        .spawn(move || {
                            let _guard = guard;
                            let _ = serve_one(stream, &registry, &recorder, health.as_ref());
                        });
                } else {
                    // At the cap: serve inline, backpressuring accepts
                    // rather than spawning without bound.
                    let _guard = HandlerGuard(Arc::clone(&active));
                    let _ = serve_one(stream, &registry, &recorder, health.as_ref());
                }
            }
        })
        .expect("spawn dyncon telemetry thread");
    Ok(TelemetryServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Read one request line, route it, write one response.
fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    recorder: &TraceRecorder,
    health: Option<&HealthRoutes>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Read until the header terminator (or the buffer bound): the
    // request line is all the routing needs.
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.snapshot().render_prometheus(),
        ),
        "/trace" => (
            "200 OK",
            "application/json; charset=utf-8",
            recorder.chrome_trace_json(),
        ),
        "/slow" => (
            "200 OK",
            "text/plain; charset=utf-8",
            recorder.slow_round_log().render_text(),
        ),
        "/healthz" => probe_response(health.map(|h| &h.healthz)),
        "/readyz" => probe_response(health.map(|h| &h.readyz)),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "404: try /metrics, /trace, /slow, /healthz or /readyz\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

/// Render one health probe as `(status, content-type, body)`. No probe
/// attached means the route is trivially healthy.
fn probe_response(probe: Option<&HealthProbe>) -> (&'static str, &'static str, String) {
    let (ok, body) = match probe {
        Some(p) => p(),
        None => (true, "ok (no health engine attached)\n".to_string()),
    };
    let status = if ok {
        "200 OK"
    } else {
        "503 Service Unavailable"
    };
    (status, "text/plain; charset=utf-8", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Stage;
    use std::time::Instant;

    /// Minimal scrape client: one GET, read to EOF, split off the body.
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header block");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn endpoint_serves_metrics_trace_and_slow() {
        let registry = Registry::new();
        registry
            .counter("demo_total", "things", "a demo counter")
            .inc();
        let recorder = TraceRecorder::new();
        recorder.record(4, Stage::Apply, Instant::now(), 8);
        recorder.complete_round(4, Duration::from_millis(20), 8);
        let server =
            serve_telemetry("127.0.0.1:0", registry, recorder).expect("bind an ephemeral port");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"));
        assert!(body.contains("# TYPE demo_total counter"));
        assert!(body.contains("demo_total 1"));

        let (head, body) = get(addr, "/trace");
        assert!(head.contains("application/json"));
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"name\":\"apply\""));

        let (head, body) = get(addr, "/slow");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("round 4"), "20ms > 10ms default threshold");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.join();
        // Closed: new connections are refused (or reset immediately).
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        let mut b = [0u8; 1];
                        s.read(&mut b)
                    })
                    .map(|n| n == 0)
                    .unwrap_or(true)
        );
    }

    #[test]
    fn close_is_idempotent_and_drop_joins() {
        let server = serve_telemetry("127.0.0.1:0", Registry::new(), TraceRecorder::new()).unwrap();
        server.close();
        server.close();
        drop(server); // must not hang
    }

    #[test]
    fn health_routes_default_to_ok_without_probes() {
        let server = serve_telemetry("127.0.0.1:0", Registry::new(), TraceRecorder::new()).unwrap();
        let addr = server.local_addr();
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("ok"));
        let (head, _) = get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        server.join();
    }

    #[test]
    fn health_routes_reflect_probe_verdicts() {
        use std::sync::atomic::AtomicBool;
        let ready = Arc::new(AtomicBool::new(true));
        let probe_ready = Arc::clone(&ready);
        let routes = HealthRoutes {
            healthz: Arc::new(|| (true, "alive\n".to_string())),
            readyz: Arc::new(move || {
                if probe_ready.load(Ordering::SeqCst) {
                    (true, "ready\n".to_string())
                } else {
                    (false, "writer stalled\n".to_string())
                }
            }),
        };
        let server = serve_telemetry_with_health(
            "127.0.0.1:0",
            Registry::new(),
            TraceRecorder::new(),
            Some(routes),
        )
        .unwrap();
        let addr = server.local_addr();
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "alive\n");
        let (head, body) = get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ready\n");
        ready.store(false, Ordering::SeqCst);
        let (head, body) = get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert_eq!(body, "writer stalled\n");
        // Liveness is independent of readiness.
        let (head, _) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        server.join();
    }

    /// The head-of-line fix: a connection that never sends its request
    /// (it would hold its handler for the full 2 s IO timeout) must not
    /// delay other scrapers.
    #[test]
    fn stalled_connection_does_not_block_other_scrapers() {
        let registry = Registry::new();
        registry.counter("alive_total", "ops", "").inc();
        let server = serve_telemetry("127.0.0.1:0", registry, TraceRecorder::new()).unwrap();
        let addr = server.local_addr();
        // Open (and hold) connections that send nothing.
        let stalled: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let start = Instant::now();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("alive_total 1"));
        assert!(
            start.elapsed() < IO_TIMEOUT,
            "scrape waited on a stalled peer: {:?}",
            start.elapsed()
        );
        drop(stalled);
        server.join();
    }
}
