//! The span ring buffer, per-round breakdowns, and the slow-round log.

use dyncon_metrics::Histogram;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on rounds the recorder accumulates breakdowns for at
/// once. In steady state at most a handful of rounds are in flight
/// (reads may attribute spans to older versions); the bound only
/// matters under pathological span/complete interleavings.
const MAX_INFLIGHT_ROUNDS: usize = 1024;

/// An instrumented pipeline stage. Variants are declared in pipeline
/// order — [`RoundTrace`] breakdowns sort by it — and each maps to a
/// stable snake_case name ([`Stage::name`]) used by the exporters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// How long the round's oldest request sat admitted before the
    /// writer took the round (the admission coalescing window).
    CoalesceWait,
    /// Write-ahead log append of the sealed round (durable stacks).
    WalAppend,
    /// The fsync inside a WAL append, separately attributed (durable
    /// stacks under a syncing fsync policy).
    WalFsync,
    /// Retraction of a logged round whose apply failed.
    WalAbort,
    /// The whole backend `apply` of the round (contains the shard
    /// coordinator stages below when the backend is sharded).
    Apply,
    /// Coordinator: routing a mutation segment's ops to shards.
    Decompose,
    /// Coordinator: one shard's sub-round, submit to ticket resolution.
    /// Carries [`Span::shard`].
    ShardRound,
    /// Coordinator: the cross-edge store's sub-round.
    CrossRound,
    /// Coordinator: rebuild of the contracted boundary graph.
    BoundaryRebuild,
    /// Coordinator: resolving locally-undecided queries through the
    /// boundary graph.
    CrossQuery,
    /// Export + label + retain of the round's read view.
    Publish,
    /// Resolving every ticket of the round with its answers.
    Fill,
    /// Reader path: cloning a retained view out of the window. The
    /// span's round is the **version** resolved, not a commit round.
    ViewResolve,
    /// Reader path: executing a `read_async` closure against its view
    /// (round = the view's version).
    ReadExec,
}

impl Stage {
    /// The stage's stable snake_case name (exporter vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Stage::CoalesceWait => "coalesce_wait",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::WalAbort => "wal_abort",
            Stage::Apply => "apply",
            Stage::Decompose => "decompose",
            Stage::ShardRound => "shard_round",
            Stage::CrossRound => "cross_round",
            Stage::BoundaryRebuild => "boundary_rebuild",
            Stage::CrossQuery => "cross_query",
            Stage::Publish => "publish",
            Stage::Fill => "fill",
            Stage::ViewResolve => "view_resolve",
            Stage::ReadExec => "read_exec",
        }
    }

    /// Whether spans of this stage nest *inside* the round's
    /// [`Stage::Apply`] span (the coordinator runs during apply).
    pub fn nests_in_apply(self) -> bool {
        matches!(
            self,
            Stage::Decompose
                | Stage::ShardRound
                | Stage::CrossRound
                | Stage::BoundaryRebuild
                | Stage::CrossQuery
        )
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded stage occurrence. `start_ns` is nanoseconds since the
/// recorder's construction (a shared monotonic epoch, so spans from
/// every thread and layer line up on one timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The commit round the work belonged to (reader-path stages use
    /// the resolved **version** instead — see [`Stage::ViewResolve`]).
    pub round: u64,
    /// Which pipeline stage.
    pub stage: Stage,
    /// Start offset from the recorder's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Operations the stage processed (0 where not meaningful).
    pub ops: u64,
    /// Shard index for per-shard stages ([`Stage::ShardRound`]);
    /// `None` for coordinator-level and single-pipeline stages.
    pub shard: Option<u32>,
}

/// Construction knobs of a [`TraceRecorder`].
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Ring-buffer capacity in spans. Once full, new spans overwrite
    /// the oldest (the ring always holds the most recent window).
    pub capacity: usize,
    /// Rounds whose wall time (writer take → tickets filled) reaches
    /// this threshold get their full stage breakdown retained in the
    /// [`SlowRoundLog`]. `None` disables slow-round capture.
    pub slow_round_threshold: Option<Duration>,
    /// How many slow rounds the log retains (oldest evicted first).
    pub slow_log_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity: 8192,
            slow_round_threshold: Some(Duration::from_millis(10)),
            slow_log_capacity: 32,
        }
    }
}

impl TraceConfig {
    /// The defaults: 8192 spans, 10 ms slow threshold, 32 retained.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set [`TraceConfig::capacity`] (clamped to ≥ 1).
    pub fn capacity(mut self, spans: usize) -> Self {
        self.capacity = spans.max(1);
        self
    }

    /// Set [`TraceConfig::slow_round_threshold`].
    pub fn slow_round_threshold(mut self, threshold: Duration) -> Self {
        self.slow_round_threshold = Some(threshold);
        self
    }

    /// Disable slow-round capture entirely.
    pub fn no_slow_rounds(mut self) -> Self {
        self.slow_round_threshold = None;
        self
    }

    /// Set [`TraceConfig::slow_log_capacity`] (clamped to ≥ 1).
    pub fn slow_log_capacity(mut self, rounds: usize) -> Self {
        self.slow_log_capacity = rounds.max(1);
        self
    }
}

/// One stage's aggregate inside a [`RoundTrace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageBreakdown {
    /// The stage (breakdowns are sorted in pipeline order).
    pub stage: Stage,
    /// Shard index for per-shard stages, else `None`.
    pub shard: Option<u32>,
    /// Summed span durations of this (stage, shard), nanoseconds.
    pub total_ns: u64,
    /// Summed span op counts.
    pub ops: u64,
    /// How many spans were folded in.
    pub count: u64,
}

/// The stage breakdown of one committed round: where its wall time
/// went. Produced by the recorder at round completion; retrieve the
/// worst via [`TraceRecorder::slowest_round`] or the over-threshold
/// history via [`TraceRecorder::slow_round_log`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundTrace {
    /// The committed round (server-local numbering).
    pub round: u64,
    /// Wall time from the writer taking the round to its last ticket
    /// filled, nanoseconds. Stages may overlap (shard sub-rounds run
    /// in parallel), so stage totals can exceed this.
    pub wall_ns: u64,
    /// Operations the round committed.
    pub ops: u64,
    /// Per-(stage, shard) aggregates, pipeline order.
    pub stages: Vec<StageBreakdown>,
}

impl RoundTrace {
    /// Render the breakdown as an aligned human-readable table, one
    /// stage per line with its share of the round's wall time.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "round {}: {:.3} ms wall, {} ops\n  {:<16} {:>5} {:>12} {:>7} {:>8} {:>6}\n",
            self.round,
            self.wall_ns as f64 / 1e6,
            self.ops,
            "stage",
            "shard",
            "time",
            "%wall",
            "ops",
            "spans",
        );
        for s in &self.stages {
            let shard = s.shard.map_or("-".to_string(), |x| x.to_string());
            let pct = if self.wall_ns == 0 {
                0.0
            } else {
                100.0 * s.total_ns as f64 / self.wall_ns as f64
            };
            out.push_str(&format!(
                "  {:<16} {:>5} {:>9.3} ms {:>6.1}% {:>8} {:>6}\n",
                s.stage.name(),
                shard,
                s.total_ns as f64 / 1e6,
                pct,
                s.ops,
                s.count,
            ));
        }
        out
    }
}

/// A snapshot of the retained slow rounds: every completed round whose
/// wall time reached [`TraceConfig::slow_round_threshold`], newest
/// last, bounded by [`TraceConfig::slow_log_capacity`].
#[derive(Clone, Debug)]
pub struct SlowRoundLog {
    /// The capture threshold in force (`None`: capture disabled).
    pub threshold_ns: Option<u64>,
    /// Total rounds ever captured (≥ `rounds.len()` after eviction).
    pub captured: u64,
    /// The retained breakdowns, oldest first.
    pub rounds: Vec<RoundTrace>,
}

impl SlowRoundLog {
    /// Render every retained slow round as a [`RoundTrace::render_text`]
    /// table, prefixed with a one-line header.
    pub fn render_text(&self) -> String {
        let mut out = match self.threshold_ns {
            Some(t) => format!(
                "slow rounds: {} captured over {:.3} ms threshold, {} retained\n",
                self.captured,
                t as f64 / 1e6,
                self.rounds.len()
            ),
            None => "slow rounds: capture disabled\n".to_string(),
        };
        for r in &self.rounds {
            out.push_str(&r.render_text());
        }
        out
    }
}

/// In-flight accumulation of one round's breakdown: small linear map
/// keyed by (stage, shard) — a round touches at most a dozen distinct
/// keys, so linear scans beat hashing.
#[derive(Default)]
struct RoundAccum {
    lines: Vec<StageBreakdown>,
}

impl RoundAccum {
    fn add(&mut self, stage: Stage, shard: Option<u32>, dur_ns: u64, ops: u64) {
        for line in &mut self.lines {
            if line.stage == stage && line.shard == shard {
                line.total_ns += dur_ns;
                line.ops += ops;
                line.count += 1;
                return;
            }
        }
        self.lines.push(StageBreakdown {
            stage,
            shard,
            total_ns: dur_ns,
            ops,
            count: 1,
        });
    }
}

/// Everything behind the round-completion mutex. The span ring itself
/// is *not* behind it (see [`Shared::slots`]).
struct RoundState {
    accum: BTreeMap<u64, RoundAccum>,
    slowest: Option<RoundTrace>,
    slow: VecDeque<RoundTrace>,
    slow_captured: u64,
    completed: u64,
}

struct Shared {
    /// The shared timeline origin — every span's `start_ns` is an
    /// offset from this instant.
    epoch: Instant,
    /// The span ring. Lock-light: a global atomic cursor claims a
    /// slot, then only that slot's own mutex is held for the store —
    /// concurrent recorders on different slots never contend, and no
    /// recording thread ever waits behind an exporter scanning the
    /// whole ring.
    slots: Box<[Mutex<Option<Span>>]>,
    /// Total spans ever recorded; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    /// The round the writer is currently committing — the attribution
    /// context for nested instrumentation (shard coordinator stages
    /// run inside `apply` and have no round argument of their own).
    current_round: AtomicU64,
    rounds: Mutex<RoundState>,
    /// Round wall times, for quantile extraction
    /// ([`TraceRecorder::round_wall_quantile`]).
    wall_ns: Histogram,
    config: TraceConfig,
}

/// A bounded, lock-light recorder of pipeline [`Span`]s, shared by
/// every instrumented layer of one serving stack (clone it — clones
/// share the same ring). See the crate docs for the model; construct
/// with [`TraceRecorder::new`] or [`TraceRecorder::with_config`] and
/// attach via `ServerConfig::trace` / `ShardConfig::trace`.
#[derive(Clone)]
pub struct TraceRecorder {
    shared: Arc<Shared>,
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("capacity", &self.shared.config.capacity)
            .field("recorded", &self.shared.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A recorder with the [`TraceConfig`] defaults.
    pub fn new() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// A recorder with explicit knobs.
    pub fn with_config(config: TraceConfig) -> Self {
        let slots = (0..config.capacity.max(1))
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                slots,
                cursor: AtomicU64::new(0),
                current_round: AtomicU64::new(0),
                rounds: Mutex::new(RoundState {
                    accum: BTreeMap::new(),
                    slowest: None,
                    slow: VecDeque::new(),
                    slow_captured: 0,
                    completed: 0,
                }),
                wall_ns: Histogram::new(),
                config,
            }),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Total spans ever recorded (≥ the ring's retained window).
    pub fn recorded(&self) -> u64 {
        self.shared.cursor.load(Ordering::Relaxed)
    }

    /// Rounds completed through [`TraceRecorder::complete_round`].
    pub fn rounds_completed(&self) -> u64 {
        self.shared.rounds.lock().unwrap().completed
    }

    /// Record a span that started at `started` and ends now.
    pub fn record(&self, round: u64, stage: Stage, started: Instant, ops: u64) {
        self.record_parts(round, stage, started, started.elapsed(), ops, None);
    }

    /// [`TraceRecorder::record`] tagged with the shard the work ran on.
    pub fn record_shard(&self, round: u64, stage: Stage, started: Instant, ops: u64, shard: u32) {
        self.record_parts(round, stage, started, started.elapsed(), ops, Some(shard));
    }

    /// Record a span from explicit parts: it began at `started` (which
    /// may predate the recorder — the offset clamps to 0) and ran for
    /// `dur`. This is the primitive the convenience methods wrap; use
    /// it when the duration was measured elsewhere (e.g. the WAL's
    /// internal fsync timing).
    pub fn record_parts(
        &self,
        round: u64,
        stage: Stage,
        started: Instant,
        dur: Duration,
        ops: u64,
        shard: Option<u32>,
    ) {
        let start_ns = started
            .checked_duration_since(self.shared.epoch)
            .unwrap_or_default()
            .as_nanos() as u64;
        let span = Span {
            round,
            stage,
            start_ns,
            dur_ns: dur.as_nanos() as u64,
            ops,
            shard,
        };
        let idx =
            self.shared.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.shared.slots.len();
        *self.shared.slots[idx].lock().unwrap() = Some(span);
        let mut rounds = self.shared.rounds.lock().unwrap();
        if rounds.accum.len() < MAX_INFLIGHT_ROUNDS || rounds.accum.contains_key(&round) {
            rounds
                .accum
                .entry(round)
                .or_default()
                .add(stage, shard, span.dur_ns, ops);
        }
    }

    /// Set the round the writer is about to commit — the attribution
    /// context [`TraceRecorder::current_round`] hands to nested
    /// instrumentation (coordinator stages run inside `apply`).
    pub fn set_current_round(&self, round: u64) {
        self.shared.current_round.store(round, Ordering::Relaxed);
    }

    /// The round last set by [`TraceRecorder::set_current_round`].
    pub fn current_round(&self) -> u64 {
        self.shared.current_round.load(Ordering::Relaxed)
    }

    /// Fold the round's accumulated spans into its [`RoundTrace`],
    /// record its wall time, update the slowest-round slot, and — when
    /// `wall` reaches the configured threshold — retain the breakdown
    /// in the [`SlowRoundLog`]. The writer calls this once per
    /// committed round, after the last ticket fill.
    pub fn complete_round(&self, round: u64, wall: Duration, ops: u64) {
        let wall_ns = wall.as_nanos() as u64;
        self.shared.wall_ns.record(wall_ns);
        let mut state = self.shared.rounds.lock().unwrap();
        state.completed += 1;
        let mut lines = state.accum.remove(&round).unwrap_or_default().lines;
        // Rounds commit in order: anything still accumulating under an
        // older key (e.g. reads attributed to an old version) will
        // never complete — drop it so the map stays bounded.
        let stale: Vec<u64> = state.accum.range(..round).map(|(&k, _)| k).collect();
        for k in stale {
            state.accum.remove(&k);
        }
        lines.sort_by_key(|l| (l.stage, l.shard));
        let trace = RoundTrace {
            round,
            wall_ns,
            ops,
            stages: lines,
        };
        if state.slowest.as_ref().map_or(true, |s| wall_ns > s.wall_ns) {
            state.slowest = Some(trace.clone());
        }
        if let Some(threshold) = self.shared.config.slow_round_threshold {
            if wall >= threshold {
                state.slow_captured += 1;
                state.slow.push_back(trace);
                while state.slow.len() > self.shared.config.slow_log_capacity {
                    state.slow.pop_front();
                }
            }
        }
    }

    /// The breakdown of the slowest round completed so far (`None`
    /// before the first completion).
    pub fn slowest_round(&self) -> Option<RoundTrace> {
        self.shared.rounds.lock().unwrap().slowest.clone()
    }

    /// Snapshot the retained slow rounds.
    pub fn slow_round_log(&self) -> SlowRoundLog {
        let state = self.shared.rounds.lock().unwrap();
        SlowRoundLog {
            threshold_ns: self
                .shared
                .config
                .slow_round_threshold
                .map(|t| t.as_nanos() as u64),
            captured: state.slow_captured,
            rounds: state.slow.iter().cloned().collect(),
        }
    }

    /// The `q`-quantile (0.0–1.0) of completed rounds' wall times in
    /// nanoseconds (a log2-bucket upper bound, like every dyncon
    /// histogram), or `None` before the first completion.
    pub fn round_wall_quantile(&self, q: f64) -> Option<u64> {
        self.shared.wall_ns.quantile(q)
    }

    /// Snapshot the ring's retained spans in recording order (oldest
    /// first). Best-effort under concurrent recording: a span being
    /// written right now is either in the snapshot whole or absent —
    /// never torn.
    pub fn spans(&self) -> Vec<Span> {
        let total = self.shared.cursor.load(Ordering::Relaxed);
        let cap = self.shared.slots.len() as u64;
        let (first, len) = if total <= cap {
            (0, total)
        } else {
            (total % cap, cap)
        };
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let idx = ((first + i) % cap) as usize;
            if let Some(span) = *self.shared.slots[idx].lock().unwrap() {
                out.push(span);
            }
        }
        out
    }

    /// Export the ring's retained spans as Chrome-trace JSON (see
    /// [`crate::chrome_trace_json_from`]).
    pub fn chrome_trace_json(&self) -> String {
        crate::chrome::chrome_trace_json_from(&self.spans())
    }
}

/// Run `f` and record it as one span of (`round`, `stage`) when a
/// recorder is attached. With `None` this is exactly `f()` — no clock
/// reads, which is what makes an unattached [`TraceRecorder`] knob a
/// zero-cost no-op at the instrumentation sites.
pub fn traced<R>(
    recorder: Option<&TraceRecorder>,
    round: u64,
    stage: Stage,
    ops: u64,
    f: impl FnOnce() -> R,
) -> R {
    match recorder {
        Some(t) => {
            let started = Instant::now();
            let out = f();
            t.record(round, stage, started, ops);
            out
        }
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_at(r: &TraceRecorder, round: u64, stage: Stage, dur_ns: u64) {
        r.record_parts(
            round,
            stage,
            Instant::now(),
            Duration::from_nanos(dur_ns),
            1,
            None,
        );
    }

    #[test]
    fn ring_wraps_keeping_the_newest_spans() {
        let r = TraceRecorder::with_config(TraceConfig::new().capacity(4));
        assert_eq!(r.capacity(), 4);
        for round in 0..10 {
            span_at(&r, round, Stage::Apply, 100);
        }
        assert_eq!(r.recorded(), 10);
        let rounds: Vec<u64> = r.spans().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9], "ring keeps the newest window");
    }

    #[test]
    fn partial_ring_returns_only_what_was_recorded() {
        let r = TraceRecorder::with_config(TraceConfig::new().capacity(64));
        span_at(&r, 3, Stage::Fill, 5);
        let spans = r.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            (
                spans[0].round,
                spans[0].stage,
                spans[0].dur_ns,
                spans[0].ops
            ),
            (3, Stage::Fill, 5, 1)
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing_before_wraparound() {
        let r = TraceRecorder::with_config(TraceConfig::new().capacity(4096));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..256 {
                        r.record_parts(
                            t,
                            Stage::ShardRound,
                            Instant::now(),
                            Duration::from_nanos(i),
                            1,
                            Some(t as u32),
                        );
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 8 * 256);
        let spans = r.spans();
        assert_eq!(spans.len(), 8 * 256, "capacity not exceeded: all retained");
        for t in 0..8u64 {
            assert_eq!(
                spans.iter().filter(|s| s.round == t).count(),
                256,
                "every thread's spans survived"
            );
        }
    }

    #[test]
    fn round_breakdowns_aggregate_by_stage_and_shard() {
        let r = TraceRecorder::new();
        r.record_parts(
            7,
            Stage::ShardRound,
            Instant::now(),
            Duration::from_nanos(100),
            4,
            Some(0),
        );
        r.record_parts(
            7,
            Stage::ShardRound,
            Instant::now(),
            Duration::from_nanos(300),
            2,
            Some(1),
        );
        span_at(&r, 7, Stage::Apply, 500);
        span_at(&r, 7, Stage::Apply, 700);
        r.complete_round(7, Duration::from_nanos(1500), 6);
        let t = r.slowest_round().expect("completed round is the slowest");
        assert_eq!((t.round, t.wall_ns, t.ops), (7, 1500, 6));
        // Pipeline order: apply before the per-shard sub-rounds.
        assert_eq!(t.stages.len(), 3);
        assert_eq!(
            (t.stages[0].stage, t.stages[0].total_ns, t.stages[0].count),
            (Stage::Apply, 1200, 2)
        );
        assert_eq!(
            (t.stages[1].stage, t.stages[1].shard, t.stages[1].ops),
            (Stage::ShardRound, Some(0), 4)
        );
        assert_eq!(t.stages[2].shard, Some(1));
        let text = t.render_text();
        assert!(text.contains("round 7") && text.contains("shard_round"));
    }

    #[test]
    fn slow_rounds_are_captured_over_the_threshold_and_bounded() {
        let r = TraceRecorder::with_config(
            TraceConfig::new()
                .slow_round_threshold(Duration::from_micros(10))
                .slow_log_capacity(2),
        );
        r.complete_round(0, Duration::from_micros(5), 1); // fast: not captured
        for round in 1..=3 {
            span_at(&r, round, Stage::Apply, 11_000);
            r.complete_round(round, Duration::from_micros(11), 1);
        }
        let log = r.slow_round_log();
        assert_eq!(log.captured, 3);
        let kept: Vec<u64> = log.rounds.iter().map(|t| t.round).collect();
        assert_eq!(kept, vec![2, 3], "bounded log keeps the newest");
        assert!(log.render_text().contains("3 captured"));
        // The quantile sees every completed round, captured or not.
        assert_eq!(r.rounds_completed(), 4);
        assert!(r.round_wall_quantile(0.99).unwrap() >= 11_000);
        // Disabled capture renders as such.
        let off = TraceRecorder::with_config(TraceConfig::new().no_slow_rounds());
        off.complete_round(0, Duration::from_secs(1), 1);
        assert!(off.slow_round_log().render_text().contains("disabled"));
        assert!(off.slowest_round().is_some(), "slowest still tracked");
    }

    #[test]
    fn stale_inflight_rounds_are_dropped_at_completion() {
        let r = TraceRecorder::new();
        span_at(&r, 0, Stage::ViewResolve, 10); // an old-version read
        span_at(&r, 5, Stage::Apply, 10);
        r.complete_round(5, Duration::from_nanos(20), 1);
        // Round 0 never completes; its accumulator must be gone.
        assert_eq!(r.shared.rounds.lock().unwrap().accum.len(), 0);
    }

    #[test]
    fn current_round_is_shared_across_clones() {
        let r = TraceRecorder::new();
        let clone = r.clone();
        r.set_current_round(41);
        assert_eq!(clone.current_round(), 41);
        span_at(&clone, 41, Stage::Decompose, 10);
        assert_eq!(r.recorded(), 1, "clones share one ring");
    }
}
