//! # dyncon-trace
//!
//! Per-round pipeline tracing for the dyncon serving stack — the
//! stage-level attribution layer the aggregate metrics of
//! `dyncon-metrics` cannot provide: when a p999 spike shows up in a
//! latency histogram, the trace says *which stage of which round* the
//! time went to (coalesce wait? WAL fsync? one straggler shard?).
//!
//! Three pieces, all std-only:
//!
//! - [`TraceRecorder`] — a bounded, lock-light ring buffer of
//!   [`Span`]s. Every instrumented stage of the serving pipeline
//!   (admission coalescing, WAL append/fsync, shard decompose and
//!   sub-rounds, boundary rebuild, snapshot publish, ticket fill,
//!   versioned reads) records one span per occurrence. Per committed
//!   round the recorder folds spans into a [`RoundTrace`] breakdown,
//!   tracks the slowest round seen, and promotes rounds over a
//!   configurable threshold into a retained [`SlowRoundLog`].
//! - Exporters — [`TraceRecorder::chrome_trace_json`] emits the ring
//!   buffer as Chrome-trace JSON (loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)), and [`RoundTrace::render_text`]
//!   renders a human stage table.
//! - [`serve_telemetry`] — a `TcpListener` thread serving `GET /metrics`
//!   (Prometheus text from a [`dyncon_metrics::Registry`]), `GET /trace`
//!   (Chrome-trace JSON) and `GET /slow` (the slow-round log), so a
//!   scraper or a human with `curl` can observe a live service. Each
//!   connection gets its own short-lived handler thread (bounded), and
//!   [`serve_telemetry_with_health`] adds `/healthz` + `/readyz` routes
//!   backed by caller-supplied [`HealthRoutes`] probes (the
//!   `dyncon-export` health engine is the canonical producer).
//!
//! Attach a recorder with `ServerConfig::trace` (serving layer) or
//! `ShardConfig::trace` (sharded layer). The contract is the same as
//! for metrics: **observational only** — tracing never influences
//! admission, round boundaries, or results, and `tests/determinism.rs`
//! proves rounds stay byte-identical with tracing and the endpoint
//! attached. With no recorder attached the instrumentation is a no-op
//! (`Option` check, no clock reads).

mod chrome;
mod recorder;
mod telemetry;

pub use chrome::chrome_trace_json_from;
pub use recorder::{
    traced, RoundTrace, SlowRoundLog, Span, Stage, StageBreakdown, TraceConfig, TraceRecorder,
};
pub use telemetry::{
    serve_telemetry, serve_telemetry_with_health, HealthProbe, HealthRoutes, TelemetryServer,
};
