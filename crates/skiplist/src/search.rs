//! Weighted prefix search — the "fetch the first ℓ non-tree edges"
//! primitive of Appendix 9 (Lemma 10).
//!
//! Given a weight extraction `w : Value -> u64`, [`SkipList::collect_prefix`]
//! walks the cycle in tour order starting from the canonical representative
//! and returns bottom-level nodes (with per-node take counts) until `need`
//! units of weight have been gathered. The augmented values steer the
//! descent so that towers with zero weight are skipped wholesale: the cost
//! is `O(t + lg n)` nodes touched to gather `t` units.

use crate::aug::Augmentation;
use crate::list::{NodeId, SkipList};

impl<A: Augmentation> SkipList<A> {
    /// Gather up to `need` units of weight from the cycle containing
    /// `from`, in tour order from its representative. Returns
    /// `(node, take)` pairs with `0 < take ≤ w(value(node))`.
    pub fn collect_prefix<W>(&self, from: NodeId, need: u64, weight: &W) -> Vec<(NodeId, u64)>
    where
        W: Fn(A::Value) -> u64,
    {
        let mut out = Vec::new();
        if need == 0 {
            return out;
        }
        let rep = self.find_rep(from);
        let top = (self.height(rep) - 1) as usize;
        let mut remaining = need;
        let mut cur = rep;
        loop {
            let c = weight(self.value_at(cur, top));
            if c > 0 {
                let took = self.descend(cur, top, remaining.min(c), &mut out, weight);
                debug_assert!(took <= remaining);
                remaining -= took;
                if remaining == 0 {
                    break;
                }
            }
            cur = self.right(cur, top);
            if cur == rep {
                break;
            }
        }
        out
    }

    /// Gather *all* weight in the cycle containing `from`, in tour order.
    pub fn collect_all<W>(&self, from: NodeId, weight: &W) -> Vec<(NodeId, u64)>
    where
        W: Fn(A::Value) -> u64,
    {
        self.collect_prefix(from, u64::MAX, weight)
    }

    /// Total weight of the cycle containing `from`.
    pub fn total_weight<W>(&self, from: NodeId, weight: &W) -> u64
    where
        W: Fn(A::Value) -> u64,
    {
        weight(self.aggregate(from))
    }

    /// Descend into tower `t` at `level`, collecting exactly
    /// `min(need, weight under t)` units. Precondition: `need > 0` and the
    /// tower's weight at `level` is > 0.
    fn descend<W>(
        &self,
        t: NodeId,
        level: usize,
        need: u64,
        out: &mut Vec<(NodeId, u64)>,
        weight: &W,
    ) -> u64
    where
        W: Fn(A::Value) -> u64,
    {
        if level == 0 {
            let w = weight(self.value_at(t, 0));
            let take = need.min(w);
            debug_assert!(take > 0);
            out.push((t, take));
            return take;
        }
        let min_h = (level + 1) as u8;
        let mut got = 0u64;
        let mut cur = t;
        loop {
            let c = weight(self.value_at(cur, level - 1));
            if c > 0 {
                got += self.descend(cur, level - 1, (need - got).min(c), out, weight);
                if got == need {
                    break;
                }
            }
            cur = self.right(cur, level - 1);
            if cur == t || self.height(cur) >= min_h {
                break; // end of covering segment
            }
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use crate::aug::CountAug;
    use crate::list::{NodeId, SkipList};

    /// A cycle of `n` detached nodes with the given weights; returns nodes.
    fn build(seed: u64, weights: &[u64]) -> (SkipList<CountAug>, Vec<NodeId>) {
        let mut sl = SkipList::<CountAug>::new(seed);
        let nodes: Vec<NodeId> = weights.iter().map(|&w| sl.create_detached(w)).collect();
        let links: Vec<(NodeId, NodeId)> = (0..nodes.len())
            .map(|i| (nodes[i], nodes[(i + 1) % nodes.len()]))
            .collect();
        sl.batch_reconnect(&[], &links);
        (sl, nodes)
    }

    /// Tour order starting at the representative.
    fn tour_from_rep(sl: &SkipList<CountAug>, any: NodeId) -> Vec<NodeId> {
        let rep = sl.find_rep(any);
        let mut order = vec![rep];
        let mut cur = sl.successor(rep);
        while cur != rep {
            order.push(cur);
            cur = sl.successor(cur);
        }
        order
    }

    #[test]
    fn collects_in_tour_order() {
        let weights: Vec<u64> = (0..200).map(|i| (i % 3 == 0) as u64).collect();
        let (sl, nodes) = build(11, &weights);
        let order = tour_from_rep(&sl, nodes[0]);
        let expected: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|&n| sl.value(n) > 0)
            .take(10)
            .collect();
        let got = sl.collect_prefix(nodes[5], 10, &|v| v);
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|&(_, take)| take == 1));
        assert_eq!(got.iter().map(|&(n, _)| n).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn partial_take_from_heavy_node() {
        let (sl, nodes) = build(12, &[0, 7, 0, 5]);
        let got = sl.collect_prefix(nodes[0], 9, &|v| v);
        let total: u64 = got.iter().map(|&(_, t)| t).sum();
        assert_eq!(total, 9);
        // One node is taken in full (7), the other partially (2) — in tour
        // order from the rep, so which is which depends on the rep.
        let takes: Vec<u64> = got.iter().map(|&(_, t)| t).collect();
        assert!(
            takes == vec![7, 2] || takes == vec![5, 4],
            "takes {takes:?}"
        );
    }

    #[test]
    fn need_exceeding_total_returns_everything() {
        let weights = vec![2u64, 0, 3, 1];
        let (sl, nodes) = build(13, &weights);
        let got = sl.collect_all(nodes[0], &|v| v);
        let total: u64 = got.iter().map(|&(_, t)| t).sum();
        assert_eq!(total, 6);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn zero_need_is_empty() {
        let (sl, nodes) = build(14, &[1, 1]);
        assert!(sl.collect_prefix(nodes[0], 0, &|v| v).is_empty());
    }

    #[test]
    fn all_zero_weights() {
        let (sl, nodes) = build(15, &[0; 50]);
        assert!(sl.collect_prefix(nodes[0], 5, &|v| v).is_empty());
        assert_eq!(sl.total_weight(nodes[0], &|v| v), 0);
    }

    #[test]
    fn large_cycle_prefix_matches_model() {
        use dyncon_primitives::SplitMix64;
        let mut r = SplitMix64::new(99);
        let weights: Vec<u64> = (0..5000).map(|_| r.next_below(4)).collect();
        let (sl, nodes) = build(16, &weights);
        let order = tour_from_rep(&sl, nodes[0]);
        for need in [1u64, 17, 400, 100_000] {
            let got = sl.collect_prefix(nodes[0], need, &|v| v);
            // Model: walk tour order taking greedily.
            let mut expect = Vec::new();
            let mut rem = need;
            for &n in &order {
                if rem == 0 {
                    break;
                }
                let w = sl.value(n);
                if w > 0 {
                    let take = rem.min(w);
                    expect.push((n, take));
                    rem -= take;
                }
            }
            assert_eq!(got, expect, "need {need}");
        }
    }
}
