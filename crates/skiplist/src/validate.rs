//! Structural integrity checking (used pervasively by the test suites of
//! this crate and every crate above it).

use crate::aug::Augmentation;
use crate::list::{NodeId, SkipList, NIL};

impl<A: Augmentation> SkipList<A> {
    /// Verify that the arena currently realizes exactly the given cycles.
    ///
    /// Each entry of `cycles` lists the member nodes of one expected cycle
    /// in expected tour order (any rotation). Checks, for every cycle and
    /// every level:
    ///
    /// 1. the level-0 right walk visits exactly the members in the given
    ///    cyclic order, and left links mirror right links;
    /// 2. the level-`l` list contains exactly the members of height `> l`,
    ///    in the same cyclic order;
    /// 3. every stored `value[l]` equals the combination of `value[l-1]`
    ///    over its covering segment;
    /// 4. [`SkipList::find_rep`] agrees across members and differs across
    ///    cycles;
    /// 5. [`SkipList::aggregate`] equals the combination of base values.
    pub fn validate(&self, cycles: &[Vec<NodeId>]) -> Result<(), String> {
        let mut reps = std::collections::HashSet::new();
        for (ci, members) in cycles.iter().enumerate() {
            if members.is_empty() {
                return Err(format!("cycle {ci}: empty member list"));
            }
            self.validate_cycle_order(ci, members)?;
            self.validate_levels(ci, members)?;
            self.validate_values(ci, members)?;
            // Representative coherence.
            let rep = self.find_rep(members[0]);
            for &m in members {
                let r = self.find_rep(m);
                if r != rep {
                    return Err(format!(
                        "cycle {ci}: rep mismatch: node {m} has rep {r}, expected {rep}"
                    ));
                }
            }
            if !reps.insert(rep) {
                return Err(format!("cycle {ci}: rep {rep} shared with another cycle"));
            }
            // Aggregate coherence.
            let mut expect = A::identity();
            for &m in members {
                expect = A::combine(expect, self.value(m));
            }
            let got = self.aggregate(members[0]);
            if got != expect {
                return Err(format!(
                    "cycle {ci}: aggregate {got:?} != expected {expect:?}"
                ));
            }
        }
        Ok(())
    }

    fn validate_cycle_order(&self, ci: usize, members: &[NodeId]) -> Result<(), String> {
        let n = members.len();
        let start = members[0];
        let mut cur = start;
        for i in 0..n {
            let expected = members[(i + 1) % n];
            let next = self.right(cur, 0);
            if next == NIL {
                return Err(format!("cycle {ci}: NIL right link at node {cur}"));
            }
            if next != expected {
                return Err(format!(
                    "cycle {ci}: after {cur} found {next}, expected {expected}"
                ));
            }
            if self.left(next, 0) != cur {
                return Err(format!(
                    "cycle {ci}: left link of {next} is {} not {cur}",
                    self.left(next, 0)
                ));
            }
            cur = next;
        }
        if cur != start {
            return Err(format!("cycle {ci}: walk did not return to start"));
        }
        Ok(())
    }

    fn validate_levels(&self, ci: usize, members: &[NodeId]) -> Result<(), String> {
        let max_h = members.iter().map(|&m| self.height(m)).max().unwrap();
        for l in 1..max_h as usize {
            let expect: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|&m| self.height(m) as usize > l)
                .collect();
            if expect.is_empty() {
                continue;
            }
            let start = expect[0];
            let mut cur = start;
            for i in 0..expect.len() {
                let expected = expect[(i + 1) % expect.len()];
                let next = self.right(cur, l);
                if next != expected {
                    return Err(format!(
                        "cycle {ci} level {l}: after {cur} found {next}, expected {expected}"
                    ));
                }
                if self.left(next, l) != cur {
                    return Err(format!("cycle {ci} level {l}: left link of {next} broken"));
                }
                cur = next;
            }
        }
        Ok(())
    }

    fn validate_values(&self, ci: usize, members: &[NodeId]) -> Result<(), String> {
        let n = members.len();
        for (i, &m) in members.iter().enumerate() {
            let h = self.height(m) as usize;
            for l in 1..h {
                // Covering segment: towers of the level-(l-1) list (height
                // ≥ l) after m (cyclically) until the next tower with
                // height > l. Shorter members are accounted transitively.
                let mut expect = self.value_at(m, l - 1);
                let mut j = (i + 1) % n;
                while members[j] != m {
                    let hj = self.height(members[j]) as usize;
                    if hj > l {
                        break;
                    }
                    if hj >= l {
                        expect = A::combine(expect, self.value_at(members[j], l - 1));
                    }
                    j = (j + 1) % n;
                }
                let got = self.value_at(m, l);
                if got != expect {
                    return Err(format!(
                        "cycle {ci}: node {m} value at level {l} is {got:?}, expected {expect:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}
