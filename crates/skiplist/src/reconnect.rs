//! Batch splice: the phase-concurrent cut + link + repair operation.
//!
//! This is the engine behind every batch ETT operation. A *splice batch*
//! consists of bottom-level `cuts` (sever the tour link after a node) and
//! bottom-level `links` (connect a dangling tail to a dangling head). The
//! caller must supply a batch whose net effect leaves every touched list a
//! proper cycle again — the ETT construction guarantees this (every cut's
//! dangling ends are consumed by exactly one link).
//!
//! ## Level-synchronous seam repair
//!
//! After the bottom level is rearranged, each *link position* is a **seam**:
//! the only places where the level ≥ 1 structure can be stale. Seams are
//! repaired one level per phase:
//!
//! * at level `l`, a seam with frontier `(fl, fr)` (its flanking towers in
//!   the level-`l-1` list) scans outwards along the — already repaired —
//!   level-`l-1` cycle for the nearest towers of height `> l` on each side
//!   (its *anchors* `L`, `R`);
//! * if no such tower exists the cycle's top is below `l` and the seam
//!   retires;
//! * otherwise `L.right[l] = R` / `R.left[l] = L` are stored and `L`'s
//!   level-`l` augmented value is recomputed from its (new) covering
//!   segment.
//!
//! Multiple seams in the same neighbourhood may discover identical anchor
//! pairs; their writes are byte-identical and therefore benign (atomic
//! words). Every stale link at level `l` spans at least one seam and its
//! endpoints are exactly the anchors discovered by the seams it spans, so
//! all stale pointers are overwritten; every tower whose covering segment
//! changed is some seam's left anchor at that level, so all stale values are
//! recomputed. Expected `O(1)` scan steps per seam per level, `O(lg n)`
//! levels, giving the Theorem 2 cost of `O(k lg(1 + n/k))` expected work and
//! `O(lg n)` depth w.h.p.

use crate::aug::Augmentation;
use crate::list::{NodeId, SkipList, NIL};
use dyncon_primitives::{par_for, SyncSlice};

impl<A: Augmentation> SkipList<A> {
    /// Apply a batch of bottom-level `cuts` ("sever the link after node x")
    /// and `links` ("tail a's successor becomes head b"), then repair all
    /// upper levels and augmented values.
    ///
    /// Contract (checked by debug assertions):
    /// * cut nodes are distinct;
    /// * every link `(a, b)` connects a tail whose right link is dangling
    ///   after the cut phase to a head whose left link is dangling;
    /// * the net rearrangement leaves every touched component a cycle
    ///   (nodes spliced out of all cycles may be left fully detached and
    ///   should then be freed by the caller).
    pub fn batch_reconnect(&mut self, cuts: &[NodeId], links: &[(NodeId, NodeId)]) {
        // Phase A: sever bottom links after every cut node.
        par_for(cuts.len(), |i| {
            let x = cuts[i];
            let y = self.right(x, 0);
            debug_assert!(y != NIL, "cut after a node with dangling right link");
            self.set_right(x, 0, NIL);
            // When x is its own successor (singleton) the two stores target
            // the same slot pair; ordering within the iteration handles it.
            self.set_left(y, 0, NIL);
        });

        // Phase B: stitch bottom links.
        par_for(links.len(), |i| {
            let (a, b) = links[i];
            debug_assert_eq!(self.right(a, 0), NIL, "link source not dangling");
            debug_assert_eq!(self.left(b, 0), NIL, "link target not dangling");
            self.set_right(a, 0, b);
            self.set_left(b, 0, a);
        });

        self.repair_seams(links);
    }

    /// Level-synchronous repair of pointers and values around `seams`
    /// (pairs flanking each changed bottom position).
    fn repair_seams(&mut self, seams: &[(NodeId, NodeId)]) {
        // Frontier of each still-active seam at the current level - 1.
        let mut frontier: Vec<(NodeId, NodeId)> = seams.to_vec();
        let mut level = 1usize;
        while !frontier.is_empty() && level < crate::list::MAX_HEIGHT as usize {
            let min_h = (level + 1) as u8;
            // Sub-phase 1 (read-only): locate anchors along level-1 cycles.
            let mut anchors: Vec<(NodeId, NodeId)> = vec![(NIL, NIL); frontier.len()];
            {
                let out = SyncSlice::new(&mut anchors);
                let front = &frontier;
                par_for(front.len(), |i| {
                    let (fl, fr) = front[i];
                    let l = self.scan_left_tall(fl, level - 1, min_h);
                    let r = self.scan_right_tall(fr, level - 1, min_h);
                    debug_assert_eq!(
                        l.is_some(),
                        r.is_some(),
                        "anchor scans disagree: cycle integrity broken"
                    );
                    if let (Some(l), Some(r)) = (l, r) {
                        // SAFETY: slot i written only by iteration i.
                        unsafe { out.write(i, (l, r)) };
                    }
                });
            }
            // Sub-phase 2: link anchors at `level`. Identical duplicate
            // writes may race benignly.
            par_for(anchors.len(), |i| {
                let (l, r) = anchors[i];
                if l != NIL {
                    self.set_right(l, level, r);
                    self.set_left(r, level, l);
                }
            });
            // Sub-phase 3: recompute level-`level` values at left anchors.
            // Reads only level-1 pointers/values (already final), writes
            // only level-`level` value words (identical across duplicates).
            par_for(anchors.len(), |i| {
                let (l, _) = anchors[i];
                if l != NIL {
                    self.recompute_value(l, level);
                }
            });
            // Advance frontiers; retire seams whose cycles topped out.
            frontier = anchors.into_iter().filter(|&(l, _)| l != NIL).collect();
            level += 1;
        }
    }

    /// Recompute `value[level]` of tower `t` (height > `level`) as the
    /// combination of `value[level-1]` over its covering segment.
    #[inline]
    pub(crate) fn recompute_value(&self, t: NodeId, level: usize) {
        let min_h = (level + 1) as u8;
        let mut sum = self.value_at(t, level - 1);
        let mut cur = self.right(t, level - 1);
        while cur != t && self.height(cur) < min_h {
            debug_assert!(cur != NIL);
            sum = A::combine(sum, self.value_at(cur, level - 1));
            cur = self.right(cur, level - 1);
        }
        self.store_value_at(t, level, sum);
    }

    /// Update the base values of a batch of nodes and propagate the change
    /// through all covering towers. `O(k lg(1 + n/k))` expected work,
    /// `O(lg n)` depth w.h.p. — the cost of Lemma 9's augmented-value
    /// maintenance.
    pub fn batch_update_values(&mut self, updates: &[(NodeId, A::Value)]) {
        // Phase 0: write base values (callers ensure distinct nodes).
        par_for(updates.len(), |i| {
            let (id, v) = updates[i];
            self.store_value_at(id, 0, v);
        });
        // Climb exactly like seam repair, but with no pointer writes: each
        // dirty node's covering tower at every level is rediscovered by the
        // same anchor scans a seam (id, id) would perform.
        let mut frontier: Vec<NodeId> = updates.iter().map(|&(id, _)| id).collect();
        let mut level = 1usize;
        while !frontier.is_empty() && level < crate::list::MAX_HEIGHT as usize {
            let min_h = (level + 1) as u8;
            let mut anchors: Vec<NodeId> = vec![NIL; frontier.len()];
            {
                let out = SyncSlice::new(&mut anchors);
                let front = &frontier;
                par_for(front.len(), |i| {
                    if let Some(l) = self.scan_left_tall(front[i], level - 1, min_h) {
                        // SAFETY: slot i written only by iteration i.
                        unsafe { out.write(i, l) };
                    }
                });
            }
            par_for(anchors.len(), |i| {
                if anchors[i] != NIL {
                    self.recompute_value(anchors[i], level);
                }
            });
            frontier = anchors.into_iter().filter(|&l| l != NIL).collect();
            level += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::aug::CountAug;
    use crate::list::SkipList;

    /// Build one cycle out of already-detached nodes, in the given order.
    fn make_cycle(sl: &mut SkipList<CountAug>, nodes: &[u32]) {
        let links: Vec<(u32, u32)> = (0..nodes.len())
            .map(|i| (nodes[i], nodes[(i + 1) % nodes.len()]))
            .collect();
        sl.batch_reconnect(&[], &links);
    }

    #[test]
    fn two_singletons_join_into_cycle() {
        let mut sl = SkipList::<CountAug>::new(7);
        let a = sl.create_singleton(1);
        let b = sl.create_singleton(2);
        // Splice the two self-cycles into one 2-cycle.
        sl.batch_reconnect(&[a, b], &[(a, b), (b, a)]);
        assert_eq!(sl.cycle_len(a), 2);
        assert_eq!(sl.aggregate(a), 3);
        assert_eq!(sl.find_rep(a), sl.find_rep(b));
        sl.validate(&[vec![a, b]]).unwrap();
    }

    #[test]
    fn chain_of_detached_nodes() {
        let mut sl = SkipList::<CountAug>::new(8);
        let nodes: Vec<u32> = (0..100).map(|i| sl.create_detached(i as u64)).collect();
        make_cycle(&mut sl, &nodes);
        assert_eq!(sl.cycle_len(nodes[0]), 100);
        assert_eq!(sl.aggregate(nodes[50]), (0..100).sum::<u64>());
        let rep = sl.find_rep(nodes[0]);
        for &n in &nodes {
            assert_eq!(sl.find_rep(n), rep);
        }
        sl.validate(&[nodes]).unwrap();
    }

    #[test]
    fn split_cycle_into_two() {
        let mut sl = SkipList::<CountAug>::new(9);
        let nodes: Vec<u32> = (0..10).map(|_| sl.create_detached(1)).collect();
        make_cycle(&mut sl, &nodes);
        // Cut after node 4 and node 9, re-close both halves.
        sl.batch_reconnect(
            &[nodes[4], nodes[9]],
            &[(nodes[4], nodes[0]), (nodes[9], nodes[5])],
        );
        assert_eq!(sl.cycle_len(nodes[0]), 5);
        assert_eq!(sl.cycle_len(nodes[5]), 5);
        assert_ne!(sl.find_rep(nodes[0]), sl.find_rep(nodes[5]));
        assert_eq!(sl.aggregate(nodes[2]), 5);
        assert_eq!(sl.aggregate(nodes[7]), 5);
        sl.validate(&[nodes[0..5].to_vec(), nodes[5..10].to_vec()])
            .unwrap();
    }

    #[test]
    fn value_updates_propagate() {
        let mut sl = SkipList::<CountAug>::new(10);
        let nodes: Vec<u32> = (0..64).map(|_| sl.create_detached(0)).collect();
        make_cycle(&mut sl, &nodes);
        assert_eq!(sl.aggregate(nodes[0]), 0);
        let updates: Vec<(u32, u64)> = nodes.iter().step_by(3).map(|&n| (n, 5)).collect();
        let expected = 5 * updates.len() as u64;
        sl.batch_update_values(&updates);
        assert_eq!(sl.aggregate(nodes[0]), expected);
        sl.validate(&[nodes]).unwrap();
    }
}
