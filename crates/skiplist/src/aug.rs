//! Augmentation interface for the skip list.
//!
//! The SPAA 2019 algorithms need the ETT augmented with an associative,
//! commutative function over values attached to vertices and edges (§2.1).
//! The skip list is generic over that function through [`Augmentation`].
//!
//! Values are persisted inside the towers as **two packed `u64` words per
//! level**, stored in `AtomicU64`s. Atomic word storage is what makes
//! duplicate recomputation during seam repair benign: two seams that
//! recompute the same tower write byte-identical words. Any value that fits
//! 128 bits can participate; the ETT's `(vertices, tree edges, non-tree
//! edges)` triple fits comfortably.

/// An associative, commutative aggregation over copyable values that pack
/// into two `u64` words.
pub trait Augmentation: Send + Sync + 'static {
    /// The aggregated value type.
    type Value: Copy + Send + Sync + PartialEq + std::fmt::Debug;

    /// Identity element: `combine(identity(), v) == v`.
    fn identity() -> Self::Value;

    /// The associative, commutative combination.
    fn combine(a: Self::Value, b: Self::Value) -> Self::Value;

    /// Serialize into two words.
    fn pack(v: Self::Value) -> [u64; 2];

    /// Inverse of [`Augmentation::pack`].
    fn unpack(w: [u64; 2]) -> Self::Value;
}

/// No augmentation (zero-sized bookkeeping; still burns the word slots).
pub struct UnitAug;

impl Augmentation for UnitAug {
    type Value = ();
    #[inline]
    fn identity() {}
    #[inline]
    fn combine(_: (), _: ()) {}
    #[inline]
    fn pack(_: ()) -> [u64; 2] {
        [0, 0]
    }
    #[inline]
    fn unpack(_: [u64; 2]) {}
}

/// A single `u64` counter (used heavily in tests and simple clients).
pub struct CountAug;

impl Augmentation for CountAug {
    type Value = u64;
    #[inline]
    fn identity() -> u64 {
        0
    }
    #[inline]
    fn combine(a: u64, b: u64) -> u64 {
        a + b
    }
    #[inline]
    fn pack(v: u64) -> [u64; 2] {
        [v, 0]
    }
    #[inline]
    fn unpack(w: [u64; 2]) -> u64 {
        w[0]
    }
}

/// A pair of independent `u64` counters.
pub struct PairAug;

impl Augmentation for PairAug {
    type Value = (u64, u64);
    #[inline]
    fn identity() -> (u64, u64) {
        (0, 0)
    }
    #[inline]
    fn combine(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
        (a.0 + b.0, a.1 + b.1)
    }
    #[inline]
    fn pack(v: (u64, u64)) -> [u64; 2] {
        [v.0, v.1]
    }
    #[inline]
    fn unpack(w: [u64; 2]) -> (u64, u64) {
        (w[0], w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(CountAug::unpack(CountAug::pack(v)), v);
        }
        assert_eq!(CountAug::combine(2, 3), 5);
        assert_eq!(CountAug::combine(CountAug::identity(), 7), 7);
    }

    #[test]
    fn pair_roundtrip() {
        let v = (3u64, 9u64);
        assert_eq!(PairAug::unpack(PairAug::pack(v)), v);
        assert_eq!(PairAug::combine((1, 2), (3, 4)), (4, 6));
    }
}
