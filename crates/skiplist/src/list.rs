//! Core skip-list arena: towers, links, walks, representatives, aggregates.
//!
//! Nodes live in a flat arena and are addressed by dense `u32` ids — the
//! idiomatic Rust answer to pointer-heavy concurrent trees (no aliasing
//! fights, free-list recycling, cache-friendly layout). All links are
//! `AtomicU32`; all augmented values are packed `AtomicU64` words (see
//! [`crate::aug`]). Mutating batch operations take `&mut self` and are
//! internally parallel, so the borrow checker enforces phase discipline at
//! the API boundary; read-only operations take `&self` and may run
//! concurrently with each other.

use crate::aug::Augmentation;
use dyncon_primitives::SplitMix64;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Index of a tower in the arena.
pub type NodeId = u32;

/// Null link / absent node.
pub const NIL: NodeId = u32::MAX;

/// Maximum tower height. 40 levels comfortably cover arenas of 2^38 nodes;
/// heights are geometric so the expected per-node overhead is ~2 levels.
pub const MAX_HEIGHT: u8 = 40;

pub(crate) struct Tower {
    /// `ptrs[2*l]` = right neighbour at level `l`, `ptrs[2*l + 1]` = left.
    pub(crate) ptrs: Box<[AtomicU32]>,
    /// Two packed value words per level: `vals[2*l]`, `vals[2*l + 1]`.
    pub(crate) vals: Box<[AtomicU64]>,
    pub(crate) height: u8,
}

/// A set of disjoint cyclic augmented skip lists sharing one arena.
pub struct SkipList<A: Augmentation> {
    pub(crate) towers: Vec<Tower>,
    free: Vec<NodeId>,
    rng: SplitMix64,
    _aug: PhantomData<A>,
}

impl<A: Augmentation> SkipList<A> {
    /// Create an empty structure whose tower heights are drawn from the
    /// stream seeded by `seed` (deterministic across runs).
    pub fn new(seed: u64) -> Self {
        Self {
            towers: Vec::new(),
            free: Vec::new(),
            rng: SplitMix64::new(seed),
            _aug: PhantomData,
        }
    }

    /// Pre-allocate arena capacity.
    pub fn with_capacity(seed: u64, cap: usize) -> Self {
        let mut s = Self::new(seed);
        s.towers.reserve(cap);
        s
    }

    /// Number of towers ever allocated (live + free-listed).
    pub fn arena_len(&self) -> usize {
        self.towers.len()
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    fn alloc(&mut self, base: A::Value, self_cycle: bool) -> NodeId {
        let words = A::pack(base);
        if let Some(id) = self.free.pop() {
            let h = self.towers[id as usize].height as usize;
            let t = &self.towers[id as usize];
            for l in 0..h {
                let p = if self_cycle { id } else { NIL };
                t.ptrs[2 * l].store(p, Ordering::Relaxed);
                t.ptrs[2 * l + 1].store(p, Ordering::Relaxed);
                t.vals[2 * l].store(words[0], Ordering::Relaxed);
                t.vals[2 * l + 1].store(words[1], Ordering::Relaxed);
            }
            return id;
        }
        let id = self.towers.len() as NodeId;
        assert!(id != NIL, "skip list arena exhausted u32 ids");
        let h = SplitMix64::geometric_height(self.rng.next_u64(), MAX_HEIGHT) as usize;
        let p = if self_cycle { id } else { NIL };
        let ptrs: Box<[AtomicU32]> = (0..2 * h).map(|_| AtomicU32::new(p)).collect();
        let vals: Box<[AtomicU64]> = (0..2 * h).map(|i| AtomicU64::new(words[i & 1])).collect();
        self.towers.push(Tower {
            ptrs,
            vals,
            height: h as u8,
        });
        id
    }

    /// Allocate a node forming its own singleton cycle (self-linked at every
    /// level; every level's value equals `base`).
    pub fn create_singleton(&mut self, base: A::Value) -> NodeId {
        self.alloc(base, true)
    }

    /// Allocate a detached node (`NIL` links). It must be spliced into a
    /// cycle by a subsequent [`SkipList::batch_reconnect`] before any other
    /// operation touches it.
    pub fn create_detached(&mut self, base: A::Value) -> NodeId {
        self.alloc(base, false)
    }

    /// Return nodes to the free list. Their links/values become garbage;
    /// callers must have spliced them out of every cycle first.
    pub fn free_nodes(&mut self, ids: &[NodeId]) {
        self.free.extend_from_slice(ids);
    }

    // ------------------------------------------------------------------
    // Raw accessors
    // ------------------------------------------------------------------

    /// Tower height of `id` (levels `0..height`).
    #[inline]
    pub fn height(&self, id: NodeId) -> u8 {
        self.towers[id as usize].height
    }

    /// Right (successor) link at `level`.
    #[inline]
    pub fn right(&self, id: NodeId, level: usize) -> NodeId {
        self.towers[id as usize].ptrs[2 * level].load(Ordering::Relaxed)
    }

    /// Left (predecessor) link at `level`.
    #[inline]
    pub fn left(&self, id: NodeId, level: usize) -> NodeId {
        self.towers[id as usize].ptrs[2 * level + 1].load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn set_right(&self, id: NodeId, level: usize, to: NodeId) {
        self.towers[id as usize].ptrs[2 * level].store(to, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn set_left(&self, id: NodeId, level: usize, to: NodeId) {
        self.towers[id as usize].ptrs[2 * level + 1].store(to, Ordering::Relaxed);
    }

    /// Successor in tour order (level-0 right link).
    #[inline]
    pub fn successor(&self, id: NodeId) -> NodeId {
        self.right(id, 0)
    }

    /// Predecessor in tour order (level-0 left link).
    #[inline]
    pub fn predecessor(&self, id: NodeId) -> NodeId {
        self.left(id, 0)
    }

    /// Augmented value of `id` at `level`.
    #[inline]
    pub fn value_at(&self, id: NodeId, level: usize) -> A::Value {
        let t = &self.towers[id as usize];
        A::unpack([
            t.vals[2 * level].load(Ordering::Relaxed),
            t.vals[2 * level + 1].load(Ordering::Relaxed),
        ])
    }

    #[inline]
    pub(crate) fn store_value_at(&self, id: NodeId, level: usize, v: A::Value) {
        let w = A::pack(v);
        let t = &self.towers[id as usize];
        t.vals[2 * level].store(w[0], Ordering::Relaxed);
        t.vals[2 * level + 1].store(w[1], Ordering::Relaxed);
    }

    /// Base (level-0) value of `id`.
    #[inline]
    pub fn value(&self, id: NodeId) -> A::Value {
        self.value_at(id, 0)
    }

    // ------------------------------------------------------------------
    // Walks
    // ------------------------------------------------------------------

    /// Walking left at `level` from `start` (inclusive), return the first
    /// tower of height ≥ `min_h`, or `None` after wrapping the full cycle.
    #[inline]
    pub(crate) fn scan_left_tall(&self, start: NodeId, level: usize, min_h: u8) -> Option<NodeId> {
        let mut cur = start;
        loop {
            if self.height(cur) >= min_h {
                return Some(cur);
            }
            cur = self.left(cur, level);
            debug_assert!(cur != NIL, "scan_left_tall hit NIL: broken cycle");
            if cur == start {
                return None;
            }
        }
    }

    /// Mirror of [`SkipList::scan_left_tall`].
    #[inline]
    pub(crate) fn scan_right_tall(&self, start: NodeId, level: usize, min_h: u8) -> Option<NodeId> {
        let mut cur = start;
        loop {
            if self.height(cur) >= min_h {
                return Some(cur);
            }
            cur = self.right(cur, level);
            debug_assert!(cur != NIL, "scan_right_tall hit NIL: broken cycle");
            if cur == start {
                return None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Representatives and aggregates
    // ------------------------------------------------------------------

    /// Canonical representative of the cycle containing `id`: the minimum
    /// node id among the towers of maximal height in the cycle.
    /// `O(lg n)` expected; deterministic while the cycle is unchanged.
    /// Invalidated by any batch mutation of the cycle.
    pub fn find_rep(&self, id: NodeId) -> NodeId {
        let mut cur = id;
        loop {
            let h = self.height(cur);
            let l = (h - 1) as usize;
            // Scan the level-l cycle leftwards for a strictly taller tower,
            // remembering the minimum id in case this is already the top.
            let mut min_id = cur;
            let mut node = self.left(cur, l);
            let mut taller = NIL;
            while node != cur {
                debug_assert!(node != NIL, "find_rep hit NIL: broken cycle");
                if self.height(node) > h {
                    taller = node;
                    break;
                }
                min_id = min_id.min(node);
                node = self.left(node, l);
            }
            if taller == NIL {
                return min_id;
            }
            cur = taller;
        }
    }

    /// True when `a` and `b` belong to the same cycle.
    pub fn same_cycle(&self, a: NodeId, b: NodeId) -> bool {
        self.find_rep(a) == self.find_rep(b)
    }

    /// Aggregate of all base values in the cycle containing `id`.
    /// `O(lg n)` expected.
    pub fn aggregate(&self, id: NodeId) -> A::Value {
        let rep = self.find_rep(id);
        let l = (self.height(rep) - 1) as usize;
        let mut sum = self.value_at(rep, l);
        let mut cur = self.right(rep, l);
        while cur != rep {
            debug_assert!(cur != NIL);
            sum = A::combine(sum, self.value_at(cur, l));
            cur = self.right(cur, l);
        }
        sum
    }

    /// Number of bottom-level elements in the cycle containing `id`
    /// (walks the whole cycle: test/diagnostic use only).
    pub fn cycle_len(&self, id: NodeId) -> usize {
        let mut n = 1;
        let mut cur = self.successor(id);
        while cur != id {
            debug_assert!(cur != NIL);
            n += 1;
            cur = self.successor(cur);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aug::CountAug;

    #[test]
    fn singleton_is_self_cycle() {
        let mut sl = SkipList::<CountAug>::new(1);
        let a = sl.create_singleton(5);
        for l in 0..sl.height(a) as usize {
            assert_eq!(sl.right(a, l), a);
            assert_eq!(sl.left(a, l), a);
            assert_eq!(sl.value_at(a, l), 5);
        }
        assert_eq!(sl.find_rep(a), a);
        assert_eq!(sl.aggregate(a), 5);
        assert_eq!(sl.cycle_len(a), 1);
    }

    #[test]
    fn detached_has_nil_links() {
        let mut sl = SkipList::<CountAug>::new(2);
        let a = sl.create_detached(3);
        assert_eq!(sl.right(a, 0), NIL);
        assert_eq!(sl.left(a, 0), NIL);
        assert_eq!(sl.value(a), 3);
    }

    #[test]
    fn free_list_recycles_ids() {
        let mut sl = SkipList::<CountAug>::new(3);
        let a = sl.create_singleton(1);
        let h = sl.height(a);
        sl.free_nodes(&[a]);
        let b = sl.create_singleton(9);
        assert_eq!(a, b, "free list should hand back the same id");
        assert_eq!(sl.height(b), h, "height is retained on reuse");
        assert_eq!(sl.aggregate(b), 9, "values fully reset");
        assert_eq!(sl.cycle_len(b), 1);
    }

    #[test]
    fn heights_are_geometricish() {
        let mut sl = SkipList::<CountAug>::new(4);
        let n = 1 << 14;
        let mut ones = 0;
        for _ in 0..n {
            let id = sl.create_singleton(0);
            if sl.height(id) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "height-1 fraction {frac}");
    }
}
