//! # dyncon-skiplist
//!
//! A phase-concurrent, augmented, **cyclic** skip list — the substrate of the
//! batch-parallel Euler tour trees of Tseng, Dhulipala and Blelloch
//! (ALENEX 2019), which in turn underlie the SPAA 2019 parallel
//! batch-dynamic connectivity structure reproduced by this workspace.
//!
//! ## Structure
//!
//! Every element is a *tower* with a height drawn geometrically
//! (`P[h ≥ k+1 | h ≥ k] = 1/2`, Pugh-style). A tower of height `h`
//! participates in doubly linked **cyclic** lists at levels `0..h`. The
//! elements of the structure are partitioned into disjoint cycles — one per
//! Euler tour. There is no global head: any member identifies its cycle, and
//! [`SkipList::find_rep`] returns a canonical member (deterministic while the
//! cycle is unchanged).
//!
//! ## Augmentation
//!
//! Each tower stores one augmented value per level, where
//! `value[0]` is the element's base value and `value[l]` aggregates
//! `value[l-1]` over the tower's *covering segment*: the run of level-`(l-1)`
//! towers from itself (inclusive) to the next tower of height `> l`
//! (exclusive). The cycle-wide aggregate is the combination of the top-level
//! values ([`SkipList::aggregate`]), and a weighted prefix of the cycle can
//! be located in `O(lg n + output)` time ([`SkipList::collect_prefix`]).
//!
//! ## Batch operations and phase concurrency
//!
//! [`SkipList::batch_reconnect`] applies a batch of bottom-level cuts and
//! links in `O(k lg(1 + n/k))` expected work and `O(lg n)` depth w.h.p.,
//! matching Theorem 2 of the paper. It is structured as barrier-separated
//! parallel phases, one per level: at level `l` every *seam* (position whose
//! bottom neighbourhood changed) locates its anchors — the nearest towers of
//! height `> l` on each side, using the already-repaired level `l-1`
//! pointers — links them, and recomputes the left anchor's level-`l` value.
//! Distinct seams may discover the *same* anchor pair; they then write
//! byte-identical words, so the races are benign (values are stored as
//! atomic `u64` words).

pub mod aug;
pub mod list;
pub mod reconnect;
pub mod search;
pub mod validate;

pub use aug::{Augmentation, CountAug, PairAug, UnitAug};
pub use list::{NodeId, SkipList, NIL};
