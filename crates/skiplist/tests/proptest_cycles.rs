//! Property-based testing of the skip list: arbitrary cut/stitch
//! rearrangements (generated as permutations so they are always valid)
//! must preserve full structural integrity; failures shrink to minimal
//! rearrangement sequences.

use dyncon_skiplist::{CountAug, NodeId, SkipList};
use proptest::prelude::*;

/// Apply a rearrangement described by cut positions and a rotation of the
/// resulting fragments, mirroring it into the model.
fn apply(
    sl: &mut SkipList<CountAug>,
    cycles: &mut Vec<Vec<NodeId>>,
    cut_bits: &[bool],
    rot: usize,
) {
    let mut cuts = Vec::new();
    let mut fragments: Vec<Vec<NodeId>> = Vec::new();
    let mut untouched = Vec::new();
    let mut bit = cut_bits.iter().copied().cycle();
    for cycle in cycles.drain(..) {
        let n = cycle.len();
        let positions: Vec<usize> = (0..n).filter(|_| bit.next().unwrap()).collect();
        if positions.is_empty() {
            untouched.push(cycle);
            continue;
        }
        for w in 0..positions.len() {
            let start = (positions[w] + 1) % n;
            let end = positions[(w + 1) % positions.len()];
            let mut frag = Vec::new();
            let mut i = start;
            loop {
                frag.push(cycle[i]);
                if i == end {
                    break;
                }
                i = (i + 1) % n;
            }
            fragments.push(frag);
        }
        cuts.extend(positions.iter().map(|&p| cycle[p]));
    }
    if fragments.is_empty() {
        *cycles = untouched;
        return;
    }
    // Rotate fragments by `rot`: a single permutation cycle, so the result
    // is one merged cycle from all fragments (plus untouched cycles).
    let m = fragments.len();
    let rot = 1 + rot % m.max(1);
    let sigma: Vec<usize> = (0..m).map(|i| (i + rot) % m).collect();
    let links: Vec<(NodeId, NodeId)> = (0..m)
        .map(|i| (*fragments[i].last().unwrap(), fragments[sigma[i]][0]))
        .collect();
    let mut seen = vec![false; m];
    let mut new_cycles = untouched;
    for s in 0..m {
        if seen[s] {
            continue;
        }
        let mut cyc = Vec::new();
        let mut i = s;
        loop {
            seen[i] = true;
            cyc.extend_from_slice(&fragments[i]);
            i = sigma[i];
            if i == s {
                break;
            }
        }
        new_cycles.push(cyc);
    }
    *cycles = new_cycles;
    sl.batch_reconnect(&cuts, &links);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rearrangements_preserve_integrity(
        n in 2usize..40,
        steps in prop::collection::vec(
            (prop::collection::vec(any::<bool>(), 1..16), any::<usize>()),
            1..8,
        ),
        values in prop::collection::vec(0u64..5, 40),
    ) {
        let mut sl = SkipList::<CountAug>::new(42);
        let nodes: Vec<NodeId> = (0..n).map(|i| sl.create_detached(values[i])).collect();
        let links: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (nodes[i], nodes[(i + 1) % n])).collect();
        sl.batch_reconnect(&[], &links);
        let mut cycles = vec![nodes.clone()];
        for (bits, rot) in &steps {
            apply(&mut sl, &mut cycles, bits, *rot);
            sl.validate(&cycles).map_err(TestCaseError::fail)?;
        }
        // Aggregates survive arbitrary rearrangement.
        let total: u64 = values[..n].iter().sum();
        let got: u64 = cycles.iter().map(|c| sl.aggregate(c[0])).sum();
        prop_assert_eq!(got, total);
    }

    #[test]
    fn value_updates_any_subset(
        n in 2usize..32,
        upd in prop::collection::vec((0usize..32, 0u64..100), 1..20),
    ) {
        let mut sl = SkipList::<CountAug>::new(7);
        let nodes: Vec<NodeId> = (0..n).map(|_| sl.create_detached(1)).collect();
        let links: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (nodes[i], nodes[(i + 1) % n])).collect();
        sl.batch_reconnect(&[], &links);
        let mut model: Vec<u64> = vec![1; n];
        // Dedup within a batch (the API contract).
        let mut batch: Vec<(NodeId, u64)> = Vec::new();
        for &(i, v) in &upd {
            let i = i % n;
            if !batch.iter().any(|&(nd, _)| nd == nodes[i]) {
                batch.push((nodes[i], v));
                model[i] = v;
            }
        }
        sl.batch_update_values(&batch);
        sl.validate(std::slice::from_ref(&nodes)).map_err(TestCaseError::fail)?;
        prop_assert_eq!(sl.aggregate(nodes[0]), model.iter().sum::<u64>());
    }
}
