//! Model-based randomized testing of the cyclic skip list.
//!
//! The model is a plain `Vec` of cycles (each a `Vec<NodeId>` in tour
//! order). Every round we pick a random set of cut positions, stitch the
//! resulting fragments back together along a random permutation (which is
//! exactly the class of rearrangements `batch_reconnect` supports), mirror
//! the rearrangement in the model, and run the full structural validator.

use dyncon_primitives::SplitMix64;
use dyncon_skiplist::{CountAug, NodeId, SkipList};

struct Model {
    cycles: Vec<Vec<NodeId>>,
}

/// Apply one random reconnect batch to both structure and model.
fn random_reconnect(sl: &mut SkipList<CountAug>, model: &mut Model, rng: &mut SplitMix64) {
    // Choose cut positions: each element independently with prob ~ 1/4.
    let mut cuts: Vec<NodeId> = Vec::new();
    let mut fragments: Vec<Vec<NodeId>> = Vec::new();
    let mut untouched: Vec<Vec<NodeId>> = Vec::new();
    for cycle in model.cycles.drain(..) {
        let n = cycle.len();
        let mut positions: Vec<usize> = (0..n).filter(|_| rng.next_below(4) == 0).collect();
        if positions.is_empty() {
            untouched.push(cycle);
            continue;
        }
        // Cut after each chosen position; fragments run between cuts.
        for w in 0..positions.len() {
            let start = (positions[w] + 1) % n;
            let end = positions[(w + 1) % positions.len()]; // inclusive
            let mut frag = Vec::new();
            let mut i = start;
            loop {
                frag.push(cycle[i]);
                if i == end {
                    break;
                }
                i = (i + 1) % n;
            }
            fragments.push(frag);
        }
        cuts.extend(positions.drain(..).map(|p| cycle[p]));
    }
    if fragments.is_empty() {
        model.cycles = untouched;
        return;
    }
    // Random permutation over fragments: tail(i) links to head(sigma(i)).
    let m = fragments.len();
    let mut sigma: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = rng.next_below((i + 1) as u64) as usize;
        sigma.swap(i, j);
    }
    let links: Vec<(NodeId, NodeId)> = (0..m)
        .map(|i| (*fragments[i].last().unwrap(), fragments[sigma[i]][0]))
        .collect();
    // New model cycles: follow the permutation's cycles.
    let mut seen = vec![false; m];
    let mut new_cycles = untouched;
    for s in 0..m {
        if seen[s] {
            continue;
        }
        let mut cyc = Vec::new();
        let mut i = s;
        loop {
            seen[i] = true;
            cyc.extend_from_slice(&fragments[i]);
            i = sigma[i];
            if i == s {
                break;
            }
        }
        new_cycles.push(cyc);
    }
    model.cycles = new_cycles;
    sl.batch_reconnect(&cuts, &links);
}

fn random_value_update(sl: &mut SkipList<CountAug>, rng: &mut SplitMix64, all: &[NodeId]) {
    let mut updates: Vec<(NodeId, u64)> = Vec::new();
    for &n in all {
        if rng.next_below(5) == 0 {
            updates.push((n, rng.next_below(10)));
        }
    }
    sl.batch_update_values(&updates);
}

fn check_prefixes(sl: &SkipList<CountAug>, model: &Model, rng: &mut SplitMix64) {
    for cycle in &model.cycles {
        if rng.next_below(4) != 0 {
            continue;
        }
        let rep = sl.find_rep(cycle[0]);
        // Tour order from rep according to the model.
        let start = cycle.iter().position(|&n| n == rep).expect("rep in cycle");
        let order: Vec<NodeId> = (0..cycle.len())
            .map(|i| cycle[(start + i) % cycle.len()])
            .collect();
        let need = 1 + rng.next_below(20);
        let got = sl.collect_prefix(cycle[0], need, &|v| v);
        let mut expect = Vec::new();
        let mut rem = need;
        for &n in &order {
            if rem == 0 {
                break;
            }
            let w = sl.value(n);
            if w > 0 {
                let t = rem.min(w);
                expect.push((n, t));
                rem -= t;
            }
        }
        assert_eq!(got, expect);
    }
}

fn run_model_test(seed: u64, n_nodes: usize, rounds: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut sl = SkipList::<CountAug>::new(seed ^ 0xABCD);
    // Start as one big cycle plus a handful of singletons.
    let all: Vec<NodeId> = (0..n_nodes)
        .map(|i| sl.create_detached(i as u64 % 4))
        .collect();
    let links: Vec<(NodeId, NodeId)> = (0..n_nodes)
        .map(|i| (all[i], all[(i + 1) % n_nodes]))
        .collect();
    sl.batch_reconnect(&[], &links);
    let mut model = Model {
        cycles: vec![all.clone()],
    };
    sl.validate(&model.cycles).expect("initial validate");

    for round in 0..rounds {
        random_reconnect(&mut sl, &mut model, &mut rng);
        if round % 3 == 1 {
            random_value_update(&mut sl, &mut rng, &all);
        }
        if let Err(e) = sl.validate(&model.cycles) {
            panic!("round {round} (seed {seed}): {e}");
        }
        check_prefixes(&sl, &model, &mut rng);
        // Spot-check connectivity semantics between random node pairs.
        for _ in 0..8 {
            let a = all[rng.next_below(n_nodes as u64) as usize];
            let b = all[rng.next_below(n_nodes as u64) as usize];
            let same_model = model
                .cycles
                .iter()
                .any(|c| c.contains(&a) && c.contains(&b));
            assert_eq!(sl.same_cycle(a, b), same_model, "round {round}: {a} ~ {b}");
        }
    }
}

#[test]
fn model_small_many_rounds() {
    run_model_test(1, 40, 60);
}

#[test]
fn model_medium() {
    run_model_test(2, 300, 30);
}

#[test]
fn model_large_few_rounds() {
    run_model_test(3, 3000, 8);
}

#[test]
fn model_more_seeds() {
    for seed in 10..18 {
        run_model_test(seed, 120, 12);
    }
}

#[test]
fn repeated_splits_and_merges_of_pairs() {
    // Degenerate sizes: exercise 1- and 2-element cycles heavily.
    let mut sl = SkipList::<CountAug>::new(77);
    let a = sl.create_singleton(1);
    let b = sl.create_singleton(2);
    for _ in 0..20 {
        // merge
        sl.batch_reconnect(&[a, b], &[(a, b), (b, a)]);
        sl.validate(&[vec![a, b]]).unwrap();
        assert_eq!(sl.aggregate(a), 3);
        // split back into singletons
        sl.batch_reconnect(&[a, b], &[(a, a), (b, b)]);
        sl.validate(&[vec![a], vec![b]]).unwrap();
        assert_eq!(sl.aggregate(a), 1);
        assert_eq!(sl.aggregate(b), 2);
    }
}
