//! Differential model tests: a [`ShardedBackend`] over the paper
//! structure, at several shard counts and both partition kinds, must
//! agree **byte-for-byte** with the single-backend naive oracle on
//! mixed-op batches that deliberately span shard boundaries.

use dyncon_api::{BatchDynamic, Connectivity, ExportEdges, Op};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_metrics::Registry;
use dyncon_primitives::SplitMix64;
use dyncon_shard::{ShardConfig, ShardMapKind, ShardedBackend};
use dyncon_spanning::NaiveDynamicGraph;

fn sharded(
    n: usize,
    shards: usize,
    kind: ShardMapKind,
) -> ShardedBackend<BatchDynamicConnectivity> {
    let config = ShardConfig::new()
        .shards(shards)
        .kind(kind)
        .shard_worker_threads(2);
    ShardedBackend::start(n, &config, Registry::new()).expect("start sharded backend")
}

/// A mixed-op batch stream biased toward boundary-crossing edges: under
/// a range partition of 24 vertices into `shards` shards, endpoints are
/// drawn uniformly, so roughly `1 - 1/shards` of edges cross.
fn mixed_batches(n: u32, seed: u64, batches: usize, per_batch: usize) -> Vec<Vec<Op>> {
    let rng = SplitMix64::new(seed);
    let mut at = 0u64;
    let mut next = || {
        at += 1;
        rng.at(at)
    };
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    let u = (next() % n as u64) as u32;
                    let mut v = (next() % n as u64) as u32;
                    if u == v {
                        v = (v + 1) % n;
                    }
                    match next() % 10 {
                        0..=4 => Op::Insert(u, v),
                        5..=6 => Op::Delete(u, v),
                        _ => Op::Query(u, v),
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn agrees_with_naive_oracle_across_shard_counts_and_kinds() {
    let n = 24usize;
    for kind in [ShardMapKind::Range, ShardMapKind::Hash] {
        for shards in [1usize, 2, 3, 5] {
            let mut sut = sharded(n, shards, kind);
            let mut oracle = NaiveDynamicGraph::new(n);
            for (i, batch) in mixed_batches(n as u32, 0xC0FFEE, 12, 40).iter().enumerate() {
                let got = sut.apply(batch).expect("sharded apply");
                let want = oracle.apply(batch).expect("oracle apply");
                assert_eq!(
                    got, want,
                    "batch {i} diverged at {kind:?} x {shards} shards"
                );
                assert_eq!(
                    sut.export_edges(),
                    oracle.export_edges(),
                    "edge set diverged at batch {i}, {kind:?} x {shards} shards"
                );
                assert_eq!(
                    sut.num_components(),
                    oracle.num_components(),
                    "component count diverged at batch {i}, {kind:?} x {shards}"
                );
            }
            sut.check().expect("sharded invariants");
            sut.shutdown().expect("clean shutdown");
        }
    }
}

#[test]
fn component_size_spans_shards() {
    // Path 0-1-2-3-4-5 under a 3-shard range partition of 6 vertices:
    // every component is glued out of per-shard pieces.
    let mut sut = sharded(6, 3, ShardMapKind::Range);
    let mut oracle = NaiveDynamicGraph::new(6);
    let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5)];
    assert_eq!(sut.batch_insert(&edges).unwrap(), 5);
    // The oracle's inherent batch methods shadow the trait's; qualify.
    BatchDynamic::batch_insert(&mut oracle, &edges).unwrap();
    for v in 0..6u32 {
        assert_eq!(
            sut.component_size(v),
            Connectivity::component_size(&oracle, v),
            "vertex {v}"
        );
    }
    // Cut the middle; sizes split 3 + 3.
    assert_eq!(sut.batch_delete(&[(2, 3)]).unwrap(), 1);
    BatchDynamic::batch_delete(&mut oracle, &[(2, 3)]).unwrap();
    for v in 0..6u32 {
        assert_eq!(
            sut.component_size(v),
            Connectivity::component_size(&oracle, v),
            "vertex {v}"
        );
    }
    assert_eq!(sut.num_components(), 2);
    sut.shutdown().expect("clean shutdown");
}

#[test]
fn byte_identical_results_across_shard_and_thread_counts() {
    // The determinism claim at the backend layer: the full BatchResult
    // stream must be byte-identical for every (shards, threads) pair.
    let n = 20usize;
    let batches = mixed_batches(n as u32, 0xDECADE, 8, 32);
    let mut reference = None;
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 2, 4] {
            let config = ShardConfig::new()
                .shards(shards)
                .kind(ShardMapKind::Hash)
                .shard_worker_threads(threads);
            let mut sut: ShardedBackend<BatchDynamicConnectivity> =
                ShardedBackend::start(n, &config, Registry::new()).unwrap();
            let results: Vec<_> = batches
                .iter()
                .map(|b| sut.apply(b).expect("apply"))
                .collect();
            match &reference {
                None => reference = Some(results),
                Some(want) => assert_eq!(
                    &results, want,
                    "results diverged at {shards} shards x {threads} threads"
                ),
            }
            sut.shutdown().expect("clean shutdown");
        }
    }
}

#[test]
fn rejects_out_of_range_vertices_without_partial_application() {
    let mut sut = sharded(8, 2, ShardMapKind::Range);
    let err = sut
        .apply(&[Op::Insert(0, 1), Op::Insert(3, 99)])
        .unwrap_err();
    assert!(matches!(
        err,
        dyncon_shard::DynConError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 8
        }
    ));
    // Validation is up-front: the in-range insert must not have landed.
    assert_eq!(sut.export_edges(), Vec::new());
    assert_eq!(sut.num_components(), 8);
    sut.shutdown().expect("clean shutdown");
}

#[test]
fn query_runs_observe_exactly_the_preceding_mutations() {
    // Mixed kinds inside one mutation segment, queries between runs —
    // the same run-boundary semantics as the default `apply`.
    let mut sut = sharded(10, 2, ShardMapKind::Range);
    let result = sut
        .apply(&[
            Op::Insert(0, 9), // cross under a 2-way range split of 10
            Op::Insert(0, 1), // intra shard 0
            Op::Query(1, 9),  // true: 1-0-9
            Op::Delete(0, 9),
            Op::Query(1, 9), // false again
            Op::Query(0, 1), // still true
        ])
        .unwrap();
    assert_eq!(result.inserted, 2);
    assert_eq!(result.deleted, 1);
    assert_eq!(result.answers, vec![true, false, true]);
    sut.shutdown().expect("clean shutdown");
}
