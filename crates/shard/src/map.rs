//! The deterministic vertex-to-shard partition.

use dyncon_api::{Builder, DynConError};
use dyncon_primitives::SplitMix64;

/// Fixed seed of the hash partition. A constant (not an RNG state) so the
/// same `(num_vertices, shards)` pair always yields the same partition —
/// shard assignment is part of the durable topology, not of any run.
const HASH_SEED: u64 = 0x05EE_D0F5_A4D5;

/// How vertices are assigned to shards.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardMapKind {
    /// Contiguous balanced ranges: shard sizes differ by at most one and
    /// vertex order is preserved. Best when vertex ids carry locality
    /// (edges between nearby ids stay intra-shard).
    Range,
    /// SplitMix64 hash of the vertex id, mod shard count. Spreads any id
    /// distribution evenly; adjacent ids usually land on different
    /// shards, so expect more cross-shard edges on local graphs.
    Hash,
}

/// A precomputed, deterministic partition of the dense vertex universe
/// `0..num_vertices` into `shards` non-empty-capable groups, with the
/// global↔local id translation both directions of the coordinator need.
///
/// Local ids within a shard are assigned in ascending global order, so
/// the global→local map is strictly increasing per shard — which is what
/// keeps locally-normalized, locally-sorted edge exports normalized and
/// sorted after translation back to global ids.
#[derive(Clone, Debug)]
pub struct ShardMap {
    num_vertices: usize,
    kind: ShardMapKind,
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    globals: Vec<Vec<u32>>,
}

impl ShardMap {
    /// Build the partition. `num_vertices` obeys the builder's limits;
    /// `shards` must be at least 1 and at most `num_vertices` (an empty
    /// shard would serve no vertex at all).
    pub fn new(
        num_vertices: usize,
        shards: usize,
        kind: ShardMapKind,
    ) -> Result<Self, DynConError> {
        Builder::new(num_vertices).validate()?;
        if shards == 0 || shards > num_vertices {
            return Err(DynConError::InvalidVertexCount { requested: shards });
        }
        let mut shard_of = vec![0u32; num_vertices];
        match kind {
            ShardMapKind::Range => {
                // Balanced contiguous ranges: the first `rem` shards get
                // one extra vertex.
                let (base, rem) = (num_vertices / shards, num_vertices % shards);
                let mut v = 0usize;
                for s in 0..shards {
                    let size = base + usize::from(s < rem);
                    shard_of[v..v + size].fill(s as u32);
                    v += size;
                }
            }
            ShardMapKind::Hash => {
                let rng = SplitMix64::new(HASH_SEED);
                for (v, slot) in shard_of.iter_mut().enumerate() {
                    *slot = (rng.at(v as u64) % shards as u64) as u32;
                }
            }
        }
        let mut local_of = vec![0u32; num_vertices];
        let mut globals = vec![Vec::new(); shards];
        for v in 0..num_vertices {
            let s = shard_of[v] as usize;
            local_of[v] = globals[s].len() as u32;
            globals[s].push(v as u32);
        }
        Ok(Self {
            num_vertices,
            kind,
            shard_of,
            local_of,
            globals,
        })
    }

    /// Size of the global vertex universe.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.globals.len()
    }

    /// The partition scheme.
    pub fn kind(&self) -> ShardMapKind {
        self.kind
    }

    /// Which shard owns global vertex `v`.
    pub fn shard_of(&self, v: u32) -> usize {
        self.shard_of[v as usize] as usize
    }

    /// `v`'s dense local id within its shard.
    pub fn local_of(&self, v: u32) -> u32 {
        self.local_of[v as usize]
    }

    /// How many vertices shard `s` owns.
    pub fn shard_size(&self, s: usize) -> usize {
        self.globals[s].len()
    }

    /// Shard `s`'s vertices in ascending global order — index by local id
    /// to translate back to global.
    pub fn globals(&self, s: usize) -> &[u32] {
        &self.globals[s]
    }

    /// True iff the edge `(u, v)` spans two shards.
    pub fn is_cross(&self, u: u32, v: u32) -> bool {
        self.shard_of[u as usize] != self.shard_of[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_partition_is_balanced_and_ordered() {
        let m = ShardMap::new(10, 3, ShardMapKind::Range).unwrap();
        assert_eq!(m.num_shards(), 3);
        // 10 = 4 + 3 + 3.
        assert_eq!(
            (m.shard_size(0), m.shard_size(1), m.shard_size(2)),
            (4, 3, 3)
        );
        assert_eq!(m.globals(0), &[0, 1, 2, 3]);
        assert_eq!(m.globals(1), &[4, 5, 6]);
        assert_eq!(m.globals(2), &[7, 8, 9]);
        assert_eq!(m.shard_of(4), 1);
        assert_eq!(m.local_of(4), 0);
        assert!(m.is_cross(3, 4) && !m.is_cross(4, 6));
    }

    #[test]
    fn hash_partition_is_total_and_reproducible() {
        let a = ShardMap::new(257, 4, ShardMapKind::Hash).unwrap();
        let b = ShardMap::new(257, 4, ShardMapKind::Hash).unwrap();
        let mut seen = 0usize;
        for s in 0..4 {
            assert_eq!(a.globals(s), b.globals(s), "partition is deterministic");
            seen += a.shard_size(s);
            // Round-trip: global -> (shard, local) -> global.
            for (local, &g) in a.globals(s).iter().enumerate() {
                assert_eq!(a.shard_of(g), s);
                assert_eq!(a.local_of(g) as usize, local);
            }
        }
        assert_eq!(seen, 257, "every vertex is owned by exactly one shard");
        // The hash spreads 257 vertices over 4 shards reasonably evenly.
        for s in 0..4 {
            assert!(a.shard_size(s) > 32, "shard {s}: {}", a.shard_size(s));
        }
    }

    #[test]
    fn local_ids_ascend_with_global_ids() {
        // The monotonicity the edge-export translation relies on.
        for kind in [ShardMapKind::Range, ShardMapKind::Hash] {
            let m = ShardMap::new(64, 5, kind).unwrap();
            for s in 0..m.num_shards() {
                let g = m.globals(s);
                assert!(g.windows(2).all(|w| w[0] < w[1]), "{kind:?}");
            }
        }
    }

    #[test]
    fn one_shard_is_the_identity_partition() {
        let m = ShardMap::new(8, 1, ShardMapKind::Hash).unwrap();
        for v in 0..8u32 {
            assert_eq!((m.shard_of(v), m.local_of(v)), (0, v));
        }
    }

    #[test]
    fn rejects_unusable_shapes() {
        assert!(ShardMap::new(0, 1, ShardMapKind::Range).is_err());
        assert!(ShardMap::new(8, 0, ShardMapKind::Range).is_err());
        assert_eq!(
            ShardMap::new(4, 5, ShardMapKind::Hash).unwrap_err(),
            DynConError::InvalidVertexCount { requested: 5 }
        );
    }
}
