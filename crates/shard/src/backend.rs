//! The shard coordinator as a composable backend.
//!
//! [`ShardedBackend`] implements the workspace's own trait surface
//! ([`Connectivity`] + [`BatchDynamic`] + [`ExportEdges`]) over N
//! per-shard servers plus a cross-edge store, so the whole sharded
//! ensemble drops into anything that takes a backend — differential test
//! panels, snapshots, and (the intended use) an outer
//! [`ConnServer`](dyncon_server::ConnServer), which is exactly what
//! [`crate::ShardedServer`] wraps it in.

use crate::map::ShardMap;
use crate::metrics::ShardMetrics;
use crate::server::ShardConfig;
use dyncon_api::{
    component_groups, validate_vertex, BatchDynamic, BatchResult, BuildFrom, Builder, Connectivity,
    DynConError, ExportEdges, Op, OpKind,
};
use dyncon_durable::{DurableConfig, DurableServer};
use dyncon_metrics::Registry;
use dyncon_server::{ConnServer, ServerConfig, Ticket};
use dyncon_trace::{Stage, TraceRecorder};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The client id the coordinator submits every sub-batch under. The
/// coordinator is each shard server's *only* client, so canonical order
/// within a shard round is simply the coordinator's submission order.
const COORDINATOR: u64 = 0;

/// One shard's serving stack: an in-memory [`ConnServer`] or a
/// [`DurableServer`] with its own WAL/snapshot directory. Both run in
/// deterministic mode with the coordinator as sole client — a shard
/// round *is* one coordinator sub-batch, sealed explicitly.
enum ShardHandle<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    Mem(Box<ConnServer<B>>),
    Durable(Box<DurableServer<B>>),
}

impl<B> ShardHandle<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    fn submit_as(&self, client: u64, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        match self {
            ShardHandle::Mem(s) => s.submit_as(client, ops),
            ShardHandle::Durable(s) => s.submit_as(client, ops),
        }
    }

    fn seal_round(&self) -> usize {
        match self {
            ShardHandle::Mem(s) => s.seal_round(),
            ShardHandle::Durable(s) => s.seal_round(),
        }
    }

    fn inspect<R, F>(&self, f: F) -> Result<R, DynConError>
    where
        R: Send + 'static,
        F: FnOnce(&B) -> R + Send + 'static,
    {
        match self {
            ShardHandle::Mem(s) => s.inspect(f),
            ShardHandle::Durable(s) => s.inspect(f),
        }
    }

    fn join(self) -> Result<ShardShutdown<B>, DynConError> {
        match self {
            ShardHandle::Mem(s) => {
                let report = s.join();
                Ok(ShardShutdown {
                    backend: report.backend,
                    rounds_committed: report.rounds_committed,
                    ops_committed: report.ops_committed,
                    next_round: None,
                })
            }
            ShardHandle::Durable(s) => {
                let report = s.join()?;
                Ok(ShardShutdown {
                    backend: report.service.backend,
                    rounds_committed: report.service.rounds_committed,
                    ops_committed: report.service.ops_committed,
                    next_round: Some(report.next_round),
                })
            }
        }
    }
}

/// What one shard hands back at [`ShardedBackend::shutdown`].
#[derive(Debug)]
pub struct ShardShutdown<B> {
    /// The shard's backend over its **local** id space (translate via
    /// [`ShardMap::globals`]).
    pub backend: B,
    /// Sub-rounds this shard committed during this process lifetime.
    pub rounds_committed: u64,
    /// Operations this shard committed.
    pub ops_committed: u64,
    /// Durable shards: the round id the next open continues logging at.
    /// `None` for in-memory shards.
    pub next_round: Option<u64>,
}

/// The lazily rebuilt contraction of cross-shard connectivity.
///
/// Vertices ("boundary nodes") are the per-shard local components that
/// contain at least one cross-edge endpoint, identified by their
/// **representative**: the smallest local id among the component's
/// cross-edge endpoints. Node ids are assigned shard-major over the
/// ascending representative lists, and each cross edge contracts to the
/// edge between its endpoints' nodes — all canonical, so the rebuilt
/// graph is a pure function of the shard states and the cross-edge set.
struct BoundaryCache<B> {
    /// False whenever a mutation segment changed any edge set since the
    /// last rebuild.
    fresh: bool,
    /// Per shard: ascending local-id representatives of its boundary
    /// components.
    reps: Vec<Vec<u32>>,
    /// Node id of `reps[s][0]` (shard-major prefix sums).
    offsets: Vec<usize>,
    /// Total boundary nodes.
    nodes: usize,
    /// The contracted graph over `nodes` vertices (`None` when there are
    /// no cross edges at all).
    graph: Option<B>,
}

impl<B> BoundaryCache<B> {
    fn stale(shards: usize) -> Self {
        Self {
            fresh: false,
            reps: vec![Vec::new(); shards],
            offsets: vec![0; shards],
            nodes: 0,
            graph: None,
        }
    }
}

/// A sharded connectivity backend: the vertex universe is partitioned by
/// a deterministic [`ShardMap`], intra-shard edges live in per-shard
/// backends behind their own single-writer servers, cross-shard edges
/// live in a dedicated store, and global reachability is recombined
/// through the contracted boundary graph:
///
/// `u ~ v` globally iff they are locally connected in one shard, **or**
/// each is locally connected to some boundary component whose nodes are
/// connected in the contraction of the cross-edge set.
///
/// Mutations decompose into at most one sealed commit round per shard
/// per mutation segment (runs of non-query ops), executed in parallel by
/// the shards' own writer threads; queries resolve locally first and
/// fall back to the boundary graph. Determinism is end-to-end: canonical
/// shard iteration order, per-shard sealed rounds in deterministic mode,
/// and canonical boundary construction order make every
/// [`BatchResult`] byte-identical across thread and shard counts.
///
/// ### Caveat: no cross-shard atomic commit
///
/// A mutation segment that fails mid-way (e.g. one durable shard's WAL
/// hits a storage error) leaves the sub-rounds already committed by
/// *other* shards applied — the documented partial-application semantics
/// of [`BatchDynamic::apply`], per sub-batch instead of per run.
/// Two-phase commit across shard WALs is future work.
pub struct ShardedBackend<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    map: ShardMap,
    shards: Vec<ShardHandle<B>>,
    /// The cross-edge store: a B over the full **global** universe that
    /// holds exactly the edges whose endpoints live on different shards.
    /// Running it as a server (durable in durable mode) gives cross
    /// edges the same round/recovery semantics as shard edges.
    cross: ShardHandle<B>,
    boundary: Mutex<BoundaryCache<B>>,
    metrics: Arc<ShardMetrics>,
    /// The outer server's recorder (shared, not the shards'): the
    /// coordinator runs inside the outer writer's apply, so spans are
    /// attributed to [`TraceRecorder::current_round`], which that writer
    /// sets before each round.
    trace: Option<TraceRecorder>,
    supports: [bool; 3],
}

fn storage_err(path: &Path, e: std::io::Error) -> DynConError {
    DynConError::Storage {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// The durable topology manifest: shard assignment is part of durable
/// state, so reopening a base directory with a different vertex count,
/// shard count, or map kind must fail loudly instead of scattering the
/// recovered edges across a different partition.
fn check_manifest(base: &Path, map: &ShardMap) -> Result<(), DynConError> {
    let path = base.join("shard.manifest");
    let expect = format!(
        "dyncon-shard-v1\nnum_vertices={}\nshards={}\nkind={:?}\n",
        map.num_vertices(),
        map.num_shards(),
        map.kind()
    );
    match std::fs::read_to_string(&path) {
        Ok(found) if found == expect => Ok(()),
        Ok(found) => Err(DynConError::Corrupt {
            path: path.display().to_string(),
            offset: 0,
            detail: format!(
                "shard topology mismatch: directory was created as {:?}, reopened as {:?}",
                found.lines().skip(1).collect::<Vec<_>>(),
                expect.lines().skip(1).collect::<Vec<_>>()
            ),
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::create_dir_all(base).map_err(|e| storage_err(base, e))?;
            let tmp = base.join("shard.manifest.tmp");
            std::fs::write(&tmp, &expect).map_err(|e| storage_err(&tmp, e))?;
            std::fs::rename(&tmp, &path).map_err(|e| storage_err(&path, e))?;
            Ok(())
        }
        Err(e) => Err(storage_err(&path, e)),
    }
}

impl<B> ShardedBackend<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    /// Partition `num_vertices` per `config` and start every shard
    /// server (plus the cross-edge store), pooling all their metrics in
    /// `registry`. With [`ShardConfig::durable`] set, each shard opens
    /// (and recovers) its own WAL/snapshot directory under the base dir.
    pub fn start(
        num_vertices: usize,
        config: &ShardConfig,
        registry: Registry,
    ) -> Result<Self, DynConError> {
        let map = ShardMap::new(num_vertices, config.shards, config.kind)?;
        // Probe B's static capabilities once, so admission layers above
        // can filter without a live instance.
        let probe: B = Builder::new(1).build()?;
        let supports =
            [OpKind::Insert, OpKind::Delete, OpKind::Query].map(|kind| probe.supports(kind));
        drop(probe);
        let metrics = ShardMetrics::register(&registry);
        let server_config = || {
            // Always deterministic: a shard round is one coordinator
            // sub-batch, sealed explicitly — required for byte-identical
            // per-shard WAL replay, and free (sole client, no reordering).
            let c = ServerConfig::new()
                .deterministic(true)
                .queue_capacity(2)
                .metrics(registry.clone());
            match config.shard_worker_threads {
                Some(t) => c.worker_threads(t),
                None => c,
            }
        };
        let mut shards = Vec::with_capacity(map.num_shards());
        let cross = match &config.durable {
            None => {
                for s in 0..map.num_shards() {
                    // A hash partition can leave a shard without vertices;
                    // its backend still needs a non-empty universe (one
                    // dummy vertex no operation ever routes to).
                    let b: B = Builder::new(map.shard_size(s).max(1)).build()?;
                    shards.push(ShardHandle::Mem(Box::new(ConnServer::start(
                        b,
                        server_config(),
                    ))));
                }
                let b: B = Builder::new(num_vertices).build()?;
                ShardHandle::Mem(Box::new(ConnServer::start(b, server_config())))
            }
            Some(d) => {
                check_manifest(&d.dir, &map)?;
                let durable_config = DurableConfig::new()
                    .fsync(d.fsync)
                    .compact_on_join(d.compact_on_join);
                for s in 0..map.num_shards() {
                    let dir = d.dir.join(format!("shard-{s:03}"));
                    let (srv, _meta) = DurableServer::open(
                        &dir,
                        map.shard_size(s).max(1),
                        server_config(),
                        durable_config.clone(),
                    )?;
                    shards.push(ShardHandle::Durable(Box::new(srv)));
                }
                let (srv, _meta) = DurableServer::open(
                    &d.dir.join("cross"),
                    num_vertices,
                    server_config(),
                    durable_config,
                )?;
                ShardHandle::Durable(Box::new(srv))
            }
        };
        let boundary = Mutex::new(BoundaryCache::stale(map.num_shards()));
        Ok(Self {
            map,
            shards,
            cross,
            boundary,
            metrics,
            trace: config.trace.clone(),
            supports,
        })
    }

    /// The partition in force.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The coordinator's metric handles (pooled in the registry passed
    /// to [`ShardedBackend::start`]).
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    /// Stop every shard server (and the cross store), returning their
    /// backends and counters in canonical shard order.
    pub fn shutdown(self) -> Result<ShardedShutdown<B>, DynConError> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for handle in self.shards {
            shards.push(handle.join()?);
        }
        let cross = self.cross.join()?;
        Ok(ShardedShutdown { shards, cross })
    }

    /// Translate a mutation op's endpoints to a shard's local id space.
    fn to_local(&self, op: Op) -> Op {
        let (u, v) = op.endpoints();
        let (lu, lv) = (self.map.local_of(u), self.map.local_of(v));
        match op {
            Op::Insert(..) => Op::Insert(lu, lv),
            Op::Delete(..) => Op::Delete(lu, lv),
            Op::Query(..) => Op::Query(lu, lv),
        }
    }

    /// Execute one mutation segment (a run of non-query ops): decompose
    /// into per-shard sub-batches plus the cross-shard batch, submit and
    /// seal each as one commit round in canonical shard order, run them
    /// in parallel on the shards' writer threads, then wait every ticket
    /// (canonical order again) and sum the round counts.
    fn run_mutation_segment(&self, segment: &[Op]) -> Result<(usize, usize), DynConError> {
        // Spans attribute to the outer round in flight: the segment runs
        // inside the outer writer's apply, which set `current_round`.
        let round = self.trace.as_ref().map(|t| t.current_round());
        let started = Instant::now();
        let mut per_shard: Vec<Vec<Op>> = vec![Vec::new(); self.map.num_shards()];
        let mut cross_ops: Vec<Op> = Vec::new();
        for &op in segment {
            let (u, v) = op.endpoints();
            if self.map.is_cross(u, v) {
                cross_ops.push(op);
            } else {
                per_shard[self.map.shard_of(u)].push(self.to_local(op));
            }
        }
        self.metrics.decompose_ns.record_duration(started.elapsed());
        if let (Some(t), Some(round)) = (&self.trace, round) {
            t.record(round, Stage::Decompose, started, segment.len() as u64);
        }
        // (ticket, shard id or None for the cross store, submit instant,
        // sub-batch size) — the instant is only taken when tracing.
        let mut tickets = Vec::new();
        for (s, ops) in per_shard.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let ops_n = ops.len() as u64;
            let submitted = self.trace.as_ref().map(|_| Instant::now());
            let ticket = self.shards[s].submit_as(COORDINATOR, ops)?;
            self.shards[s].seal_round();
            self.metrics.subrounds.inc();
            tickets.push((ticket, Some(s as u32), submitted, ops_n));
        }
        if !cross_ops.is_empty() {
            let ops_n = cross_ops.len() as u64;
            let submitted = self.trace.as_ref().map(|_| Instant::now());
            let ticket = self.cross.submit_as(COORDINATOR, cross_ops)?;
            self.cross.seal_round();
            self.metrics.subrounds.inc();
            tickets.push((ticket, None, submitted, ops_n));
        }
        let (mut inserted, mut deleted) = (0usize, 0usize);
        for (ticket, shard, submitted, ops_n) in tickets {
            // The coordinator's sub-batch is the only request of its
            // shard round, so the round-level counts are its own.
            let result = ticket.wait()?;
            // Sub-round latency as the coordinator observes it: submit
            // through commit acknowledgement, waited in canonical order
            // (a span can include time spent queued behind an earlier
            // shard's wait).
            if let (Some(t), Some(round), Some(submitted)) = (&self.trace, round, submitted) {
                match shard {
                    Some(s) => t.record_shard(round, Stage::ShardRound, submitted, ops_n, s),
                    None => t.record(round, Stage::CrossRound, submitted, ops_n),
                }
            }
            inserted += result.inserted;
            deleted += result.deleted;
        }
        if inserted + deleted > 0 {
            // Some edge set changed, so the contraction may be stale.
            // Zero counts mean every insert was a duplicate and every
            // delete was absent — edge sets unchanged, partition
            // unchanged, cache still valid.
            self.boundary.lock().unwrap().fresh = false;
        }
        Ok((inserted, deleted))
    }

    /// Rebuild the boundary contraction if any mutation staled it.
    fn ensure_boundary(&self, cache: &mut BoundaryCache<B>) -> Result<(), DynConError> {
        if cache.fresh {
            return Ok(());
        }
        let rebuild_started = self.trace.as_ref().map(|_| Instant::now());
        let cross_edges = self.cross.inspect(|b| b.export_edges())?;
        // Distinct cross-edge endpoints per shard, ascending local ids —
        // the canonical input order `component_groups` labels against.
        let mut endpoints: Vec<Vec<u32>> = vec![Vec::new(); self.map.num_shards()];
        for &(u, v) in &cross_edges {
            endpoints[self.map.shard_of(u)].push(self.map.local_of(u));
            endpoints[self.map.shard_of(v)].push(self.map.local_of(v));
        }
        let mut reps: Vec<Vec<u32>> = Vec::with_capacity(endpoints.len());
        let mut labelled: Vec<Vec<(u32, u32)>> = Vec::with_capacity(endpoints.len());
        for (s, mut eps) in endpoints.into_iter().enumerate() {
            eps.sort_unstable();
            eps.dedup();
            if eps.is_empty() {
                reps.push(Vec::new());
                labelled.push(Vec::new());
                continue;
            }
            let input = eps.clone();
            let labels = self.shards[s].inspect(move |b| component_groups(b, &input))?;
            // Sorted input ⇒ each label is its component's minimum
            // endpoint, so the distinct labels are already the ascending
            // representative list.
            let mut r = labels.clone();
            r.sort_unstable();
            r.dedup();
            labelled.push(eps.into_iter().zip(labels).collect());
            reps.push(r);
        }
        let mut offsets = Vec::with_capacity(reps.len());
        let mut nodes = 0usize;
        for r in &reps {
            offsets.push(nodes);
            nodes += r.len();
        }
        let graph = if nodes == 0 {
            None
        } else {
            // Endpoint → node, per shard (every cross-edge endpoint has
            // a node by construction).
            let node_of: Vec<HashMap<u32, u32>> = labelled
                .iter()
                .enumerate()
                .map(|(s, pairs)| {
                    pairs
                        .iter()
                        .map(|&(endpoint, label)| {
                            let pos = reps[s]
                                .binary_search(&label)
                                .expect("every label is a representative");
                            (endpoint, (offsets[s] + pos) as u32)
                        })
                        .collect()
                })
                .collect();
            let mut g: B = Builder::new(nodes).build()?;
            // Contract in the cross store's canonical (sorted) edge
            // order; node pairs are normalized explicitly because the
            // shard-major node numbering need not follow global order.
            let contracted: Vec<(u32, u32)> = cross_edges
                .iter()
                .map(|&(u, v)| {
                    let nu = node_of[self.map.shard_of(u)][&self.map.local_of(u)];
                    let nv = node_of[self.map.shard_of(v)][&self.map.local_of(v)];
                    (nu.min(nv), nu.max(nv))
                })
                .collect();
            g.batch_insert(&contracted)?;
            self.metrics.boundary_ops.record(contracted.len() as u64);
            Some(g)
        };
        self.metrics.boundary_rebuilds.inc();
        if let (Some(t), Some(started)) = (&self.trace, rebuild_started) {
            t.record(
                t.current_round(),
                Stage::BoundaryRebuild,
                started,
                cross_edges.len() as u64,
            );
        }
        *cache = BoundaryCache {
            fresh: true,
            reps,
            offsets,
            nodes,
            graph,
        };
        Ok(())
    }

    /// Map each of `locals` (ascending local ids in shard `s`) to its
    /// boundary node, if its local component holds one.
    fn nodes_of(
        &self,
        cache: &BoundaryCache<B>,
        s: usize,
        locals: &[u32],
    ) -> Result<Vec<Option<u32>>, DynConError> {
        if cache.reps[s].is_empty() {
            return Ok(vec![None; locals.len()]);
        }
        // Representatives first: any queried vertex locally connected to
        // a boundary component gets that component's representative as
        // its label (reps are pairwise disconnected, and each precedes
        // every queried vertex in input order).
        let mut input = cache.reps[s].clone();
        let reps_len = input.len();
        input.extend_from_slice(locals);
        let labels = self.shards[s].inspect(move |b| component_groups(b, &input))?;
        Ok(labels[reps_len..]
            .iter()
            .map(|label| {
                cache.reps[s]
                    .binary_search(label)
                    .ok()
                    .map(|pos| (cache.offsets[s] + pos) as u32)
            })
            .collect())
    }

    /// Answer a query run: same-shard pairs locally first, everything
    /// still unresolved through the boundary graph.
    fn try_batch_connected(&self, pairs: &[(u32, u32)]) -> Result<Vec<bool>, DynConError> {
        let mut answers = vec![false; pairs.len()];
        let mut local: Vec<Vec<(usize, (u32, u32))>> = vec![Vec::new(); self.map.num_shards()];
        let mut unresolved: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if self.map.is_cross(u, v) {
                unresolved.push(i);
            } else {
                local[self.map.shard_of(u)].push((i, (self.map.local_of(u), self.map.local_of(v))));
            }
        }
        for (s, items) in local.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let queries: Vec<(u32, u32)> = items.iter().map(|&(_, p)| p).collect();
            let local_answers = self.shards[s].inspect(move |b| b.batch_connected(&queries))?;
            for (&(i, _), hit) in items.iter().zip(local_answers) {
                if hit {
                    answers[i] = true;
                } else {
                    // Locally disconnected pairs can still meet through
                    // other shards — boundary resolution decides.
                    unresolved.push(i);
                }
            }
        }
        if unresolved.is_empty() {
            return Ok(answers);
        }
        unresolved.sort_unstable();
        self.metrics.cross_queries.record(unresolved.len() as u64);
        let round = self.trace.as_ref().map_or(0, |t| t.current_round());
        dyncon_trace::traced(
            self.trace.as_ref(),
            round,
            Stage::CrossQuery,
            unresolved.len() as u64,
            || -> Result<(), DynConError> {
                let mut cache = self.boundary.lock().unwrap();
                self.ensure_boundary(&mut cache)?;
                if cache.nodes == 0 {
                    // No cross edges anywhere: nothing unresolved can
                    // connect.
                    return Ok(());
                }
                // Resolve each distinct queried endpoint to its boundary
                // node.
                let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.map.num_shards()];
                for &i in &unresolved {
                    for u in [pairs[i].0, pairs[i].1] {
                        per_shard[self.map.shard_of(u)].push(self.map.local_of(u));
                    }
                }
                let mut node_of: HashMap<u32, u32> = HashMap::new();
                for (s, mut locals) in per_shard.into_iter().enumerate() {
                    if locals.is_empty() {
                        continue;
                    }
                    locals.sort_unstable();
                    locals.dedup();
                    for (&local_id, node) in locals.iter().zip(self.nodes_of(&cache, s, &locals)?) {
                        if let Some(node) = node {
                            node_of.insert(self.map.globals(s)[local_id as usize], node);
                        }
                    }
                }
                let graph = cache.graph.as_ref().expect("nodes > 0 implies a graph");
                let mut boundary_pairs: Vec<(u32, u32)> = Vec::new();
                let mut boundary_slots: Vec<usize> = Vec::new();
                for &i in &unresolved {
                    let (u, v) = pairs[i];
                    // An endpoint with no boundary node lives in a
                    // component confined to its shard — and it was not
                    // locally connected.
                    if let (Some(&nu), Some(&nv)) = (node_of.get(&u), node_of.get(&v)) {
                        boundary_pairs.push((nu, nv));
                        boundary_slots.push(i);
                    }
                }
                for (&i, hit) in boundary_slots
                    .iter()
                    .zip(graph.batch_connected(&boundary_pairs))
                {
                    answers[i] = hit;
                }
                Ok(())
            },
        )?;
        Ok(answers)
    }
}

/// Everything [`ShardedBackend::shutdown`] hands back.
#[derive(Debug)]
pub struct ShardedShutdown<B> {
    /// Per-shard outcomes, canonical shard order.
    pub shards: Vec<ShardShutdown<B>>,
    /// The cross-edge store's outcome.
    pub cross: ShardShutdown<B>,
}

impl<B> Connectivity for ShardedBackend<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn num_vertices(&self) -> usize {
        self.map.num_vertices()
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        self.batch_connected(&[(u, v)])[0]
    }

    fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        // The `&self` query surface is the unchecked fast path; a shard
        // service failing mid-query is a panic, like any other internal
        // invariant violation on this path.
        self.try_batch_connected(pairs)
            .expect("sharded batch_connected: shard service failed")
    }

    fn num_components(&self) -> usize {
        // Each cross-edge merge collapses boundary nodes into boundary
        // components: Σ local components − (nodes − contracted comps).
        let mut total = 0usize;
        for (s, shard) in self.shards.iter().enumerate() {
            if self.map.shard_size(s) > 0 {
                total += shard
                    .inspect(|b| b.num_components())
                    .expect("sharded num_components: shard service failed");
            }
        }
        let mut cache = self.boundary.lock().unwrap();
        self.ensure_boundary(&mut cache)
            .expect("sharded num_components: boundary rebuild failed");
        match &cache.graph {
            None => total,
            Some(g) => total - (cache.nodes - g.num_components()),
        }
    }

    fn component_size(&self, v: u32) -> u64 {
        let s = self.map.shard_of(v);
        let local = self.map.local_of(v);
        let local_size = || {
            self.shards[s]
                .inspect(move |b| b.component_size(local))
                .expect("sharded component_size: shard service failed")
        };
        let mut cache = self.boundary.lock().unwrap();
        self.ensure_boundary(&mut cache)
            .expect("sharded component_size: boundary rebuild failed");
        let node = match self
            .nodes_of(&cache, s, &[local])
            .expect("sharded component_size: shard service failed")[0]
        {
            None => return local_size(),
            Some(node) => node,
        };
        // v's global component is the disjoint union of the local
        // components of every boundary node reachable from v's node.
        let graph = cache.graph.as_ref().expect("a node implies a graph");
        let probes: Vec<(u32, u32)> = (0..cache.nodes as u32).map(|m| (node, m)).collect();
        let reachable = graph.batch_connected(&probes);
        let mut total = 0u64;
        for (s2, shard) in self.shards.iter().enumerate() {
            let members: Vec<u32> = cache.reps[s2]
                .iter()
                .enumerate()
                .filter(|&(pos, _)| reachable[cache.offsets[s2] + pos])
                .map(|(_, &rep)| rep)
                .collect();
            if members.is_empty() {
                continue;
            }
            total += shard
                .inspect(move |b| members.iter().map(|&r| b.component_size(r)).sum::<u64>())
                .expect("sharded component_size: shard service failed");
        }
        total
    }
}

impl<B> BatchDynamic for ShardedBackend<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        let ops: Vec<Op> = edges.iter().map(|&(u, v)| Op::Insert(u, v)).collect();
        self.apply(&ops).map(|r| r.inserted)
    }

    fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        let ops: Vec<Op> = edges.iter().map(|&(u, v)| Op::Delete(u, v)).collect();
        self.apply(&ops).map(|r| r.deleted)
    }

    fn apply(&mut self, ops: &[Op]) -> Result<BatchResult, DynConError> {
        let n = self.map.num_vertices();
        for op in ops {
            let (u, v) = op.endpoints();
            validate_vertex(n, u)?;
            validate_vertex(n, v)?;
        }
        // Same run boundaries as the default `apply`, but mutation runs
        // of different kinds share one decomposition segment: each shard
        // applies its sub-batch as a mixed-op batch, splitting runs
        // itself, so the order of effects is identical — and queries
        // still observe exactly the prefix before their run.
        let mut result = BatchResult::default();
        let mut i = 0;
        while i < ops.len() {
            if ops[i].kind() == OpKind::Query {
                let mut run: Vec<(u32, u32)> = Vec::new();
                while i < ops.len() && ops[i].kind() == OpKind::Query {
                    run.push(ops[i].endpoints());
                    i += 1;
                }
                result.answers.extend(self.try_batch_connected(&run)?);
            } else {
                let start = i;
                while i < ops.len() && ops[i].kind() != OpKind::Query {
                    i += 1;
                }
                let (inserted, deleted) = self.run_mutation_segment(&ops[start..i])?;
                result.inserted += inserted;
                result.deleted += deleted;
            }
        }
        Ok(result)
    }

    fn supports(&self, kind: OpKind) -> bool {
        self.supports[match kind {
            OpKind::Insert => 0,
            OpKind::Delete => 1,
            OpKind::Query => 2,
        }]
    }

    fn check(&self) -> Result<(), String> {
        for (s, shard) in self.shards.iter().enumerate() {
            shard
                .inspect(|b| b.check())
                .map_err(|e| format!("shard {s}: {e}"))?
                .map_err(|e| format!("shard {s}: {e}"))?;
        }
        self.cross
            .inspect(|b| b.check())
            .map_err(|e| format!("cross store: {e}"))?
            .map_err(|e| format!("cross store: {e}"))?;
        Ok(())
    }
}

impl<B> ExportEdges for ShardedBackend<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    fn export_edges(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let local = shard
                .inspect(|b| b.export_edges())
                .expect("sharded export: shard service failed");
            let globals = self.map.globals(s);
            // Local ids ascend with global ids, so locally-normalized
            // pairs stay normalized after translation.
            edges.extend(
                local
                    .iter()
                    .map(|&(a, b)| (globals[a as usize], globals[b as usize])),
            );
        }
        edges.extend(
            self.cross
                .inspect(|b| b.export_edges())
                .expect("sharded export: cross store failed"),
        );
        edges.sort_unstable();
        edges
    }
}
