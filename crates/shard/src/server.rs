//! The sharded serving frontend.
//!
//! [`ShardedServer`] wraps a [`ShardedBackend`] in an outer
//! [`ConnServer`], so clients get the familiar group-commit surface
//! (tickets, coalescing, deterministic mode, backpressure) while each
//! admitted round fans out into per-shard commit rounds underneath. One
//! metric registry is pooled across the outer server, every shard
//! server, every per-shard WAL, and the coordinator itself.

use crate::backend::{ShardShutdown, ShardedBackend};
use crate::map::ShardMapKind;
use dyncon_api::{BatchDynamic, BuildFrom, DynConError, ExportEdges, Op};
use dyncon_api::{ReadView, Version, VersionedRead};
use dyncon_durable::FsyncPolicy;
use dyncon_export::HealthState;
use dyncon_metrics::{MetricsSnapshot, Registry};
use dyncon_server::{ConnServer, ReadHandle, RoundRecord, ServerConfig, SubmitOptions, Ticket};
use dyncon_trace::{RoundTrace, TraceRecorder};
use std::path::PathBuf;
use std::time::Duration;

/// Where (and how) the shards persist. Each shard gets its own
/// WAL/snapshot directory `shard-NNN/` under the base dir, the
/// cross-edge store gets `cross/`, and the base dir carries a topology
/// manifest so a reopen with a different partition fails loudly.
#[derive(Clone, Debug)]
pub struct DurableShards {
    pub(crate) dir: PathBuf,
    pub(crate) fsync: FsyncPolicy,
    pub(crate) compact_on_join: bool,
}

impl DurableShards {
    /// Persist under `dir` with the default policy (fsync every round,
    /// compact on join) — the same defaults as a standalone
    /// [`DurableServer`](dyncon_durable::DurableServer).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryRound,
            compact_on_join: true,
        }
    }

    /// When each shard's WAL fsyncs.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Whether each shard snapshots + truncates its WAL at shutdown.
    pub fn compact_on_join(mut self, yes: bool) -> Self {
        self.compact_on_join = yes;
        self
    }
}

/// Configuration of a [`ShardedServer`]: the partition shape, the outer
/// server's admission knobs, and optional per-shard durability.
///
/// The *outer* server takes the deterministic/record/batching knobs;
/// the *shard* servers always run in deterministic mode (the
/// coordinator is their sole client and seals every sub-round
/// explicitly, so determinism costs nothing and keeps per-shard WALs
/// byte-replayable).
#[derive(Clone, Debug)]
pub struct ShardConfig {
    pub(crate) shards: usize,
    pub(crate) kind: ShardMapKind,
    pub(crate) deterministic: bool,
    pub(crate) record_rounds: bool,
    pub(crate) max_batch_ops: usize,
    pub(crate) max_coalesce_wait: Duration,
    pub(crate) queue_capacity: usize,
    pub(crate) shard_worker_threads: Option<usize>,
    pub(crate) retain_views: usize,
    pub(crate) reader_threads: usize,
    pub(crate) metrics: Option<Registry>,
    pub(crate) trace: Option<TraceRecorder>,
    pub(crate) health: Option<HealthState>,
    pub(crate) durable: Option<DurableShards>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            kind: ShardMapKind::Hash,
            deterministic: false,
            record_rounds: false,
            max_batch_ops: 4096,
            max_coalesce_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            shard_worker_threads: None,
            retain_views: 0,
            reader_threads: 0,
            metrics: None,
            trace: None,
            health: None,
            durable: None,
        }
    }
}

impl ShardConfig {
    /// Two hash shards, throughput-mode outer admission, in-memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of shards (≥ 1, ≤ the vertex count).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The partition scheme ([`ShardMapKind::Hash`] by default).
    pub fn kind(mut self, kind: ShardMapKind) -> Self {
        self.kind = kind;
        self
    }

    /// Deterministic mode for the **outer** server: explicit round
    /// sealing and canonical `(client, seq)` admission order. Combined
    /// with the always-deterministic shards and the canonical
    /// decomposition, results are byte-identical across thread counts
    /// and shard counts.
    pub fn deterministic(mut self, yes: bool) -> Self {
        self.deterministic = yes;
        self
    }

    /// Record the outer server's per-round replay log.
    pub fn record_rounds(mut self, yes: bool) -> Self {
        self.record_rounds = yes;
        self
    }

    /// Outer round size cap.
    pub fn batch_cap(mut self, ops: usize) -> Self {
        self.max_batch_ops = ops;
        self
    }

    /// Outer coalescing window.
    pub fn coalesce_wait(mut self, wait: Duration) -> Self {
        self.max_coalesce_wait = wait;
        self
    }

    /// Outer admission queue capacity (requests, for backpressure).
    pub fn queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = requests;
        self
    }

    /// Rayon pool size for **each** shard's writer (and the outer
    /// writer). `None` inherits `DYNCON_THREADS`/core count.
    pub fn shard_worker_threads(mut self, threads: usize) -> Self {
        self.shard_worker_threads = Some(threads);
        self
    }

    /// Enable MVCC versioned reads on the **outer** server: after every
    /// outer commit round the coordinator exports the global edge set
    /// (each shard quiesced at that same outer version, boundary graph
    /// included) and retains it as that outer [`dyncon_api::Version`]'s
    /// snapshot, keeping the last `versions` of them (0, the default,
    /// disables publication; see
    /// [`dyncon_server::ServerConfig::retain_views`]).
    pub fn retain_views(mut self, versions: usize) -> Self {
        self.retain_views = versions;
        self
    }

    /// Reader threads serving [`ShardedServer::read_async`] off the
    /// commit path (0, the default, runs reads inline). See
    /// [`dyncon_server::ServerConfig::reader_threads`].
    pub fn reader_threads(mut self, threads: usize) -> Self {
        self.reader_threads = threads;
        self
    }

    /// Pool all metrics (outer server, shard servers, WALs,
    /// coordinator) in this registry instead of a fresh one.
    pub fn metrics(mut self, registry: Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attach a [`TraceRecorder`]: the outer writer records its own
    /// pipeline stages (coalesce wait, apply, publish, fill), and the
    /// coordinator attributes each outer round's fan-out — decompose,
    /// one sub-round span per shard, the cross store's sub-round, lazy
    /// boundary rebuilds, and cross-shard query resolution. The shard
    /// servers themselves are *not* instrumented (their writer stages
    /// are inside the coordinator's per-shard sub-round spans).
    /// Observational only; see [`dyncon_server::ServerConfig::trace`].
    pub fn trace(mut self, recorder: TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Feed the **outer** server's liveness signals (writer heartbeat,
    /// queue depth, backpressure, SLO grading of outer rounds) into
    /// this health engine. The shard servers are not separately
    /// instrumented: a wedged shard stalls the outer writer, which is
    /// exactly what the watchdog watches. Observational only; see
    /// [`dyncon_server::ServerConfig::health`].
    pub fn health(mut self, health: HealthState) -> Self {
        self.health = Some(health);
        self
    }

    /// Persist every shard (and the cross store) under
    /// [`DurableShards::new`]'s base directory, recovering on start.
    pub fn durable(mut self, durable: DurableShards) -> Self {
        self.durable = Some(durable);
        self
    }
}

/// Final report of a sharded service ([`ShardedServer::join`]).
#[derive(Debug)]
pub struct ShardedReport<B> {
    /// The outer server's per-round replay log (empty unless
    /// [`ShardConfig::record_rounds`]).
    pub rounds: Vec<RoundRecord>,
    /// Outer commit rounds.
    pub rounds_committed: u64,
    /// Operations committed through the outer server.
    pub ops_committed: u64,
    /// Snapshot of the pooled registry, taken **after** every shard
    /// joined (so shutdown-compaction metrics are included).
    pub metrics: MetricsSnapshot,
    /// Per-shard backends and counters, canonical shard order.
    pub shards: Vec<ShardShutdown<B>>,
    /// The cross-edge store's backend and counters.
    pub cross: ShardShutdown<B>,
    /// The slowest outer round's stage breakdown, when a
    /// [`ShardConfig::trace`] recorder was attached (`None` otherwise).
    pub slowest_round: Option<RoundTrace>,
}

/// A sharded group-commit connectivity service: an outer [`ConnServer`]
/// admitting client traffic, a coordinator decomposing each admitted
/// round into per-shard sub-rounds, and a contracted boundary graph
/// recombining cross-shard reachability (see [`ShardedBackend`]).
pub struct ShardedServer<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    inner: ConnServer<ShardedBackend<B>>,
    registry: Registry,
    num_shards: usize,
}

impl<B> ShardedServer<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    /// Partition `num_vertices` per `config`, start every shard server,
    /// and put the outer admission server in front.
    pub fn start(num_vertices: usize, config: ShardConfig) -> Result<Self, DynConError> {
        let registry = config.metrics.clone().unwrap_or_default();
        let backend = ShardedBackend::start(num_vertices, &config, registry.clone())?;
        let num_shards = backend.shard_map().num_shards();
        let mut outer = ServerConfig::new()
            .batch_cap(config.max_batch_ops)
            .coalesce_wait(config.max_coalesce_wait)
            .queue_capacity(config.queue_capacity)
            .deterministic(config.deterministic)
            .record_rounds(config.record_rounds)
            .retain_views(config.retain_views)
            .reader_threads(config.reader_threads)
            .metrics(registry.clone());
        if let Some(threads) = config.shard_worker_threads {
            outer = outer.worker_threads(threads);
        }
        if let Some(trace) = config.trace.clone() {
            outer = outer.trace(trace);
        }
        if let Some(health) = config.health.clone() {
            outer = outer.health(health);
        }
        // With views on, the outer writer exports the global edge set
        // between outer rounds — every shard has fully committed its
        // sub-rounds of outer round r and none has seen r+1, so the
        // per-shard states and the boundary graph are all pinned at the
        // same outer version. Note: outer versions are process-local
        // (per-shard WALs log *sub*-rounds, so there is no durable outer
        // round id to anchor to across restarts).
        let inner = if config.retain_views > 0 {
            ConnServer::start_versioned(backend, outer)
        } else {
            ConnServer::start(backend, outer)
        };
        Ok(Self {
            inner,
            registry,
            num_shards,
        })
    }

    /// The outer server, for generic harnesses that drive a
    /// [`ConnServer`] (load generators, replay tools).
    pub fn conn(&self) -> &ConnServer<ShardedBackend<B>> {
        &self.inner
    }

    /// Size of the global vertex universe.
    pub fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    /// Number of shards serving it.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Submit a batch under a fresh client id.
    pub fn submit(&self, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit(ops)
    }

    /// Submit a batch under an explicit client id (deterministic mode
    /// orders admitted requests by `(client, seq)`).
    pub fn submit_as(&self, client: u64, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit_as(client, ops)
    }

    /// Blocking submit under a fresh client id.
    pub fn submit_blocking(&self, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit_blocking(ops)
    }

    /// Blocking submit under an explicit client id.
    pub fn submit_blocking_as(&self, client: u64, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit_blocking_as(client, ops)
    }

    /// See [`ConnServer::submit_with`]. Versions here are **outer**
    /// round versions (process-local; per-shard WALs number sub-rounds).
    pub fn submit_with(&self, ops: Vec<Op>, options: SubmitOptions) -> Result<Ticket, DynConError> {
        self.inner.submit_with(ops, options)
    }

    /// Seal the current outer round (deterministic mode's commit
    /// trigger). Returns how many requests the sealed round holds.
    pub fn seal_round(&self) -> usize {
        self.inner.seal_round()
    }

    /// The newest committed outer version.
    pub fn newest_committed(&self) -> Option<Version> {
        self.inner.newest_committed()
    }

    /// See [`ConnServer::read_async`]. Requires
    /// [`ShardConfig::retain_views`] > 0.
    pub fn read_async<R, F>(&self, f: F) -> ReadHandle<Result<R, DynConError>>
    where
        R: Send + 'static,
        F: FnOnce(&ReadView) -> R + Send + 'static,
    {
        self.inner.read_async(f)
    }

    /// See [`ConnServer::read_async_at`].
    pub fn read_async_at<R, F>(&self, version: Version, f: F) -> ReadHandle<Result<R, DynConError>>
    where
        R: Send + 'static,
        F: FnOnce(&ReadView) -> R + Send + 'static,
    {
        self.inner.read_async_at(version, f)
    }

    /// Run a read-only closure against the sharded backend between
    /// outer rounds (which in turn may inspect individual shards).
    pub fn inspect<R, F>(&self, f: F) -> Result<R, DynConError>
    where
        R: Send + 'static,
        F: FnOnce(&ShardedBackend<B>) -> R + Send + 'static,
    {
        self.inner.inspect(f)
    }

    /// Outer commit rounds so far.
    pub fn rounds_committed(&self) -> u64 {
        self.inner.rounds_committed()
    }

    /// Operations committed through the outer server so far.
    pub fn ops_committed(&self) -> u64 {
        self.inner.ops_committed()
    }

    /// Snapshot the pooled registry (outer + shards + WALs +
    /// coordinator).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Stop accepting work, drain, and shut down outer server and every
    /// shard. Fails if any shard's shutdown (e.g. durable compaction)
    /// fails.
    pub fn join(self) -> Result<ShardedReport<B>, DynConError> {
        let report = self.inner.join();
        let shutdown = report.backend.shutdown()?;
        Ok(ShardedReport {
            rounds: report.rounds,
            rounds_committed: report.rounds_committed,
            ops_committed: report.ops_committed,
            metrics: self.registry.snapshot(),
            shards: shutdown.shards,
            cross: shutdown.cross,
            slowest_round: report.slowest_round,
        })
    }
}

impl<B> VersionedRead for ShardedServer<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    /// The retained window of **outer** versions. Each retained view is
    /// a globally consistent snapshot: all shards and the boundary graph
    /// pinned at the same outer version (the coordinator exports between
    /// outer rounds, when every shard has quiesced).
    fn version_window(&self) -> Option<(Version, Version)> {
        self.inner.version_window()
    }

    fn read_view(&self) -> Result<ReadView, DynConError> {
        self.inner.read_view()
    }

    fn read_view_at(&self, version: Version) -> Result<ReadView, DynConError> {
        self.inner.read_view_at(version)
    }
}
