//! The shard coordinator's metric bundle.
//!
//! Same contract as the serving and durability bundles: **observational,
//! never inputs** — nothing here is read on a decomposition, sealing, or
//! boundary-resolution decision path, so instrumentation coexists with
//! the byte-determinism contract. The coordinator pools ONE registry
//! across the outer server, every per-shard server, and (in durable
//! mode) every per-shard WAL: registration is idempotent per name, so
//! `dyncon_server_*` counters aggregate over all shard sub-rounds plus
//! the outer rounds, and this bundle's `dyncon_shard_*` names carry the
//! coordinator-only view.

use dyncon_metrics::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Live handles to every coordinator metric.
pub struct ShardMetrics {
    /// `dyncon_shard_decompose_ns` — wall time to split one mutation
    /// segment into per-shard sub-batches plus the cross-shard batch.
    pub decompose_ns: Arc<Histogram>,
    /// `dyncon_shard_boundary_ops` — contracted edges inserted into the
    /// boundary graph per rebuild (the size of the recombination work).
    pub boundary_ops: Arc<Histogram>,
    /// `dyncon_shard_cross_queries` — queries per query run that local
    /// shard state could not answer alone and the boundary graph
    /// resolved (cross-shard pairs plus locally-disconnected pairs).
    pub cross_queries: Arc<Histogram>,
    /// `dyncon_shard_boundary_rebuilds_total` — lazy boundary-graph
    /// reconstructions (one per first resolution after a mutation).
    pub boundary_rebuilds: Arc<Counter>,
    /// `dyncon_shard_subrounds_total` — per-shard commit rounds the
    /// coordinator sealed (including cross-store rounds).
    pub subrounds: Arc<Counter>,
}

impl ShardMetrics {
    /// Register (or re-attach to) the coordinator metrics in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            decompose_ns: registry.histogram(
                "dyncon_shard_decompose_ns",
                "ns",
                "wall time splitting a mutation segment into per-shard sub-batches",
            ),
            boundary_ops: registry.histogram(
                "dyncon_shard_boundary_ops",
                "ops",
                "contracted edges inserted per boundary-graph rebuild",
            ),
            cross_queries: registry.histogram(
                "dyncon_shard_cross_queries",
                "queries",
                "queries per run resolved through the boundary graph",
            ),
            boundary_rebuilds: registry.counter(
                "dyncon_shard_boundary_rebuilds_total",
                "rebuilds",
                "lazy boundary-graph reconstructions",
            ),
            subrounds: registry.counter(
                "dyncon_shard_subrounds_total",
                "rounds",
                "per-shard commit rounds sealed by the coordinator",
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_on_one_registry() {
        let registry = Registry::new();
        let a = ShardMetrics::register(&registry);
        let b = ShardMetrics::register(&registry);
        a.subrounds.inc();
        b.subrounds.inc();
        assert_eq!(a.subrounds.get(), 2, "pooling aggregates into one counter");
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("dyncon_shard_subrounds_total")
                .unwrap()
                .value
                .as_counter(),
            Some(2)
        );
        assert!(snap.get("dyncon_shard_decompose_ns").is_some());
    }
}
