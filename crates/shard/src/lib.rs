//! # dyncon-shard — sharded serving with boundary-graph recombination
//!
//! Scales the single-writer serving stack past one commit pipeline by
//! partitioning the vertex universe across N shards, each running its
//! own [`ConnServer`](dyncon_server::ConnServer) (optionally a
//! [`DurableServer`](dyncon_durable::DurableServer) with a private
//! WAL/snapshot directory), and recombining global reachability through
//! a **contracted boundary graph**.
//!
//! ## The model
//!
//! A deterministic [`ShardMap`] (balanced ranges or SplitMix64 hash)
//! assigns every vertex to one shard. Edges whose endpoints share a
//! shard live in that shard's backend, translated to a dense local id
//! space; edges spanning shards live in a dedicated cross-edge store.
//! The coordinator decomposes each admitted mixed-op batch into
//! per-shard sub-batches, submits and seals each as one commit round
//! (executed in parallel by the shards' own writer threads), and
//! answers queries by local lookup plus the contraction invariant:
//!
//! > `u ~ v` globally **iff** they are locally connected in one shard,
//! > or each is locally connected to a *boundary component* (a local
//! > component containing a cross-edge endpoint) whose nodes are
//! > connected in the contraction of the cross-edge set.
//!
//! The boundary graph is a second, tiny
//! [`BatchDynamic`](dyncon_api::BatchDynamic) instance —
//! built with the same [`Builder`](dyncon_api::Builder) as the shards —
//! whose vertices are per-shard boundary-component labels and whose
//! edges are the cross edges contracted through those labels. It is
//! rebuilt lazily, only after a mutation segment actually changed some
//! edge set, and global aggregates fall out of it directly:
//! `components = Σ local components − (boundary nodes − boundary
//! components)`.
//!
//! ## Determinism
//!
//! End-to-end byte-determinism holds at **every** shard count and
//! thread count: the partition is a pure function of
//! `(num_vertices, shards, kind)`, decomposition preserves op order per
//! shard, shard servers always run in deterministic mode with the
//! coordinator as sole client (one sealed round per sub-batch), and the
//! boundary graph is built in canonical (sorted cross-edge) order. With
//! [`ShardConfig::deterministic`] on the outer server too, a client
//! observes byte-identical [`BatchResult`](dyncon_api::BatchResult)s
//! regardless of `DYNCON_THREADS` or the shard count — proven against
//! the single-backend naive oracle in this repo's test suite.
//!
//! ## Durability caveat: no cross-shard atomic commit
//!
//! Per-shard WALs make each *shard* crash-consistent, and the
//! coordinator only seals sub-rounds at segment boundaries, so a crash
//! between segments recovers every shard plus the cross store to the
//! same prefix. But there is no two-phase commit: a storage failure in
//! one shard mid-segment leaves other shards' sub-rounds applied
//! (partial application at sub-batch granularity, matching
//! [`BatchDynamic::apply`](dyncon_api::BatchDynamic::apply)'s
//! documented run-granularity semantics). See `ROADMAP.md`.
//!
//! ## Metrics
//!
//! One [`Registry`](dyncon_metrics::Registry) is pooled across the
//! outer server, every shard server, every WAL, and the coordinator's
//! own [`ShardMetrics`] (`dyncon_shard_*`: decompose time, boundary
//! ops, cross-shard queries, rebuilds, sub-rounds). All observational —
//! nothing is read back on a decision path.

mod backend;
mod map;
mod metrics;
mod server;

pub use backend::{ShardShutdown, ShardedBackend, ShardedShutdown};
pub use map::{ShardMap, ShardMapKind};
pub use metrics::ShardMetrics;
pub use server::{DurableShards, ShardConfig, ShardedReport, ShardedServer};

// Re-exported so callers can match on failures without importing
// dyncon-api directly.
pub use dyncon_api::DynConError;
