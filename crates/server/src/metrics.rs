//! The serving layer's metric bundle.
//!
//! Every [`crate::ConnServer`] records into a [`ServerMetrics`] —
//! registered in the caller's [`Registry`] when
//! [`crate::ServerConfig::metrics`] is set, or into a private throwaway
//! registry otherwise (recording is a few relaxed atomics either way).
//!
//! Metrics are **observational, never inputs**: nothing here is read on
//! an admission, sealing, or commit decision path, which is what lets
//! instrumentation coexist with the byte-determinism contract.

use dyncon_metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Live handles to every serving-layer metric. One instance per server;
/// shared with the writer thread.
pub struct ServerMetrics {
    /// `dyncon_server_queue_depth` — requests admitted and not yet handed
    /// to the writer, sampled under the queue lock on every admit and
    /// round take. Its high-water mark is the `queue_depth_max` that load
    /// experiments report.
    pub queue_depth: Arc<Gauge>,
    /// `dyncon_server_backpressure_rejects_total` — non-blocking submits
    /// bounced by a full queue.
    pub backpressure_rejects: Arc<Counter>,
    /// `dyncon_server_admission_rejects_total` — requests bounced at
    /// validation (vertex out of range, statically unsupported op kind).
    pub admission_rejects: Arc<Counter>,
    /// `dyncon_server_round_size_ops` — operations per committed round:
    /// the coalescing the `lg(1 + n/k)` batch amortization feeds on.
    pub round_size_ops: Arc<Histogram>,
    /// `dyncon_server_coalesce_wait_ns` — how long the oldest request of
    /// each round waited between admission and round take.
    pub coalesce_wait_ns: Arc<Histogram>,
    /// `dyncon_server_apply_ns` — wall time of the backend's `apply` per
    /// round (the durability hook is *not* included; the WAL has its own
    /// latency histogram).
    pub apply_ns: Arc<Histogram>,
    /// `dyncon_server_rounds_committed_total`.
    pub rounds_committed: Arc<Counter>,
    /// `dyncon_server_ops_committed_total`.
    pub ops_committed: Arc<Counter>,
    /// `dyncon_server_read_view_requests_total` — versioned-read view
    /// requests (`read_view` / `read_view_at` / `read_async`), whether
    /// served or rejected with `UnknownVersion`.
    pub read_view_requests: Arc<Counter>,
    /// `dyncon_server_read_view_age_rounds` — how many rounds behind
    /// `newest` each served view was at handout (0 = the latest
    /// version). A growing tail means readers pin old versions.
    pub read_view_age_rounds: Arc<Histogram>,
    /// `dyncon_server_snapshot_retained` — versions currently held in
    /// the retention window, set at each publication (gauge; its
    /// high-water mark is the effective window size).
    pub snapshot_retained: Arc<Gauge>,
    /// `dyncon_server_snapshot_publish_ns` — wall time the writer spends
    /// exporting + labeling one round's snapshot (the per-round cost of
    /// enabling versioned reads; it is paid whether or not any reader
    /// ever asks).
    pub snapshot_publish_ns: Arc<Histogram>,
}

impl ServerMetrics {
    /// Register (or re-attach to) the serving metrics in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            queue_depth: registry.gauge(
                "dyncon_server_queue_depth",
                "requests",
                "requests admitted and not yet handed to the writer",
            ),
            backpressure_rejects: registry.counter(
                "dyncon_server_backpressure_rejects_total",
                "requests",
                "non-blocking submissions bounced by a full queue",
            ),
            admission_rejects: registry.counter(
                "dyncon_server_admission_rejects_total",
                "requests",
                "submissions bounced at validation (vertex range, unsupported op kind)",
            ),
            round_size_ops: registry.histogram(
                "dyncon_server_round_size_ops",
                "ops",
                "operations per committed round",
            ),
            coalesce_wait_ns: registry.histogram(
                "dyncon_server_coalesce_wait_ns",
                "ns",
                "admission-to-round-take wait of each round's oldest request",
            ),
            apply_ns: registry.histogram(
                "dyncon_server_apply_ns",
                "ns",
                "backend apply wall time per round",
            ),
            rounds_committed: registry.counter(
                "dyncon_server_rounds_committed_total",
                "rounds",
                "commit rounds applied",
            ),
            ops_committed: registry.counter(
                "dyncon_server_ops_committed_total",
                "ops",
                "operations committed across all rounds",
            ),
            read_view_requests: registry.counter(
                "dyncon_server_read_view_requests_total",
                "requests",
                "versioned-read view requests (served or UnknownVersion)",
            ),
            read_view_age_rounds: registry.histogram(
                "dyncon_server_read_view_age_rounds",
                "rounds",
                "rounds behind newest of each served read view",
            ),
            snapshot_retained: registry.gauge(
                "dyncon_server_snapshot_retained",
                "versions",
                "versions currently retained in the read-view window",
            ),
            snapshot_publish_ns: registry.histogram(
                "dyncon_server_snapshot_publish_ns",
                "ns",
                "writer wall time publishing one round's read-view snapshot",
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_on_one_registry() {
        let registry = Registry::new();
        let a = ServerMetrics::register(&registry);
        let b = ServerMetrics::register(&registry);
        a.rounds_committed.inc();
        b.rounds_committed.inc();
        assert_eq!(a.rounds_committed.get(), 2, "same underlying counter");
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("dyncon_server_rounds_committed_total")
                .unwrap()
                .value
                .as_counter(),
            Some(2)
        );
    }
}
