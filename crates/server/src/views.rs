//! The versioned-read machinery behind [`crate::ConnServer::read_view`]:
//! a bounded retention window of [`ReadView`]s the writer publishes at
//! every round seal, plus a pool of reader threads that drain view
//! requests off the commit path.

use dyncon_api::{empty_window_error, DynConError, ReadView, Version};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The retained snapshot window. The writer pushes one [`ReadView`] per
/// committed round (versions are dense, so the window is a contiguous
/// range `[oldest, newest]`); readers clone views out from under a
/// mutex whose critical section is a constant-time lookup plus an `Arc`
/// bump — the writer is never blocked behind a reader's actual query
/// work.
pub(crate) struct ViewStore {
    retain: usize,
    window: Mutex<VecDeque<ReadView>>,
}

impl ViewStore {
    /// An empty store retaining at most `retain` versions (≥ 1).
    pub(crate) fn new(retain: usize) -> Self {
        Self {
            retain: retain.max(1),
            window: Mutex::new(VecDeque::new()),
        }
    }

    /// How many versions the store keeps before evicting the oldest.
    #[cfg(test)]
    pub(crate) fn retain(&self) -> usize {
        self.retain
    }

    /// Publish the view of a freshly committed version (the writer's
    /// side). Versions must arrive in order, each exactly one past the
    /// previous `newest`. Returns the number of versions now retained
    /// (for the `snapshot_retained` gauge).
    pub(crate) fn publish(&self, view: ReadView) -> usize {
        let mut w = self.window.lock().unwrap();
        debug_assert!(
            w.back().map_or(true, |b| b.version() + 1 == view.version()),
            "views are published in version order"
        );
        w.push_back(view);
        while w.len() > self.retain {
            w.pop_front();
        }
        w.len()
    }

    /// The retained `[oldest, newest]` range, or `None` when empty.
    pub(crate) fn bounds(&self) -> Option<(Version, Version)> {
        let w = self.window.lock().unwrap();
        match (w.front(), w.back()) {
            (Some(oldest), Some(newest)) => Some((oldest.version(), newest.version())),
            _ => None,
        }
    }

    /// Clone out the view at exactly `version`. On success also returns
    /// the view's age in rounds (`newest - version`, for the age
    /// histogram).
    pub(crate) fn get_at(&self, version: Version) -> Result<(ReadView, u64), DynConError> {
        let w = self.window.lock().unwrap();
        let (oldest, newest) = match (w.front(), w.back()) {
            (Some(o), Some(n)) => (o.version(), n.version()),
            _ => return Err(empty_window_error(version)),
        };
        if version < oldest || version > newest {
            return Err(DynConError::UnknownVersion {
                requested: version,
                oldest,
                newest,
            });
        }
        let view = w[(version - oldest) as usize].clone();
        Ok((view, newest - version))
    }

    /// Clone out the newest view (age 0 by definition).
    pub(crate) fn get_newest(&self) -> Result<ReadView, DynConError> {
        let w = self.window.lock().unwrap();
        w.back().cloned().ok_or_else(|| empty_window_error(0))
    }
}

type ReadJob = Box<dyn FnOnce() + Send>;

/// Completion handle of one reader-pool job (or an inline-executed
/// read when the server has no pool). Redeem with [`ReadHandle::wait`].
#[derive(Debug)]
pub struct ReadHandle<R> {
    inner: HandleInner<R>,
}

#[derive(Debug)]
enum HandleInner<R> {
    /// Ran inline; the result is already here.
    Ready(R),
    /// Running on a reader thread; the result arrives over the channel.
    Pending(Receiver<R>),
}

impl<R> ReadHandle<R> {
    /// A handle that is already resolved (inline execution).
    pub(crate) fn ready(value: R) -> Self {
        Self {
            inner: HandleInner::Ready(value),
        }
    }

    pub(crate) fn pending(rx: Receiver<R>) -> Self {
        Self {
            inner: HandleInner::Pending(rx),
        }
    }

    /// Block until the read has run. Fails with
    /// [`DynConError::ServiceClosed`] only if the pool was torn down
    /// before the job could run (the job's view is self-contained, so
    /// pool shutdown drains already-queued jobs rather than dropping
    /// them — this error is the can't-happen-in-orderly-shutdown path).
    pub fn wait(self) -> Result<R, DynConError> {
        match self.inner {
            HandleInner::Ready(value) => Ok(value),
            HandleInner::Pending(rx) => rx.recv().map_err(|_| DynConError::ServiceClosed),
        }
    }
}

/// A fixed pool of reader threads executing view queries off the commit
/// path. Jobs are closures over a cloned [`ReadView`] — fully
/// self-contained — so the pool never touches the writer, the queue, or
/// the backend. Dropping the pool drains every queued job, then joins
/// the workers.
pub(crate) struct ReaderPool {
    tx: Option<Sender<ReadJob>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReaderPool {
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<ReadJob>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("dyncon-reader-{i}"))
                    .spawn(move || loop {
                        // Holding the receiver lock only for the recv
                        // keeps job execution concurrent across workers.
                        let job = rx.lock().unwrap().recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // pool dropped, queue drained
                        }
                    })
                    .expect("spawn dyncon reader thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Queue `job` on the pool; the handle resolves when a worker ran it.
    pub(crate) fn execute<R, F>(&self, job: F) -> ReadHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = channel();
        let boxed: ReadJob = Box::new(move || {
            // A hung-up receiver means the caller dropped the handle;
            // the result is simply discarded.
            let _ = tx.send(job());
        });
        self.tx
            .as_ref()
            .expect("pool sender lives until drop")
            .send(boxed)
            .expect("reader workers outlive the sender");
        ReadHandle::pending(rx)
    }
}

impl Drop for ReaderPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain what is queued and exit.
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(version: Version) -> ReadView {
        ReadView::build(4, version, vec![(0, 1)])
    }

    #[test]
    fn store_keeps_a_sliding_window() {
        let store = ViewStore::new(2);
        assert_eq!(store.bounds(), None);
        assert_eq!(store.get_newest().unwrap_err(), empty_window_error(0));
        assert_eq!(store.publish(view(0)), 1);
        assert_eq!(store.publish(view(1)), 2);
        assert_eq!(store.publish(view(2)), 2, "bounded at retain=2");
        assert_eq!(store.bounds(), Some((1, 2)));
        let (v1, age) = store.get_at(1).unwrap();
        assert_eq!((v1.version(), age), (1, 1));
        assert_eq!(store.get_newest().unwrap().version(), 2);
        // Evicted and future versions both carry the window bounds.
        assert_eq!(
            store.get_at(0).unwrap_err(),
            DynConError::UnknownVersion {
                requested: 0,
                oldest: 1,
                newest: 2
            }
        );
        assert_eq!(
            store.get_at(9).unwrap_err(),
            DynConError::UnknownVersion {
                requested: 9,
                oldest: 1,
                newest: 2
            }
        );
    }

    #[test]
    fn retain_is_clamped_to_one() {
        let store = ViewStore::new(0);
        assert_eq!(store.retain(), 1);
        store.publish(view(0));
        store.publish(view(1));
        assert_eq!(store.bounds(), Some((1, 1)));
    }

    #[test]
    fn pool_runs_jobs_and_drains_at_shutdown() {
        let pool = ReaderPool::new(2);
        let handles: Vec<ReadHandle<u64>> = (0..16u64)
            .map(|i| {
                let v = view(i);
                pool.execute(move || v.version() * 2)
            })
            .collect();
        // Drop the pool BEFORE waiting: queued jobs must still run.
        drop(pool);
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait().unwrap(), 2 * i as u64);
        }
    }

    #[test]
    fn inline_handle_is_pre_resolved() {
        let h = ReadHandle::ready(7u32);
        assert_eq!(h.wait().unwrap(), 7);
    }
}
