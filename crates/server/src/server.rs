//! The group-commit frontend: bounded admission queue, single writer,
//! one `apply` per commit round.

use crate::config::{ServerConfig, SubmitOptions};
use crate::metrics::ServerMetrics;
use crate::ticket::{RequestResult, Slot, Ticket};
use crate::views::{ReadHandle, ReaderPool, ViewStore};
use dyncon_api::{
    validate_vertex, BatchDynamic, BatchResult, DynConError, ExportEdges, Op, OpKind, ReadView,
    Version, VersionedRead,
};
use dyncon_metrics::{MetricsSnapshot, Registry};
use dyncon_trace::{traced, RoundTrace, Stage};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A queued [`ConnServer::inspect`] closure, type-erased so the queue
/// state need not be generic over the backend. The writer hands it
/// `&backend as &dyn Any` plus the newest committed [`Version`] at run
/// time; the submitting side downcasts back to `&B` (always its own
/// server's backend type).
type InspectJob = Box<dyn FnOnce(&dyn std::any::Any, Option<Version>) + Send>;

/// Default [`ServerConfig::retain_views`] window applied by
/// [`ConnServer::start_versioned`] when the knob was left at 0.
pub const DEFAULT_RETAINED_VERSIONS: usize = 8;

/// The version of this server's `r`-th committed round is
/// `first_version + r`; the newest committed version is one before the
/// next round's — or, before any local round, the recovered
/// `first_version - 1` (`None` on a fresh, never-committed server).
fn newest_committed(first_version: u64, rounds_committed: u64) -> Option<Version> {
    if rounds_committed == 0 {
        first_version.checked_sub(1)
    } else {
        Some(first_version + rounds_committed - 1)
    }
}

/// How a versioned server exports the backend's canonical edge set:
/// type-erased so `ConnServer<B>` itself needs no `ExportEdges` bound.
type EdgeExtract<B> = Arc<dyn Fn(&B) -> Vec<(u32, u32)> + Send + Sync>;

/// The writer-side half of versioned reads: how to export the backend's
/// canonical edge set, and where to publish the resulting [`ReadView`].
struct ViewPublisher<B> {
    extract: EdgeExtract<B>,
    store: Arc<ViewStore>,
}

/// Export the backend's edges, label them, and retain the result as the
/// [`ReadView`] of `version`, recording the publish-cost metrics.
fn publish_view<B>(
    publisher: &ViewPublisher<B>,
    backend: &B,
    num_vertices: usize,
    version: Version,
    metrics: &ServerMetrics,
) {
    let started = Instant::now();
    let edges = (publisher.extract)(backend);
    let view = ReadView::build(num_vertices, version, edges);
    let retained = publisher.store.publish(view);
    metrics.snapshot_retained.set(retained as i64);
    metrics
        .snapshot_publish_ns
        .record_duration(started.elapsed());
}

/// One admitted, not-yet-committed request.
struct Request {
    /// Stable client identity — the primary canonical-order key.
    client: u64,
    /// Global admission index; within one client it is that client's
    /// program order, which is all the canonical sort depends on.
    seq: u64,
    /// When admission accepted the request — feeds the coalesce-wait
    /// histogram when its round is taken. Observational only: round
    /// boundaries never read it.
    admitted: Instant,
    ops: Vec<Op>,
    slot: Arc<Slot>,
}

/// Everything behind the queue mutex.
struct QueueState {
    /// The accumulating round (admission order).
    open: Vec<Request>,
    /// Rounds whose boundary is fixed (sealed explicitly, or the final
    /// drain at close). Committed strictly in seal order, before `open`.
    sealed: VecDeque<Vec<Request>>,
    /// Total ops in `open`.
    open_ops: usize,
    /// Requests admitted and not yet handed to the writer (`open` +
    /// everything in `sealed`) — the quantity the capacity bounds.
    queued: usize,
    /// When the oldest request in `open` was admitted (coalesce deadline).
    open_since: Option<Instant>,
    /// Admission is closed; pending work still drains.
    closed: bool,
    next_seq: u64,
    /// Pending [`ConnServer::inspect`] closures. The writer drains them
    /// with priority at each round boundary; shutdown paths drop them
    /// (their callers resolve via the hung-up result channel).
    inspects: VecDeque<InspectJob>,
}

struct Shared {
    q: Mutex<QueueState>,
    /// Writer waits here for work (and for seals / close).
    submitted: Condvar,
    /// Blocking submitters wait here for queue space.
    space: Condvar,
    /// [`SubmitOptions::min_version`] fences wait here; the writer
    /// notifies after every committed round (and every shutdown path).
    commits: Condvar,
    rounds_committed: AtomicU64,
    ops_committed: AtomicU64,
    next_auto_client: AtomicU64,
    metrics: Arc<ServerMetrics>,
}

/// The replay log entry of one commit round: exactly what the writer
/// passed to [`BatchDynamic::apply`] and what came back. A serial replay
/// of `ops` round by round on a fresh backend must reproduce `result`
/// byte for byte — that is the serving layer's determinism contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// The round number ([`RequestResult::round`] of its requests).
    pub round: u64,
    /// The round's concatenated operations, in applied order.
    pub ops: Vec<Op>,
    /// The backend's result for the round.
    pub result: BatchResult,
}

/// What [`ConnServer::join`] returns once the queue has drained.
#[derive(Debug)]
pub struct ServiceReport<B> {
    /// The backend, with every accepted request applied.
    pub backend: B,
    /// Per-round replay log (empty unless [`ServerConfig::record_rounds`]).
    pub rounds: Vec<RoundRecord>,
    /// Total commit rounds.
    pub rounds_committed: u64,
    /// Total operations committed across all rounds.
    pub ops_committed: u64,
    /// Final snapshot of the server's metric registry (the caller's
    /// registry from [`ServerConfig::metrics`] if one was passed, so
    /// durability metrics pooled there are included).
    pub metrics: MetricsSnapshot,
    /// Stage breakdown of the slowest committed round, when a
    /// [`ServerConfig::trace`] recorder was attached (`None` otherwise,
    /// and before any round committed) — post-mortem attribution
    /// without scraping the live telemetry endpoint.
    pub slowest_round: Option<RoundTrace>,
}

/// A group-commit batching frontend over any [`BatchDynamic`] backend.
///
/// Shared by reference across client threads (all submission methods take
/// `&self`); wrap it in an [`Arc`] or use scoped threads. See the crate
/// docs for the serving model and `examples/concurrent_service.rs` for an
/// end-to-end run.
pub struct ConnServer<B: BatchDynamic + Send + 'static> {
    shared: Arc<Shared>,
    config: ServerConfig,
    /// The registry the server's metrics live in — the caller's
    /// ([`ServerConfig::metrics`]) or a private one.
    registry: Registry,
    num_vertices: usize,
    backend_name: &'static str,
    /// The backend's static capabilities per [`OpKind`] (insert, delete,
    /// query), captured at start so admission can bounce unsupportable
    /// requests before they poison a whole commit round.
    supports: [bool; 3],
    /// The retained snapshot window — `Some` only on a server started
    /// with [`ConnServer::start_versioned`].
    views: Option<Arc<ViewStore>>,
    /// Reader threads draining [`ConnServer::read_async`] jobs; `None`
    /// when [`ServerConfig::reader_threads`] is 0 (reads run inline).
    readers: Option<Arc<ReaderPool>>,
    writer: Option<JoinHandle<(B, Vec<RoundRecord>)>>,
}

/// Dense index of an [`OpKind`] into the capability table.
fn kind_index(kind: OpKind) -> usize {
    match kind {
        OpKind::Insert => 0,
        OpKind::Delete => 1,
        OpKind::Query => 2,
    }
}

/// The trait-method name an unsupported kind maps to in the typed error.
fn kind_operation(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Insert => "batch_insert",
        OpKind::Delete => "batch_delete",
        OpKind::Query => "batch_connected",
    }
}

impl<B: BatchDynamic + Send + 'static> ConnServer<B> {
    /// Take ownership of `backend` and start the writer thread. The
    /// backend is handed back by [`ConnServer::join`].
    ///
    /// A server started this way never publishes read views (no
    /// `ExportEdges` bound is required of the backend);
    /// [`ConnServer::read_view`] fails with
    /// [`DynConError::UnknownVersion`]. Use
    /// [`ConnServer::start_versioned`] for MVCC reads.
    pub fn start(backend: B, config: ServerConfig) -> Self {
        Self::start_inner(backend, config, None)
    }

    fn start_inner(backend: B, config: ServerConfig, extract: Option<EdgeExtract<B>>) -> Self {
        let num_vertices = backend.num_vertices();
        let backend_name = backend.backend_name();
        let supports =
            [OpKind::Insert, OpKind::Delete, OpKind::Query].map(|kind| backend.supports(kind));
        let registry = config.metrics.clone().unwrap_or_default();
        let metrics = ServerMetrics::register(&registry);
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                open: Vec::new(),
                sealed: VecDeque::new(),
                open_ops: 0,
                queued: 0,
                open_since: None,
                closed: false,
                next_seq: 0,
                inspects: VecDeque::new(),
            }),
            submitted: Condvar::new(),
            space: Condvar::new(),
            commits: Condvar::new(),
            rounds_committed: AtomicU64::new(0),
            ops_committed: AtomicU64::new(0),
            next_auto_client: AtomicU64::new(0),
            metrics,
        });
        let publisher = extract.map(|extract| {
            let retain = match config.retain_views {
                0 => DEFAULT_RETAINED_VERSIONS,
                n => n,
            };
            let store = Arc::new(ViewStore::new(retain));
            // Publish the starting state (the recovered version
            // `first_version - 1` on a durable stack) on the caller's
            // thread, so `read_view` works before the first local round.
            // A truly fresh server (first_version 0) has no committed
            // version yet — its window stays empty until round 0 seals.
            if let Some(version) = config.first_version.checked_sub(1) {
                publish_view(
                    &ViewPublisher {
                        extract: Arc::clone(&extract),
                        store: Arc::clone(&store),
                    },
                    &backend,
                    num_vertices,
                    version,
                    &shared.metrics,
                );
            }
            ViewPublisher { extract, store }
        });
        let views = publisher.as_ref().map(|p| Arc::clone(&p.store));
        let readers = match config.reader_threads {
            0 => None,
            n => Some(Arc::new(ReaderPool::new(n))),
        };
        let writer = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("dyncon-server-writer".into())
                .spawn(move || writer_loop(backend, shared, config, publisher))
                .expect("spawn dyncon-server writer")
        };
        Self {
            shared,
            config,
            registry,
            num_vertices,
            backend_name,
            supports,
            views,
            readers,
            writer: Some(writer),
        }
    }

    /// The backend's vertex universe (requests are validated against it
    /// at admission).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The wrapped backend's name.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// Rounds committed so far.
    pub fn rounds_committed(&self) -> u64 {
        self.shared.rounds_committed.load(Ordering::Relaxed)
    }

    /// Operations committed so far.
    pub fn ops_committed(&self) -> u64 {
        self.shared.ops_committed.load(Ordering::Relaxed)
    }

    /// Freeze the server's metric registry right now (the live
    /// counterpart of [`ServiceReport::metrics`]). Includes everything
    /// else registered in a shared [`ServerConfig::metrics`] registry,
    /// e.g. the durability layer's WAL metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The one submission entry point: submit `ops` under `options`.
    /// The four legacy methods ([`ConnServer::submit`],
    /// [`ConnServer::submit_as`], [`ConnServer::submit_blocking`],
    /// [`ConnServer::submit_blocking_as`]) are thin wrappers over this.
    ///
    /// - [`SubmitOptions::client`]: stable client identity for canonical
    ///   ordering; `None` draws a fresh auto id (arrival-ordered — fine
    ///   in throughput mode, wrong for deterministic replay).
    /// - [`SubmitOptions::blocking`]: wait for queue space instead of
    ///   failing with [`DynConError::Backpressure`].
    /// - [`SubmitOptions::min_version`]: a read-your-writes fence — the
    ///   request is not admitted until version `v` has committed, so its
    ///   round (and hence its answers) observes at least `v`. Blocking
    ///   submissions wait for the fence; non-blocking ones fail with
    ///   [`DynConError::UnknownVersion`] if `v` has not committed yet.
    ///   In deterministic mode an unfenced committer (another thread
    ///   sealing rounds) must exist, or a blocking fence on a future
    ///   version deadlocks by construction.
    pub fn submit_with(&self, ops: Vec<Op>, options: SubmitOptions) -> Result<Ticket, DynConError> {
        let client = options
            .client
            .unwrap_or_else(|| self.shared.next_auto_client.fetch_add(1, Ordering::Relaxed));
        self.submit_inner(client, ops, options.blocking, options.min_version)
    }

    /// Submit one request under an automatically assigned (unique) client
    /// id. Non-blocking: a full queue is [`DynConError::Backpressure`].
    ///
    /// For deterministic mode use [`ConnServer::submit_as`] with a stable
    /// client id — auto ids are assigned in arrival order, which is
    /// exactly what that mode must not depend on.
    pub fn submit(&self, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.submit_with(ops, SubmitOptions::new())
    }

    /// Submit one request on behalf of `client`. Requests of one client
    /// keep their submission order in every canonical round. Non-blocking.
    pub fn submit_as(&self, client: u64, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.submit_with(ops, SubmitOptions::new().as_client(client))
    }

    /// Like [`ConnServer::submit`], but waits for queue space instead of
    /// returning [`DynConError::Backpressure`].
    pub fn submit_blocking(&self, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.submit_with(ops, SubmitOptions::new().blocking(true))
    }

    /// Like [`ConnServer::submit_as`], but waits for queue space.
    pub fn submit_blocking_as(&self, client: u64, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.submit_with(ops, SubmitOptions::new().as_client(client).blocking(true))
    }

    fn submit_inner(
        &self,
        client: u64,
        ops: Vec<Op>,
        block: bool,
        min_version: Option<u64>,
    ) -> Result<Ticket, DynConError> {
        // Validate here so a round never fails on behalf of *other*
        // clients' requests: vertex ranges and the backend's static op
        // capabilities are both admission-time rejections.
        if let Err(e) = self.validate(&ops) {
            self.shared.metrics.admission_rejects.inc();
            return Err(e);
        }
        let mut q = self.shared.q.lock().unwrap();
        // Read-your-writes fence: hold admission until `min_version` has
        // committed. Checked before capacity so a fenced request cannot
        // occupy a queue slot it is not yet allowed to use.
        if let Some(min) = min_version {
            loop {
                if q.closed {
                    return Err(DynConError::ServiceClosed);
                }
                let rounds = self.shared.rounds_committed.load(Ordering::Relaxed);
                if newest_committed(self.config.first_version, rounds) >= Some(min) {
                    break;
                }
                if !block {
                    let (oldest, newest) = self
                        .version_window()
                        .or_else(|| {
                            newest_committed(self.config.first_version, rounds).map(|n| (n, n))
                        })
                        .unwrap_or(dyncon_api::EMPTY_WINDOW);
                    return Err(DynConError::UnknownVersion {
                        requested: min,
                        oldest,
                        newest,
                    });
                }
                q = self.shared.commits.wait(q).unwrap();
            }
        }
        loop {
            if q.closed {
                return Err(DynConError::ServiceClosed);
            }
            if q.queued < self.config.queue_capacity {
                break;
            }
            if !block {
                self.shared.metrics.backpressure_rejects.inc();
                if let Some(health) = &self.config.health {
                    health.note_backpressure_reject();
                }
                return Err(DynConError::Backpressure {
                    capacity: self.config.queue_capacity,
                });
            }
            q = self.shared.space.wait(q).unwrap();
        }
        let seq = q.next_seq;
        q.next_seq += 1;
        if q.open.is_empty() {
            q.open_since = Some(Instant::now());
        }
        let slot = Arc::new(Slot::default());
        q.open_ops += ops.len();
        q.queued += 1;
        self.shared.metrics.queue_depth.set(q.queued as i64);
        if let Some(health) = &self.config.health {
            health.set_pending(q.queued as i64);
        }
        q.open.push(Request {
            client,
            seq,
            admitted: Instant::now(),
            ops,
            slot: Arc::clone(&slot),
        });
        self.shared.submitted.notify_all();
        Ok(Ticket { slot })
    }

    fn validate(&self, ops: &[Op]) -> Result<(), DynConError> {
        for op in ops {
            let (u, v) = op.endpoints();
            validate_vertex(self.num_vertices, u)?;
            validate_vertex(self.num_vertices, v)?;
            if !self.supports[kind_index(op.kind())] {
                return Err(DynConError::Unsupported {
                    backend: self.backend_name,
                    operation: kind_operation(op.kind()),
                });
            }
        }
        Ok(())
    }

    /// Run a read-only closure against the backend at a round boundary.
    ///
    /// The closure executes on the writer thread **between** commit
    /// rounds: it observes a state in which every round whose tickets
    /// have resolved is fully applied and no round is partially applied.
    /// Blocks until the closure has run and returns its result — this is
    /// the read seam a shard coordinator resolves cross-shard queries
    /// through without stopping the server.
    ///
    /// Ordering: the writer gives inspections priority over pending
    /// rounds, so an inspection submitted *after* a ticket resolved sees
    /// at least that ticket's round — but a round sealed and not yet
    /// waited on may commit before or after the closure runs. Callers
    /// that need an exact boundary wait their tickets first.
    ///
    /// Fails with [`DynConError::ServiceClosed`] if the service is
    /// closed, or shuts down before the closure could run.
    ///
    /// **Version guarantee**: the closure observes exactly one sealed
    /// version — the state as of [`RequestResult::version`] of the
    /// newest committed round, with no later round partially applied.
    /// [`ConnServer::inspect_versioned`] hands the closure that version
    /// number alongside the backend.
    pub fn inspect<R, F>(&self, f: F) -> Result<R, DynConError>
    where
        R: Send + 'static,
        F: FnOnce(&B) -> R + Send + 'static,
    {
        self.inspect_versioned(move |backend, _version| f(backend))
    }

    /// [`ConnServer::inspect`], with the closure also told **which**
    /// sealed version it is observing: the [`Version`] of the newest
    /// committed round at the instant the closure runs (`None` only on a
    /// fresh server before any round committed). This is how a caller
    /// correlates an inspection with [`ConnServer::read_view_at`] or a
    /// [`SubmitOptions::min_version`] fence.
    ///
    /// For *timing* attribution of the rounds an inspection interleaves
    /// with — which stage a slow round spent its wall time in — attach
    /// a [`ServerConfig::trace`] recorder and read
    /// [`ServiceReport::slowest_round`] (or scrape the live
    /// [`dyncon_trace::serve_telemetry`] endpoint).
    pub fn inspect_versioned<R, F>(&self, f: F) -> Result<R, DynConError>
    where
        R: Send + 'static,
        F: FnOnce(&B, Option<Version>) -> R + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::channel();
        let job: InspectJob = Box::new(move |backend: &dyn std::any::Any, version| {
            let backend = backend
                .downcast_ref::<B>()
                .expect("inspect job runs against its own server's backend");
            // A hung-up receiver means the caller gave up waiting; the
            // result is simply discarded.
            let _ = tx.send(f(backend, version));
        });
        {
            let mut q = self.shared.q.lock().unwrap();
            if q.closed {
                return Err(DynConError::ServiceClosed);
            }
            q.inspects.push_back(job);
            self.shared.submitted.notify_all();
        }
        // The writer drains the inspect queue before it can observe the
        // closed-and-empty exit condition, and every shutdown path drops
        // pending jobs (closing this channel) — so this wait always ends.
        rx.recv().map_err(|_| DynConError::ServiceClosed)
    }

    /// The newest committed [`Version`], independent of view retention:
    /// `Some` once any round committed (or, on a durable stack, once
    /// recovery replayed history), `None` on a fresh server.
    pub fn newest_committed(&self) -> Option<Version> {
        let rounds = self.shared.rounds_committed.load(Ordering::Relaxed);
        newest_committed(self.config.first_version, rounds)
    }

    /// Run `f` against a clone of the **newest** retained view, off the
    /// commit path: on a reader-pool thread when
    /// [`ServerConfig::reader_threads`] > 0, inline otherwise. The view
    /// is resolved now (so the version is pinned at call time); the
    /// query work happens when the pool gets to it.
    pub fn read_async<R, F>(&self, f: F) -> ReadHandle<Result<R, DynConError>>
    where
        R: Send + 'static,
        F: FnOnce(&ReadView) -> R + Send + 'static,
    {
        match self.read_view() {
            Ok(view) => self.run_read(view, f),
            Err(e) => ReadHandle::ready(Err(e)),
        }
    }

    /// [`ConnServer::read_async`] against the view of exactly `version`.
    pub fn read_async_at<R, F>(&self, version: Version, f: F) -> ReadHandle<Result<R, DynConError>>
    where
        R: Send + 'static,
        F: FnOnce(&ReadView) -> R + Send + 'static,
    {
        match self.read_view_at(version) {
            Ok(view) => self.run_read(view, f),
            Err(e) => ReadHandle::ready(Err(e)),
        }
    }

    fn run_read<R, F>(&self, view: ReadView, f: F) -> ReadHandle<Result<R, DynConError>>
    where
        R: Send + 'static,
        F: FnOnce(&ReadView) -> R + Send + 'static,
    {
        // Read-execute spans attribute to the view's version (not a
        // commit round): the question a trace answers here is "what
        // were reads at version v doing while round r was slow".
        let trace = self.config.trace.clone();
        let health = self.config.health.clone();
        let job = move || {
            let version = view.version();
            let out = Ok(traced(trace.as_ref(), version, Stage::ReadExec, 0, || {
                f(&view)
            }));
            // The read plane's health heartbeat: fires where the read
            // actually executed (pool thread or inline).
            if let Some(h) = &health {
                h.note_read_served();
            }
            out
        };
        match &self.readers {
            Some(pool) => pool.execute(job),
            None => ReadHandle::ready(job()),
        }
    }

    /// Fix the current round boundary: every request admitted since the
    /// last seal becomes one round, canonically ordered by
    /// `(client, submission index)`. Returns how many requests the round
    /// holds (0 seals nothing). This is how deterministic mode forms
    /// rounds; in throughput mode it acts as an explicit flush.
    pub fn seal_round(&self) -> usize {
        let mut q = self.shared.q.lock().unwrap();
        let n = seal_open(&mut q);
        if n > 0 {
            self.shared.submitted.notify_all();
        }
        n
    }

    /// Stop admission: subsequent submissions fail with
    /// [`DynConError::ServiceClosed`]. Everything already admitted is
    /// sealed as a final round and will still commit. Idempotent.
    pub fn close(&self) {
        let mut q = self.shared.q.lock().unwrap();
        if q.closed {
            return;
        }
        seal_open(&mut q);
        q.closed = true;
        self.shared.submitted.notify_all();
        self.shared.space.notify_all();
        // A min_version fence parked on a version that will now never
        // commit must observe the close and fail.
        self.shared.commits.notify_all();
    }

    /// Close (if not already closed), drain every pending round, stop the
    /// writer and hand back the backend plus the round log.
    pub fn join(mut self) -> ServiceReport<B> {
        self.close();
        let (backend, rounds) = self
            .writer
            .take()
            .expect("join consumes the writer exactly once")
            .join()
            .expect("dyncon-server writer panicked");
        ServiceReport {
            backend,
            rounds,
            rounds_committed: self.shared.rounds_committed.load(Ordering::Relaxed),
            ops_committed: self.shared.ops_committed.load(Ordering::Relaxed),
            metrics: self.registry.snapshot(),
            slowest_round: self.config.trace.as_ref().and_then(|t| t.slowest_round()),
        }
    }
}

impl<B: BatchDynamic + ExportEdges + Send + 'static> ConnServer<B> {
    /// [`ConnServer::start`], with MVCC versioned reads enabled: after
    /// every committed round the writer exports the backend's canonical
    /// edge list ([`ExportEdges`]) and publishes it as the [`ReadView`]
    /// of that round's [`Version`], retained for the last
    /// [`ServerConfig::retain_views`] versions
    /// ([`DEFAULT_RETAINED_VERSIONS`] when left at 0).
    ///
    /// Readers ([`ConnServer::read_view`], [`ConnServer::read_view_at`],
    /// [`ConnServer::read_async`]) clone retained views out from under a
    /// constant-time lock and never block the writer; the writer's only
    /// extra cost is the per-round export + label pass
    /// (`dyncon_server_snapshot_publish_ns`).
    ///
    /// When [`ServerConfig::first_version`] > 0 (a durable stack passing
    /// its recovered WAL round id), the starting state is published
    /// immediately as version `first_version - 1`, so recovered history
    /// is readable before the first new round commits.
    pub fn start_versioned(backend: B, config: ServerConfig) -> Self {
        Self::start_inner(
            backend,
            config,
            Some(Arc::new(|b: &B| b.export_edges()) as _),
        )
    }
}

impl<B: BatchDynamic + Send + 'static> VersionedRead for ConnServer<B> {
    /// The retained `[oldest, newest]` version range — `None` until the
    /// first publication, and always `None` on a server started without
    /// [`ConnServer::start_versioned`].
    fn version_window(&self) -> Option<(Version, Version)> {
        self.views.as_ref().and_then(|store| store.bounds())
    }

    /// A read-only view of the newest committed version. Never blocks
    /// the writer; the returned [`ReadView`] stays valid (and keeps
    /// answering as of its version) however far the server advances.
    fn read_view(&self) -> Result<ReadView, DynConError> {
        self.shared.metrics.read_view_requests.inc();
        let store = self
            .views
            .as_ref()
            .ok_or_else(|| dyncon_api::empty_window_error(0))?;
        let started = self.config.trace.as_ref().map(|_| Instant::now());
        let view = store.get_newest()?;
        self.shared.metrics.read_view_age_rounds.record(0);
        if let (Some(t), Some(started)) = (&self.config.trace, started) {
            t.record(view.version(), Stage::ViewResolve, started, 0);
        }
        Ok(view)
    }

    /// The view of exactly `version`, if still retained. Outside the
    /// window the error reports the retained bounds, typed:
    /// [`DynConError::UnknownVersion`].
    fn read_view_at(&self, version: Version) -> Result<ReadView, DynConError> {
        self.shared.metrics.read_view_requests.inc();
        let store = self
            .views
            .as_ref()
            .ok_or_else(|| dyncon_api::empty_window_error(version))?;
        let started = self.config.trace.as_ref().map(|_| Instant::now());
        let (view, age) = store.get_at(version)?;
        self.shared.metrics.read_view_age_rounds.record(age);
        if let (Some(t), Some(started)) = (&self.config.trace, started) {
            t.record(version, Stage::ViewResolve, started, 0);
        }
        Ok(view)
    }
}

impl<B: BatchDynamic + Send + 'static> Drop for ConnServer<B> {
    /// A dropped server still drains accepted requests (their tickets
    /// must resolve); the backend and log are discarded.
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            self.close();
            let _ = writer.join();
        }
    }
}

/// Move the open queue into `sealed` as one canonical round.
fn seal_open(q: &mut QueueState) -> usize {
    if q.open.is_empty() {
        return 0;
    }
    let mut round = std::mem::take(&mut q.open);
    q.open_ops = 0;
    q.open_since = None;
    // Canonical order: client id, then that client's own submission
    // order. Keys are unique (seq is globally unique), and relative order
    // within a client never depends on cross-client interleaving.
    round.sort_unstable_by_key(|r| (r.client, r.seq));
    let n = round.len();
    q.sealed.push_back(round);
    n
}

/// Take a prefix of the open queue totalling at most `cap` ops (always at
/// least one request, so an oversized request still commits — alone).
fn take_open_prefix(q: &mut QueueState, cap: usize) -> Vec<Request> {
    let mut taken = 0usize;
    let mut ops = 0usize;
    while taken < q.open.len() {
        let len = q.open[taken].ops.len();
        if taken > 0 && ops + len > cap {
            break;
        }
        ops += len;
        taken += 1;
        if ops >= cap {
            break;
        }
    }
    let rest = q.open.split_off(taken);
    let round = std::mem::replace(&mut q.open, rest);
    q.open_ops -= ops;
    // Leftover requests keep the old deadline: they have already waited a
    // full coalesce window, so the next round commits promptly.
    if q.open.is_empty() {
        q.open_since = None;
    }
    round
}

/// The single-writer commit loop. Owns the backend outright — group
/// commit *is* the concurrency control, so the structure itself needs no
/// locking — and returns it (plus the round log) at shutdown.
fn writer_loop<B: BatchDynamic + 'static>(
    mut backend: B,
    shared: Arc<Shared>,
    config: ServerConfig,
    publisher: Option<ViewPublisher<B>>,
) -> (B, Vec<RoundRecord>) {
    let num_vertices = backend.num_vertices();
    let pool = config.worker_threads.map(|t| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("build writer pool")
    });
    let mut log: Vec<RoundRecord> = Vec::new();
    loop {
        // Phase 1: pick the next round under the queue lock.
        let round: Vec<Request> = {
            let mut q = shared.q.lock().unwrap();
            loop {
                // Inspections first: they run between rounds, outside the
                // lock, against the fully-applied backend. Draining them
                // before the exit check below is what guarantees a
                // pending inspection is never stranded at shutdown.
                if !q.inspects.is_empty() {
                    let jobs: Vec<InspectJob> = q.inspects.drain(..).collect();
                    drop(q);
                    let version = newest_committed(
                        config.first_version,
                        shared.rounds_committed.load(Ordering::Relaxed),
                    );
                    for job in jobs {
                        job(&backend, version);
                    }
                    q = shared.q.lock().unwrap();
                    continue;
                }
                // Sealed rounds next, in seal order — in deterministic
                // mode they are the *only* source of rounds.
                if let Some(round) = q.sealed.pop_front() {
                    q.queued -= round.len();
                    shared.metrics.queue_depth.set(q.queued as i64);
                    if let Some(health) = &config.health {
                        health.set_pending(q.queued as i64);
                    }
                    break round;
                }
                if config.deterministic || q.open.is_empty() {
                    if q.closed {
                        // close() seals the open queue, so nothing is left.
                        debug_assert!(q.open.is_empty() && q.sealed.is_empty());
                        return (backend, log);
                    }
                    q = shared.submitted.wait(q).unwrap();
                    continue;
                }
                // Throughput mode with a non-empty open queue: commit when
                // the cap is reached, the coalesce window expired, or the
                // service is shutting down; otherwise wait the window out.
                let elapsed = q
                    .open_since
                    .expect("non-empty open queue has an admission time")
                    .elapsed();
                if q.closed
                    || q.open_ops >= config.max_batch_ops
                    || elapsed >= config.max_coalesce_wait
                {
                    let round = take_open_prefix(&mut q, config.max_batch_ops);
                    q.queued -= round.len();
                    shared.metrics.queue_depth.set(q.queued as i64);
                    if let Some(health) = &config.health {
                        health.set_pending(q.queued as i64);
                    }
                    break round;
                }
                let (guard, _timeout) = shared
                    .submitted
                    .wait_timeout(q, config.max_coalesce_wait - elapsed)
                    .unwrap();
                q = guard;
            }
        };
        shared.space.notify_all();
        // Only the writer increments the counter, so this load is the
        // number the round will commit under.
        let round_no = shared.rounds_committed.load(Ordering::Relaxed);
        let total_ops: usize = round.iter().map(|r| r.ops.len()).sum();
        // Tracing starts the round's wall clock at the instant the
        // writer took the round, and publishes the round number as the
        // attribution context for nested instrumentation (the WAL hook
        // and the shard coordinator run inside this round but only the
        // hook is told its number).
        let round_started = config.trace.as_ref().map(|t| {
            t.set_current_round(round_no);
            Instant::now()
        });
        // The health heartbeat keeps its own wall clock: taking a round
        // is progress (stall detection), committing it grades the SLO.
        let health_started = config.health.as_ref().map(|h| {
            h.note_round_start();
            Instant::now()
        });
        // Coalesce wait: how long the round's oldest request sat admitted.
        if let Some(oldest) = round.iter().map(|r| r.admitted).min() {
            let waited = oldest.elapsed();
            shared.metrics.coalesce_wait_ns.record_duration(waited);
            if let Some(t) = &config.trace {
                t.record_parts(
                    round_no,
                    Stage::CoalesceWait,
                    oldest,
                    waited,
                    total_ops as u64,
                    None,
                );
            }
        }

        // Phase 2: apply the round as ONE mixed-op batch, outside the lock.
        let mut ops: Vec<Op> = Vec::with_capacity(total_ops);
        for req in &round {
            ops.extend_from_slice(&req.ops);
        }

        // Durability hook: the round's contents are fixed now, so log it
        // BEFORE apply — one append (and one fsync) per commit round,
        // which is what makes group commit and group fsync coincide. A
        // round that cannot be made durable must not commit: fail its
        // tickets with the hook's error and stop the service.
        if let Some(hook) = &config.round_hook {
            if let Err(e) = hook(round_no, &ops) {
                // Close admission BEFORE resolving the round's tickets:
                // a client that sees its ticket fail must not race a
                // still-open queue.
                fail_all_pending(&shared, &[]);
                for req in &round {
                    req.slot.fill(Err(e.clone()));
                }
                return (backend, log);
            }
        }
        // From here on, an apply failure must un-log the round: clients
        // are told it never committed, so recovery must not find it.
        let abort_logged_round = || {
            if let Some(abort) = &config.round_abort {
                // Best effort — the service is already failing, and the
                // abort hook's own error cannot make things more failed.
                let _ = abort(round_no, &ops);
            }
        };

        // A panicking backend must not strand clients on their tickets:
        // catch the unwind, resolve everything pending, then re-raise (the
        // panic resurfaces at `join`).
        let apply_started = Instant::now();
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &pool {
            Some(p) => p.install(|| backend.apply(&ops)),
            None => backend.apply(&ops),
        }));
        let applied = match applied {
            Ok(applied) => applied,
            Err(panic) => {
                abort_logged_round();
                fail_all_pending(&shared, &round);
                std::panic::resume_unwind(panic);
            }
        };
        shared
            .metrics
            .apply_ns
            .record_duration(apply_started.elapsed());
        if let Some(t) = &config.trace {
            t.record(round_no, Stage::Apply, apply_started, total_ops as u64);
        }

        // Phase 3: publish the round's view, then hand each submitter its
        // slice of the answers.
        match applied {
            Ok(result) => {
                let version = config.first_version + round_no;
                // Publish BEFORE resolving tickets: a client that saw its
                // ticket commit as `version` must find `read_view_at(version)`
                // already there.
                if let Some(publisher) = &publisher {
                    traced(config.trace.as_ref(), round_no, Stage::Publish, 0, || {
                        publish_view(publisher, &backend, num_vertices, version, &shared.metrics)
                    });
                }
                shared.rounds_committed.fetch_add(1, Ordering::Relaxed);
                shared
                    .ops_committed
                    .fetch_add(ops.len() as u64, Ordering::Relaxed);
                shared.metrics.rounds_committed.inc();
                shared.metrics.ops_committed.add(ops.len() as u64);
                shared.metrics.round_size_ops.record(ops.len() as u64);
                if let (Some(h), Some(started)) = (&config.health, health_started) {
                    h.note_round_commit(started.elapsed());
                }
                // Wake min_version fences now that the commit counter
                // advanced (the notify pairs with the fence's q-lock wait).
                {
                    let _q = shared.q.lock().unwrap();
                    shared.commits.notify_all();
                }
                // The fill span counts requests resolved, not ops — a
                // round's fill cost scales with its coalesced clients.
                traced(
                    config.trace.as_ref(),
                    round_no,
                    Stage::Fill,
                    round.len() as u64,
                    || {
                        let mut cursor = result.answers.iter().copied();
                        for req in &round {
                            let queries = req
                                .ops
                                .iter()
                                .filter(|op| op.kind() == OpKind::Query)
                                .count();
                            let answers: Vec<bool> = cursor.by_ref().take(queries).collect();
                            debug_assert_eq!(answers.len(), queries, "answer underrun");
                            req.slot.fill(Ok(RequestResult {
                                round: round_no,
                                version,
                                inserted: result.inserted,
                                deleted: result.deleted,
                                answers,
                            }));
                        }
                    },
                );
                if let (Some(t), Some(started)) = (&config.trace, round_started) {
                    t.complete_round(round_no, started.elapsed(), total_ops as u64);
                }
                if config.record_rounds {
                    log.push(RoundRecord {
                        round: round_no,
                        ops,
                        result,
                    });
                }
            }
            Err(e) => {
                // Defensive only: admission validates vertices *and* op
                // kinds against the backend's static capabilities, so a
                // round has no expected failure path left. Should a
                // backend refuse anyway, it has applied a prefix of the
                // round (`apply`'s documented partial semantics) that the
                // replay log cannot represent — un-log the round, fail
                // its tickets and stop the service rather than committing
                // divergent history; requests already queued behind it
                // resolve too.
                abort_logged_round();
                fail_all_pending(&shared, &[]);
                for req in &round {
                    req.slot.fill(Err(e.clone()));
                }
                return (backend, log);
            }
        }
    }
}

/// Shutdown-on-failure path: close admission, wake blocked submitters and
/// resolve every still-queued request with [`DynConError::ServiceClosed`]
/// so no client is left parked on a ticket.
fn fail_all_pending(shared: &Shared, round_in_flight: &[Request]) {
    for req in round_in_flight {
        req.slot.fill(Err(DynConError::ServiceClosed));
    }
    let mut q = shared.q.lock().unwrap();
    q.closed = true;
    let mut pending: Vec<Request> = q.sealed.drain(..).flatten().collect();
    pending.append(&mut q.open);
    // Dropping a pending inspection hangs up its result channel, which
    // resolves its caller with `ServiceClosed` — the backend may be
    // mid-failure, so the closures must NOT run.
    q.inspects.clear();
    q.queued = 0;
    q.open_ops = 0;
    q.open_since = None;
    drop(q);
    shared.space.notify_all();
    shared.submitted.notify_all();
    shared.commits.notify_all();
    for req in pending {
        req.slot.fill(Err(DynConError::ServiceClosed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncon_api::Connectivity;
    use dyncon_core::BatchDynamicConnectivity;
    use dyncon_spanning::IncrementalConnectivity;
    use std::time::Duration;

    fn server(n: usize, config: ServerConfig) -> ConnServer<BatchDynamicConnectivity> {
        ConnServer::start(BatchDynamicConnectivity::new(n), config)
    }

    #[test]
    fn single_client_round_trip() {
        let s = server(8, ServerConfig::new());
        let t = s
            .submit(vec![Op::Insert(0, 1), Op::Query(0, 1), Op::Query(0, 2)])
            .unwrap();
        let r = t.wait().unwrap();
        assert_eq!(r.answers, vec![true, false]);
        let report = s.join();
        assert_eq!(report.rounds_committed, 1);
        assert_eq!(report.ops_committed, 3);
        assert!(report.backend.connected(0, 1));
    }

    #[test]
    fn group_commit_coalesces_requests_into_one_round() {
        // Deterministic mode gives an explicit boundary: three requests,
        // one seal, one round, one apply.
        let s = server(
            8,
            ServerConfig::new().deterministic(true).record_rounds(true),
        );
        let t1 = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        let t2 = s.submit_as(1, vec![Op::Insert(1, 2)]).unwrap();
        let t3 = s.submit_as(2, vec![Op::Query(0, 2)]).unwrap();
        assert_eq!(s.seal_round(), 3);
        // All three land in round 0; the query sees both inserts because
        // apply's run-splitting preserves op order within the round.
        assert_eq!(t1.wait().unwrap().round, 0);
        assert_eq!(t2.wait().unwrap().round, 0);
        let r3 = t3.wait().unwrap();
        assert_eq!((r3.round, r3.answers.as_slice()), (0, &[true][..]));
        let report = s.join();
        assert_eq!(report.rounds_committed, 1);
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(
            report.rounds[0].ops,
            vec![Op::Insert(0, 1), Op::Insert(1, 2), Op::Query(0, 2)]
        );
        assert_eq!(report.rounds[0].result.inserted, 2);
    }

    #[test]
    fn canonical_order_sorts_by_client_then_program_order() {
        let s = server(
            8,
            ServerConfig::new().deterministic(true).record_rounds(true),
        );
        // Submit in scrambled client order; the sealed round must come out
        // client-major, program-order within each client.
        let tb = s.submit_as(7, vec![Op::Insert(2, 3)]).unwrap();
        let ta1 = s.submit_as(1, vec![Op::Insert(0, 1)]).unwrap();
        let ta2 = s.submit_as(1, vec![Op::Query(0, 1)]).unwrap();
        s.seal_round();
        for t in [tb, ta1, ta2] {
            t.wait().unwrap();
        }
        let report = s.join();
        assert_eq!(
            report.rounds[0].ops,
            vec![Op::Insert(0, 1), Op::Query(0, 1), Op::Insert(2, 3)]
        );
    }

    #[test]
    fn batch_cap_splits_rounds_and_oversized_requests_commit_alone() {
        let s = server(
            16,
            ServerConfig::new()
                .batch_cap(4)
                .coalesce_wait(Duration::from_millis(40))
                .record_rounds(true),
        );
        // 6 ops in one request: exceeds the cap, must still commit.
        let big: Vec<Op> = (0..6).map(|i| Op::Insert(i, i + 1)).collect();
        let t1 = s.submit(big).unwrap();
        assert_eq!(t1.wait().unwrap().round, 0);
        // Two 3-op requests: the second overflows the 4-op cap, so they
        // commit as separate rounds (no starvation: the leftover keeps
        // its admission deadline).
        let t2 = s.submit(vec![Op::Query(0, 6); 3]).unwrap();
        let t3 = s.submit(vec![Op::Query(0, 6); 3]).unwrap();
        let (r2, r3) = (t2.wait().unwrap(), t3.wait().unwrap());
        assert!(r3.round > r2.round, "{} vs {}", r3.round, r2.round);
        assert_eq!(r2.answers, vec![true; 3]);
        let report = s.join();
        assert_eq!(report.rounds_committed, 3);
        assert_eq!(report.ops_committed, 12);
    }

    #[test]
    fn coalesce_window_commits_partial_batches() {
        // Far-below-cap traffic must still commit within the window.
        let s = server(
            8,
            ServerConfig::new()
                .batch_cap(1 << 20)
                .coalesce_wait(Duration::from_micros(50)),
        );
        let t = s.submit(vec![Op::Insert(0, 1), Op::Query(0, 1)]).unwrap();
        assert_eq!(t.wait().unwrap().answers, vec![true]);
        s.join();
    }

    #[test]
    fn submit_validates_vertices_at_admission() {
        let s = server(4, ServerConfig::new());
        let err = s.submit(vec![Op::Insert(0, 9)]).unwrap_err();
        assert_eq!(
            err,
            DynConError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 4
            }
        );
        let report = s.join();
        assert_eq!(report.rounds_committed, 0);
    }

    #[test]
    fn unsupported_ops_are_bounced_at_admission() {
        // An insert-only backend refuses deletions *statically*, so the
        // server rejects the request before it can poison a round that
        // other clients' requests share.
        let uf = IncrementalConnectivity::new(8);
        let s = ConnServer::start(uf, ServerConfig::new().deterministic(true));
        let t1 = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        let err = s
            .submit_as(1, vec![Op::Insert(1, 2), Op::Delete(0, 1)])
            .unwrap_err();
        assert_eq!(
            err,
            DynConError::Unsupported {
                backend: "incremental-unionfind",
                operation: "batch_delete",
            }
        );
        // The admitted insert still commits; the rejected request never
        // entered the queue.
        s.seal_round();
        assert_eq!(t1.wait().unwrap().round, 0);
        let report = s.join();
        assert_eq!(report.ops_committed, 1);
        // Queries remain admissible on the insert-only backend.
        assert!(report.backend.connected(0, 1));
    }

    /// A backend whose `apply` panics after `panic_after` successful
    /// rounds — the writer-crash scenario.
    struct Bomb {
        inner: BatchDynamicConnectivity,
        rounds_left: usize,
    }

    impl dyncon_api::Connectivity for Bomb {
        fn backend_name(&self) -> &'static str {
            "bomb"
        }
        fn num_vertices(&self) -> usize {
            self.inner.num_vertices()
        }
        fn connected(&self, u: u32, v: u32) -> bool {
            dyncon_api::Connectivity::connected(&self.inner, u, v)
        }
        fn num_components(&self) -> usize {
            dyncon_api::Connectivity::num_components(&self.inner)
        }
        fn component_size(&self, v: u32) -> u64 {
            dyncon_api::Connectivity::component_size(&self.inner, v)
        }
    }

    impl BatchDynamic for Bomb {
        fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
            BatchDynamic::batch_insert(&mut self.inner, edges)
        }
        fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
            BatchDynamic::batch_delete(&mut self.inner, edges)
        }
        fn apply(&mut self, ops: &[Op]) -> Result<dyncon_api::BatchResult, DynConError> {
            if self.rounds_left == 0 {
                panic!("bomb backend detonated");
            }
            self.rounds_left -= 1;
            self.inner.apply(ops)
        }
    }

    #[test]
    fn backend_panic_resolves_every_pending_ticket() {
        let bomb = Bomb {
            inner: BatchDynamicConnectivity::new(8),
            rounds_left: 1,
        };
        let s = ConnServer::start(bomb, ServerConfig::new().deterministic(true));
        let ok = s
            .submit_as(0, vec![Op::Insert(0, 1), Op::Query(0, 1)])
            .unwrap();
        s.seal_round();
        assert_eq!(ok.wait().unwrap().answers, vec![true]);
        // Round 1 detonates; its ticket AND a request racing the crash
        // must both resolve instead of hanging forever.
        let in_flight = s.submit_as(0, vec![Op::Insert(1, 2)]).unwrap();
        s.seal_round();
        // This submit races the detonation: it is either bounced at
        // admission (already closed) or admitted and then failed by the
        // crash cleanup — never left hanging.
        match s.submit_as(1, vec![Op::Query(0, 1)]) {
            Ok(ticket) => assert_eq!(ticket.wait().unwrap_err(), DynConError::ServiceClosed),
            Err(e) => assert_eq!(e, DynConError::ServiceClosed),
        }
        assert_eq!(in_flight.wait().unwrap_err(), DynConError::ServiceClosed);
        // Admission is closed after the crash…
        assert_eq!(
            s.submit_as(2, vec![Op::Query(0, 1)]).unwrap_err(),
            DynConError::ServiceClosed
        );
        // …and the writer's panic resurfaces at join.
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.join()));
        assert!(joined.is_err(), "join must surface the backend panic");
    }

    #[test]
    fn tickets_carry_round_level_mutation_counts() {
        let s = server(8, ServerConfig::new().deterministic(true));
        // Two requests coalesce into one round: every ticket of the round
        // reports the SAME round-level aggregates (2 inserted, 1 deleted),
        // while answers stay per-request.
        let t1 = s
            .submit_as(
                0,
                vec![Op::Insert(0, 1), Op::Insert(1, 2), Op::Delete(0, 1)],
            )
            .unwrap();
        let t2 = s.submit_as(1, vec![Op::Query(0, 2)]).unwrap();
        s.seal_round();
        let (r1, r2) = (t1.wait().unwrap(), t2.wait().unwrap());
        assert_eq!((r1.inserted, r1.deleted), (2, 1));
        assert_eq!((r2.inserted, r2.deleted), (2, 1));
        assert_eq!(r1.answers, Vec::<bool>::new());
        assert_eq!(r2.answers, vec![false], "0-1 was deleted in the round");
        s.join();
    }

    #[test]
    fn inspect_runs_between_rounds_and_sees_committed_state() {
        let s = server(8, ServerConfig::new().deterministic(true));
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        t.wait().unwrap();
        // The ticket resolved, so the inspection observes its round.
        let (connected, name) = s
            .inspect(|b| (b.connected(0, 1), b.backend_name()))
            .unwrap();
        assert!(connected);
        assert_eq!(name, s.backend_name());
        // Interleave: inspect, mutate, inspect again.
        let t = s.submit_as(0, vec![Op::Delete(0, 1)]).unwrap();
        s.seal_round();
        t.wait().unwrap();
        assert!(!s.inspect(|b| b.connected(0, 1)).unwrap());
        s.join();
    }

    #[test]
    fn inspect_after_close_or_crash_fails_instead_of_hanging() {
        let s = server(8, ServerConfig::new());
        s.close();
        assert_eq!(
            s.inspect(|b| b.num_components()).unwrap_err(),
            DynConError::ServiceClosed
        );
        s.join();
        // Crash path: pending inspections are dropped, not run.
        let bomb = Bomb {
            inner: BatchDynamicConnectivity::new(8),
            rounds_left: 0,
        };
        let s = ConnServer::start(bomb, ServerConfig::new().deterministic(true));
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        assert!(t.wait().is_err());
        assert_eq!(
            s.inspect(|b| b.num_components()).unwrap_err(),
            DynConError::ServiceClosed
        );
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.join()));
        assert!(joined.is_err());
    }

    #[test]
    fn deterministic_mode_without_recording_keeps_no_round_log() {
        // Regression: the in-memory round log must be gated ONLY by
        // `record_rounds` — deterministic long-running servers would
        // otherwise grow memory without bound.
        let s = server(8, ServerConfig::new().deterministic(true));
        let t = s
            .submit_as(0, vec![Op::Insert(0, 1), Op::Query(0, 1)])
            .unwrap();
        s.seal_round();
        assert_eq!(t.wait().unwrap().answers, vec![true]);
        let report = s.join();
        assert_eq!(report.rounds_committed, 1, "the round still committed");
        assert!(report.rounds.is_empty(), "but nothing was recorded");
    }

    #[test]
    fn round_hook_sees_each_round_before_apply() {
        use std::sync::Mutex;
        type SeenRounds = Arc<Mutex<Vec<(u64, Vec<Op>)>>>;
        let seen: SeenRounds = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let config =
            ServerConfig::new()
                .deterministic(true)
                .round_hook(Arc::new(move |round, ops| {
                    sink.lock().unwrap().push((round, ops.to_vec()));
                    Ok(())
                }));
        let s = server(8, config);
        let t1 = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        // Group commit IS the durability barrier: once any ticket of a
        // round resolves, the hook has already run for that round.
        t1.wait().unwrap();
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[(0, vec![Op::Insert(0, 1)])]
        );
        let t2 = s
            .submit_as(0, vec![Op::Query(0, 1), Op::Delete(0, 1)])
            .unwrap();
        s.seal_round();
        t2.wait().unwrap();
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[
                (0, vec![Op::Insert(0, 1)]),
                (1, vec![Op::Query(0, 1), Op::Delete(0, 1)])
            ]
        );
        s.join();
    }

    #[test]
    fn failing_round_hook_fails_the_round_and_stops_the_service() {
        let storage_error = DynConError::Storage {
            path: "/dev/full".into(),
            message: "No space left on device".into(),
        };
        let e = storage_error.clone();
        let config =
            ServerConfig::new()
                .deterministic(true)
                .round_hook(Arc::new(
                    move |round, _ops| {
                        if round == 0 {
                            Ok(())
                        } else {
                            Err(e.clone())
                        }
                    },
                ));
        let s = server(8, config);
        let ok = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        assert_eq!(ok.wait().unwrap().round, 0);
        // Round 1 cannot be made durable: its ticket carries the hook's
        // typed error, nothing is applied, and admission closes.
        let failed = s
            .submit_as(0, vec![Op::Insert(1, 2), Op::Query(1, 2)])
            .unwrap();
        s.seal_round();
        assert_eq!(failed.wait().unwrap_err(), storage_error);
        assert_eq!(
            s.submit_as(1, vec![Op::Query(0, 1)]).unwrap_err(),
            DynConError::ServiceClosed
        );
        let report = s.join();
        assert_eq!(report.rounds_committed, 1, "failed round never committed");
        assert!(report.backend.connected(0, 1));
        assert!(!report.backend.connected(1, 2), "failed round not applied");
    }

    #[test]
    fn apply_panic_after_successful_hook_triggers_the_abort_hook() {
        use std::sync::Mutex;
        // A round that was logged (hook succeeded) but whose apply then
        // panicked must be un-logged: clients are told it failed, so the
        // durability layer has to be able to retract it.
        let logged: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let aborted: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let (log_sink, abort_sink) = (Arc::clone(&logged), Arc::clone(&aborted));
        let config = ServerConfig::new()
            .deterministic(true)
            .round_hook(Arc::new(move |round, _ops| {
                log_sink.lock().unwrap().push(round);
                Ok(())
            }))
            .round_abort(Arc::new(move |round, _ops| {
                abort_sink.lock().unwrap().push(round);
                Ok(())
            }));
        let bomb = Bomb {
            inner: BatchDynamicConnectivity::new(8),
            rounds_left: 1,
        };
        let s = ConnServer::start(bomb, config);
        let ok = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        ok.wait().unwrap();
        let boom = s.submit_as(0, vec![Op::Insert(1, 2)]).unwrap();
        s.seal_round();
        assert!(boom.wait().is_err());
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.join()));
        assert!(joined.is_err(), "the backend panic resurfaces at join");
        // Round 0 was logged and committed; round 1 was logged, its
        // apply detonated, and the abort hook retracted exactly it.
        assert_eq!(*logged.lock().unwrap(), vec![0, 1]);
        assert_eq!(*aborted.lock().unwrap(), vec![1]);
    }

    #[test]
    fn empty_request_is_a_durable_flush() {
        let s = server(4, ServerConfig::new());
        let t0 = s.submit(vec![Op::Insert(0, 1)]).unwrap();
        let t = s.submit(Vec::new()).unwrap();
        let r = t.wait().unwrap();
        assert!(r.answers.is_empty());
        // Group commit: by the time any ticket of a round resolves, every
        // earlier round is durable.
        assert!(t0.ready() || t0.wait().is_ok());
        s.join();
    }

    #[test]
    fn drop_without_join_still_resolves_tickets() {
        let s = server(
            8,
            ServerConfig::new().coalesce_wait(Duration::from_millis(20)),
        );
        let t = s.submit(vec![Op::Insert(0, 1), Op::Query(0, 1)]).unwrap();
        drop(s);
        assert_eq!(t.wait().unwrap().answers, vec![true]);
    }

    #[test]
    fn metrics_observe_the_round_lifecycle() {
        let registry = dyncon_metrics::Registry::new();
        let s = server(
            8,
            ServerConfig::new()
                .deterministic(true)
                .queue_capacity(2)
                .metrics(registry.clone()),
        );
        let t1 = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        let t2 = s.submit_as(1, vec![Op::Query(0, 1)]).unwrap();
        // Queue full at 2 admitted requests: a backpressure reject.
        assert!(matches!(
            s.submit_as(2, vec![Op::Query(0, 1)]),
            Err(DynConError::Backpressure { .. })
        ));
        // Out-of-range vertex: an admission (validation) reject.
        assert!(s.submit_as(2, vec![Op::Insert(0, 99)]).is_err());
        s.seal_round();
        t1.wait().unwrap();
        t2.wait().unwrap();
        // Live snapshot: the queue drained, high-water mark was 2.
        assert_eq!(
            s.metrics_snapshot()
                .get("dyncon_server_queue_depth")
                .unwrap()
                .value
                .as_gauge(),
            Some((0, 2))
        );
        let report = s.join();
        let get = |name: &str| report.metrics.get(name).unwrap().value.clone();
        assert_eq!(
            get("dyncon_server_rounds_committed_total").as_counter(),
            Some(1)
        );
        assert_eq!(
            get("dyncon_server_ops_committed_total").as_counter(),
            Some(2)
        );
        assert_eq!(
            get("dyncon_server_backpressure_rejects_total").as_counter(),
            Some(1)
        );
        assert_eq!(
            get("dyncon_server_admission_rejects_total").as_counter(),
            Some(1)
        );
        let sizes = get("dyncon_server_round_size_ops");
        let sizes = sizes.as_histogram().unwrap();
        assert_eq!((sizes.count, sizes.sum), (1, 2));
        let apply = get("dyncon_server_apply_ns");
        assert_eq!(apply.as_histogram().unwrap().count, 1);
        let wait = get("dyncon_server_coalesce_wait_ns");
        assert_eq!(wait.as_histogram().unwrap().count, 1);
        // The caller's registry IS the report's registry.
        assert_eq!(registry.snapshot(), report.metrics);
    }

    #[test]
    fn metrics_default_to_a_private_registry() {
        // No registry passed: instrumentation still works, surfaced only
        // through the report and the live snapshot.
        let s = server(8, ServerConfig::new());
        s.submit(vec![Op::Insert(0, 1)]).unwrap().wait().unwrap();
        let report = s.join();
        assert_eq!(
            report
                .metrics
                .get("dyncon_server_rounds_committed_total")
                .unwrap()
                .value
                .as_counter(),
            Some(1)
        );
    }

    #[test]
    fn accessors() {
        let s = server(16, ServerConfig::new());
        assert_eq!(s.num_vertices(), 16);
        assert!(!s.backend_name().is_empty());
        let t = s.submit(vec![Op::Insert(0, 1)]).unwrap();
        t.wait().unwrap();
        assert_eq!(s.rounds_committed(), 1);
        assert_eq!(s.ops_committed(), 1);
        s.join();
    }

    fn versioned_server(n: usize, config: ServerConfig) -> ConnServer<BatchDynamicConnectivity> {
        ConnServer::start_versioned(BatchDynamicConnectivity::new(n), config)
    }

    #[test]
    fn versioned_server_publishes_one_view_per_round() {
        let s = versioned_server(8, ServerConfig::new().deterministic(true).retain_views(2));
        assert_eq!(s.version_window(), None, "nothing committed yet");
        assert_eq!(s.newest_committed(), None);
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        let r = t.wait().unwrap();
        assert_eq!((r.round, r.version), (0, 0));
        // The view of the committed version is already there (publish
        // happens before the ticket resolves) and answers as-of.
        let v0 = s.read_view_at(r.version).unwrap();
        assert!(v0.connected(0, 1));
        assert!(!v0.connected(0, 2));
        let t = s.submit_as(0, vec![Op::Insert(1, 2)]).unwrap();
        s.seal_round();
        let r1 = t.wait().unwrap();
        assert_eq!(r1.version, 1);
        // v0 is immutable: it still answers as of version 0.
        assert!(!v0.connected(0, 2));
        assert!(s.read_view().unwrap().connected(0, 2));
        assert_eq!(s.version_window(), Some((0, 1)));
        // A third round evicts version 0 from the retain=2 window.
        let t = s.submit_as(0, vec![Op::Delete(0, 1)]).unwrap();
        s.seal_round();
        t.wait().unwrap();
        assert_eq!(s.version_window(), Some((1, 2)));
        assert_eq!(
            s.read_view_at(0).unwrap_err(),
            DynConError::UnknownVersion {
                requested: 0,
                oldest: 1,
                newest: 2
            }
        );
        s.join();
    }

    #[test]
    fn unversioned_server_has_no_views() {
        let s = server(8, ServerConfig::new());
        s.submit(vec![Op::Insert(0, 1)]).unwrap().wait().unwrap();
        assert_eq!(s.version_window(), None);
        assert!(matches!(
            s.read_view().unwrap_err(),
            DynConError::UnknownVersion { .. }
        ));
        // newest_committed still advances: it is a commit fact, not a
        // retention fact.
        assert_eq!(s.newest_committed(), Some(0));
        s.join();
    }

    #[test]
    fn min_version_fence_gates_admission() {
        let s = versioned_server(8, ServerConfig::new().deterministic(true));
        // Non-blocking fence on a future version: typed rejection.
        let err = s
            .submit_with(
                vec![Op::Query(0, 1)],
                SubmitOptions::new().as_client(0).min_version(0),
            )
            .unwrap_err();
        assert!(
            matches!(err, DynConError::UnknownVersion { requested: 0, .. }),
            "{err:?}"
        );
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        assert_eq!(t.wait().unwrap().version, 0);
        // Version 0 committed: the same fence now admits, and the round
        // observes the fenced write (read-your-writes).
        let t = s
            .submit_with(
                vec![Op::Query(0, 1)],
                SubmitOptions::new().as_client(0).min_version(0),
            )
            .unwrap();
        s.seal_round();
        assert_eq!(t.wait().unwrap().answers, vec![true]);
        s.join();
    }

    #[test]
    fn blocking_fence_waits_for_the_commit() {
        let s = Arc::new(versioned_server(8, ServerConfig::new().deterministic(true)));
        let fenced = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                s.submit_with(
                    vec![Op::Query(0, 1)],
                    SubmitOptions::new()
                        .as_client(9)
                        .blocking(true)
                        .min_version(0),
                )
                .and_then(|t| {
                    // The fenced request is admitted into the NEXT round;
                    // seal it from here (the submitting side) so the test
                    // does not race the main thread's seals.
                    s.seal_round();
                    t.wait()
                })
            })
        };
        // Give the fence a moment to park, then commit version 0.
        std::thread::sleep(Duration::from_millis(10));
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        t.wait().unwrap();
        let r = fenced.join().unwrap().unwrap();
        assert_eq!(r.answers, vec![true], "fence admitted after version 0");
        assert!(r.version >= 1);
        Arc::try_unwrap(s).ok().expect("last owner").join();
    }

    #[test]
    fn blocking_fence_fails_on_close_instead_of_hanging() {
        let s = Arc::new(versioned_server(8, ServerConfig::new().deterministic(true)));
        let fenced = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                s.submit_with(
                    vec![Op::Query(0, 1)],
                    SubmitOptions::new().blocking(true).min_version(7),
                )
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        s.close();
        assert_eq!(
            fenced.join().unwrap().unwrap_err(),
            DynConError::ServiceClosed
        );
        Arc::try_unwrap(s).ok().expect("last owner").join();
    }

    #[test]
    fn read_async_runs_on_the_reader_pool() {
        let s = versioned_server(8, ServerConfig::new().deterministic(true).reader_threads(2));
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        t.wait().unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| s.read_async(|view| (view.version(), view.connected(0, 1))))
            .collect();
        for h in handles {
            assert_eq!(h.wait().unwrap().unwrap(), (0, true));
        }
        // An out-of-window version resolves immediately with the error.
        let h = s.read_async_at(42, |view| view.version());
        assert!(h.wait().unwrap().is_err());
        s.join();
    }

    #[test]
    fn inspect_versioned_names_the_observed_version() {
        let s = versioned_server(8, ServerConfig::new().deterministic(true));
        assert_eq!(
            s.inspect_versioned(|_, version| version).unwrap(),
            None,
            "no round committed yet"
        );
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        t.wait().unwrap();
        let (version, connected) = s
            .inspect_versioned(|b, version| (version, b.connected(0, 1)))
            .unwrap();
        assert_eq!(version, Some(0));
        assert!(connected);
        s.join();
    }

    #[test]
    fn view_metrics_count_requests_and_retention() {
        let registry = dyncon_metrics::Registry::new();
        let s = versioned_server(
            8,
            ServerConfig::new()
                .deterministic(true)
                .retain_views(4)
                .metrics(registry.clone()),
        );
        let t = s.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        s.seal_round();
        t.wait().unwrap();
        s.read_view().unwrap();
        s.read_view_at(0).unwrap();
        let _ = s.read_view_at(9); // rejected, still counted
        let snap = s.metrics_snapshot();
        let get = |name: &str| snap.get(name).unwrap().value.clone();
        assert_eq!(
            get("dyncon_server_read_view_requests_total").as_counter(),
            Some(3)
        );
        assert_eq!(
            get("dyncon_server_snapshot_retained").as_gauge(),
            Some((1, 1))
        );
        assert_eq!(
            get("dyncon_server_snapshot_publish_ns")
                .as_histogram()
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            get("dyncon_server_read_view_age_rounds")
                .as_histogram()
                .unwrap()
                .count,
            2,
            "only served views record an age"
        );
        s.join();
    }
}
