//! Group-commit knobs.

use std::time::Duration;

/// Configuration of a [`crate::ConnServer`].
///
/// The defaults target throughput mode: admission-ordered rounds, commit
/// on a 4096-op batch or a 200 µs coalesce window, 1024 queued requests
/// of backpressure headroom. Deterministic mode
/// ([`ServerConfig::deterministic`]) switches to explicit round
/// boundaries and canonical request order.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Commit a round once the pending operations reach this many
    /// (throughput mode only; a single oversized request still commits,
    /// alone). The cap trades latency for the `lg(1 + n/k)` batch
    /// amortization — bigger rounds are cheaper per op.
    pub max_batch_ops: usize,
    /// Commit a round once the oldest pending request has waited this
    /// long, even if the batch cap is not reached (throughput mode only).
    pub max_coalesce_wait: Duration,
    /// Bound on requests admitted but not yet committed. A full queue
    /// rejects with [`dyncon_api::DynConError::Backpressure`].
    pub queue_capacity: usize,
    /// Deterministic mode: rounds end only at explicit
    /// [`crate::ConnServer::seal_round`] calls and each round is applied
    /// in canonical `(client, submission index)` order, so concurrent
    /// submission is byte-identical to serial replay. Enabling this also
    /// turns on [`ServerConfig::record_rounds`].
    pub deterministic: bool,
    /// Keep a [`crate::RoundRecord`] (ops + `BatchResult`) per committed
    /// round in the [`crate::ServiceReport`] — the replay log the
    /// determinism contract is checked against. Off by default in
    /// throughput mode (the log grows with traffic).
    pub record_rounds: bool,
    /// Pin the writer's rayon pool to this many threads for the backend's
    /// batch-parallel `apply`. `None` inherits the process default
    /// (`DYNCON_THREADS` / `RAYON_NUM_THREADS`).
    pub worker_threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch_ops: 4096,
            max_coalesce_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            deterministic: false,
            record_rounds: false,
            worker_threads: None,
        }
    }
}

impl ServerConfig {
    /// The throughput-mode defaults (see the struct docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set [`ServerConfig::max_batch_ops`].
    pub fn batch_cap(mut self, ops: usize) -> Self {
        self.max_batch_ops = ops.max(1);
        self
    }

    /// Set [`ServerConfig::max_coalesce_wait`].
    pub fn coalesce_wait(mut self, wait: Duration) -> Self {
        self.max_coalesce_wait = wait;
        self
    }

    /// Set [`ServerConfig::queue_capacity`].
    pub fn queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = requests.max(1);
        self
    }

    /// Toggle deterministic mode (implies round recording when enabled).
    pub fn deterministic(mut self, enabled: bool) -> Self {
        self.deterministic = enabled;
        if enabled {
            self.record_rounds = true;
        }
        self
    }

    /// Toggle the per-round replay log independently of the mode.
    pub fn record_rounds(mut self, enabled: bool) -> Self {
        self.record_rounds = enabled;
        self
    }

    /// Pin the writer's apply pool to `threads` workers.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = ServerConfig::new()
            .batch_cap(128)
            .coalesce_wait(Duration::from_millis(1))
            .queue_capacity(7)
            .deterministic(true)
            .worker_threads(2);
        assert_eq!(c.max_batch_ops, 128);
        assert_eq!(c.max_coalesce_wait, Duration::from_millis(1));
        assert_eq!(c.queue_capacity, 7);
        assert!(c.deterministic && c.record_rounds);
        assert_eq!(c.worker_threads, Some(2));
        // Zero-valued knobs are clamped to usable minimums.
        let z = ServerConfig::new()
            .batch_cap(0)
            .queue_capacity(0)
            .worker_threads(0);
        assert_eq!(
            (z.max_batch_ops, z.queue_capacity, z.worker_threads),
            (1, 1, Some(1))
        );
    }

    #[test]
    fn recording_is_independent_of_mode() {
        let c = ServerConfig::new().record_rounds(true);
        assert!(c.record_rounds && !c.deterministic);
        let d = ServerConfig::new().deterministic(true).record_rounds(false);
        assert!(d.deterministic && !d.record_rounds);
    }
}
