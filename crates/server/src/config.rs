//! Group-commit knobs.

use dyncon_api::{DynConError, Op};
use dyncon_export::HealthState;
use dyncon_metrics::Registry;
use dyncon_trace::TraceRecorder;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A per-round callback the writer runs **after** a round's operations
/// are fixed and **before** they are applied to the backend — the
/// durability hook: a write-ahead logger appends (and fsyncs) here, so
/// group commit and group fsync coincide (one log write per round, not
/// per request). Arguments are the server-local round number and the
/// round's concatenated operations in applied order.
///
/// Returning `Err` fails the round: its tickets resolve with that error,
/// nothing is applied to the backend, and the service shuts down (a
/// round that cannot be made durable must not commit).
pub type RoundHook = Arc<dyn Fn(u64, &[Op]) -> Result<(), DynConError> + Send + Sync>;

/// Configuration of a [`crate::ConnServer`].
///
/// The defaults target throughput mode: admission-ordered rounds, commit
/// on a 4096-op batch or a 200 µs coalesce window, 1024 queued requests
/// of backpressure headroom. Deterministic mode
/// ([`ServerConfig::deterministic`]) switches to explicit round
/// boundaries and canonical request order.
#[derive(Clone)]
pub struct ServerConfig {
    /// Commit a round once the pending operations reach this many
    /// (throughput mode only; a single oversized request still commits,
    /// alone). The cap trades latency for the `lg(1 + n/k)` batch
    /// amortization — bigger rounds are cheaper per op.
    pub max_batch_ops: usize,
    /// Commit a round once the oldest pending request has waited this
    /// long, even if the batch cap is not reached (throughput mode only).
    pub max_coalesce_wait: Duration,
    /// Bound on requests admitted but not yet committed. A full queue
    /// rejects with [`dyncon_api::DynConError::Backpressure`].
    pub queue_capacity: usize,
    /// Deterministic mode: rounds end only at explicit
    /// [`crate::ConnServer::seal_round`] calls and each round is applied
    /// in canonical `(client, submission index)` order, so concurrent
    /// submission is byte-identical to serial replay.
    pub deterministic: bool,
    /// Keep a [`crate::RoundRecord`] (ops + `BatchResult`) per committed
    /// round in the [`crate::ServiceReport`] — the in-memory replay log
    /// the determinism contract is checked against. Off by default and
    /// **not** implied by deterministic mode: the log grows without bound
    /// with traffic, so long-running servers leave it off and rely on the
    /// durable write-ahead log ([`ServerConfig::round_hook`]) instead.
    pub record_rounds: bool,
    /// Pin the writer's rayon pool to this many threads for the backend's
    /// batch-parallel `apply`. `None` inherits the process default
    /// (`DYNCON_THREADS` / `RAYON_NUM_THREADS`).
    pub worker_threads: Option<usize>,
    /// Durability hook, run once per round before apply (see
    /// [`RoundHook`]). `None` means no durability: committed rounds live
    /// only in process memory.
    pub round_hook: Option<RoundHook>,
    /// Compensation hook for a round that passed [`ServerConfig::round_hook`]
    /// but whose apply then failed or panicked: called with the same
    /// `(round, ops)` so the durability layer can un-log the round —
    /// clients are told it never committed, and recovery must agree. Its
    /// result is ignored (the service is already failing); best effort.
    pub round_abort: Option<RoundHook>,
    /// Registry the server records its [`crate::ServerMetrics`] into.
    /// `None` records into a private registry (the instrumentation cost —
    /// a few relaxed atomics per event — is paid either way); pass a
    /// shared registry to observe the server live and to pool serving and
    /// durability metrics in one snapshot. Metrics are observational
    /// only: enabling them never changes admission, round boundaries, or
    /// results.
    pub metrics: Option<Registry>,
    /// Recorder the server traces its pipeline stages into: one
    /// [`dyncon_trace::Span`] per stage occurrence (coalesce wait,
    /// WAL append/fsync via the hooks, apply, snapshot publish, ticket
    /// fill, versioned reads), folded into per-round breakdowns with
    /// slow-round capture. `None` (default) records nothing — the
    /// instrumentation is an `Option` check, no clock reads. Tracing
    /// follows the same contract as metrics: **observational only**,
    /// never influencing admission, round boundaries, or results
    /// (byte-determinism with a recorder attached is proven in
    /// `tests/determinism.rs`). Share one recorder across a stack
    /// (server + durability + shards) the way a metric registry is
    /// shared, then scrape it with [`dyncon_trace::serve_telemetry`].
    pub trace: Option<TraceRecorder>,
    /// Health engine the server feeds its liveness signals into: the
    /// writer heartbeat (round taken / round committed with its wall
    /// time, driving the stall watchdog and the SLO burn windows),
    /// queue depth, backpressure rejects, WAL errors (via the durable
    /// layer) and served reads. `None` (default) records nothing — the
    /// instrumentation is an `Option` check. Same contract as metrics
    /// and tracing: **observational only**, never an input; share one
    /// [`HealthState`] across a stack, then probe it via
    /// [`dyncon_trace::serve_telemetry_with_health`]
    /// (`HealthState::routes()`) or a watchdog thread.
    pub health: Option<HealthState>,
    /// Size of the versioned-read retention window: how many recently
    /// committed versions keep a published [`dyncon_api::ReadView`]
    /// available through [`dyncon_api::VersionedRead::read_view_at`]. `0`
    /// (default) disables snapshot publication entirely — the writer
    /// pays no per-round export cost and every view request fails with
    /// the empty-window [`dyncon_api::DynConError::UnknownVersion`].
    /// Takes effect only on servers started with
    /// [`crate::ConnServer::start_versioned`] (publication needs the
    /// backend's [`dyncon_api::ExportEdges`] surface), which treats `0`
    /// as "use the default window" instead.
    pub retain_views: usize,
    /// Reader threads serving [`crate::ConnServer::read_async`] view
    /// queries off the commit path. `0` (default) keeps no pool:
    /// `read_async` then executes inline on the calling thread — still
    /// against the snapshot, still never touching the writer.
    pub reader_threads: usize,
    /// The [`dyncon_api::Version`] the first round committed by this
    /// server gets: round `r` (server-local, 0-based) commits as version
    /// `first_version + r`. A durable stack sets this to the recovered
    /// WAL `next_round`, making versions equal WAL round ids across
    /// process lifetimes; the recovered state itself is published as
    /// version `first_version - 1` (recovery restores `newest`).
    pub first_version: u64,
}

impl fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerConfig")
            .field("max_batch_ops", &self.max_batch_ops)
            .field("max_coalesce_wait", &self.max_coalesce_wait)
            .field("queue_capacity", &self.queue_capacity)
            .field("deterministic", &self.deterministic)
            .field("record_rounds", &self.record_rounds)
            .field("worker_threads", &self.worker_threads)
            .field(
                "round_hook",
                &self.round_hook.as_ref().map(|_| "<round hook>"),
            )
            .field(
                "round_abort",
                &self.round_abort.as_ref().map(|_| "<round abort>"),
            )
            .field("metrics", &self.metrics)
            .field("trace", &self.trace)
            .field("health", &self.health)
            .field("retain_views", &self.retain_views)
            .field("reader_threads", &self.reader_threads)
            .field("first_version", &self.first_version)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch_ops: 4096,
            max_coalesce_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            deterministic: false,
            record_rounds: false,
            worker_threads: None,
            round_hook: None,
            round_abort: None,
            metrics: None,
            trace: None,
            health: None,
            retain_views: 0,
            reader_threads: 0,
            first_version: 0,
        }
    }
}

impl ServerConfig {
    /// The throughput-mode defaults (see the struct docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set [`ServerConfig::max_batch_ops`].
    pub fn batch_cap(mut self, ops: usize) -> Self {
        self.max_batch_ops = ops.max(1);
        self
    }

    /// Set [`ServerConfig::max_coalesce_wait`].
    pub fn coalesce_wait(mut self, wait: Duration) -> Self {
        self.max_coalesce_wait = wait;
        self
    }

    /// Set [`ServerConfig::queue_capacity`].
    pub fn queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = requests.max(1);
        self
    }

    /// Toggle deterministic mode. Round *recording* is a separate knob
    /// ([`ServerConfig::record_rounds`]): deterministic servers that run
    /// indefinitely must be able to leave the in-memory log off.
    pub fn deterministic(mut self, enabled: bool) -> Self {
        self.deterministic = enabled;
        self
    }

    /// Toggle the per-round in-memory replay log.
    pub fn record_rounds(mut self, enabled: bool) -> Self {
        self.record_rounds = enabled;
        self
    }

    /// Pin the writer's apply pool to `threads` workers.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads.max(1));
        self
    }

    /// Install the per-round durability hook (see [`RoundHook`]).
    pub fn round_hook(mut self, hook: RoundHook) -> Self {
        self.round_hook = Some(hook);
        self
    }

    /// Install the compensation hook for logged-but-not-applied rounds
    /// (see [`ServerConfig::round_abort`]).
    pub fn round_abort(mut self, hook: RoundHook) -> Self {
        self.round_abort = Some(hook);
        self
    }

    /// Record serving metrics into `registry` (see
    /// [`ServerConfig::metrics`]).
    pub fn metrics(mut self, registry: Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Trace pipeline stages into `recorder` (see
    /// [`ServerConfig::trace`]).
    pub fn trace(mut self, recorder: TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Feed liveness signals into `health` (see
    /// [`ServerConfig::health`]).
    pub fn health(mut self, health: HealthState) -> Self {
        self.health = Some(health);
        self
    }

    /// Set [`ServerConfig::retain_views`] — the versioned-read retention
    /// window (0 disables publication).
    pub fn retain_views(mut self, versions: usize) -> Self {
        self.retain_views = versions;
        self
    }

    /// Set [`ServerConfig::reader_threads`] — the off-commit-path view
    /// query pool (0 executes `read_async` inline).
    pub fn reader_threads(mut self, threads: usize) -> Self {
        self.reader_threads = threads;
        self
    }

    /// Set [`ServerConfig::first_version`] — the version of this
    /// server's first committed round (a durable stack passes the
    /// recovered WAL `next_round`).
    pub fn first_version(mut self, version: u64) -> Self {
        self.first_version = version;
        self
    }
}

/// Options of the unified submission surface,
/// [`crate::ConnServer::submit_with`]. The four classic submit methods
/// are thin wrappers over combinations of these.
///
/// ```
/// # use dyncon_server::SubmitOptions;
/// let opts = SubmitOptions::new().as_client(7).blocking(true).min_version(41);
/// assert_eq!(opts.client, Some(7));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Submit on behalf of this stable client id; `None` (default) draws
    /// a fresh auto-assigned id. Deterministic mode needs stable ids —
    /// auto ids are assigned in arrival order, which is exactly what
    /// that mode must not depend on.
    pub client: Option<u64>,
    /// Wait for queue space instead of failing with
    /// [`dyncon_api::DynConError::Backpressure`] (and wait out a
    /// not-yet-satisfied [`SubmitOptions::min_version`] fence instead of
    /// failing with [`dyncon_api::DynConError::UnknownVersion`]).
    /// Default `false`.
    pub blocking: bool,
    /// Read-your-writes fence: admit this request only once the server
    /// has committed `min_version` (pass the [`dyncon_api::Version`] a
    /// previous ticket's [`crate::RequestResult::version`] reported).
    /// Once admitted, the request's own round commits at a strictly
    /// greater version, so its queries observe everything up to the
    /// fence. Blocking submits wait for the fence; non-blocking submits
    /// fail fast with [`dyncon_api::DynConError::UnknownVersion`]
    /// (`requested > newest`) if the writer has not caught up.
    pub min_version: Option<u64>,
}

impl SubmitOptions {
    /// The defaults: auto client id, non-blocking, no fence — exactly
    /// [`crate::ConnServer::submit`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set [`SubmitOptions::client`].
    pub fn as_client(mut self, client: u64) -> Self {
        self.client = Some(client);
        self
    }

    /// Set [`SubmitOptions::blocking`].
    pub fn blocking(mut self, blocking: bool) -> Self {
        self.blocking = blocking;
        self
    }

    /// Set [`SubmitOptions::min_version`].
    pub fn min_version(mut self, version: u64) -> Self {
        self.min_version = Some(version);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = ServerConfig::new()
            .batch_cap(128)
            .coalesce_wait(Duration::from_millis(1))
            .queue_capacity(7)
            .deterministic(true)
            .worker_threads(2);
        assert_eq!(c.max_batch_ops, 128);
        assert_eq!(c.max_coalesce_wait, Duration::from_millis(1));
        assert_eq!(c.queue_capacity, 7);
        assert!(c.deterministic);
        assert_eq!(c.worker_threads, Some(2));
        // Zero-valued knobs are clamped to usable minimums.
        let z = ServerConfig::new()
            .batch_cap(0)
            .queue_capacity(0)
            .worker_threads(0);
        assert_eq!(
            (z.max_batch_ops, z.queue_capacity, z.worker_threads),
            (1, 1, Some(1))
        );
    }

    #[test]
    fn versioned_read_knobs_default_off() {
        let c = ServerConfig::new();
        assert_eq!(
            (c.retain_views, c.reader_threads, c.first_version),
            (0, 0, 0)
        );
        let c = c.retain_views(8).reader_threads(4).first_version(100);
        assert_eq!(
            (c.retain_views, c.reader_threads, c.first_version),
            (8, 4, 100)
        );
    }

    #[test]
    fn submit_options_compose() {
        let o = SubmitOptions::new();
        assert_eq!(o, SubmitOptions::default());
        assert_eq!((o.client, o.blocking, o.min_version), (None, false, None));
        let o = SubmitOptions::new()
            .as_client(3)
            .blocking(true)
            .min_version(9);
        assert_eq!(
            (o.client, o.blocking, o.min_version),
            (Some(3), true, Some(9))
        );
    }

    #[test]
    fn recording_is_independent_of_mode() {
        // Regression (memory growth): deterministic mode must NOT drag
        // the unbounded in-memory round log along — a long-running
        // durable server runs deterministic with recording off.
        let d = ServerConfig::new().deterministic(true);
        assert!(d.deterministic && !d.record_rounds);
        let c = ServerConfig::new().record_rounds(true);
        assert!(c.record_rounds && !c.deterministic);
        let both = ServerConfig::new().deterministic(true).record_rounds(true);
        assert!(both.deterministic && both.record_rounds);
    }

    #[test]
    fn metrics_registry_is_optional_and_cloneable() {
        assert!(ServerConfig::new().metrics.is_none());
        let r = Registry::new();
        let c = ServerConfig::new().metrics(r.clone());
        c.metrics
            .as_ref()
            .unwrap()
            .counter("x_total", "ops", "")
            .inc();
        // The config holds a handle to the SAME registry.
        assert_eq!(
            r.snapshot().get("x_total").unwrap().value.as_counter(),
            Some(1)
        );
    }

    #[test]
    fn debug_does_not_require_hook_debug() {
        let c = ServerConfig::new().round_hook(Arc::new(|_, _| Ok(())));
        let text = format!("{c:?}");
        assert!(text.contains("round_hook") && text.contains("<round hook>"));
        assert!(format!("{:?}", ServerConfig::new()).contains("None"));
    }
}
