//! # dyncon-server
//!
//! A **group-commit serving frontend** for any [`dyncon_api::BatchDynamic`]
//! backend: many concurrent client threads submit small requests of mixed
//! [`dyncon_api::Op`]s, and a single writer thread coalesces them into one
//! large batch per **commit round** — exactly the batch shape the paper's
//! structure (Acar–Anderson–Blelloch–Dhulipala, SPAA 2019) gets its
//! parallelism from. The whole point of batch-dynamic connectivity is that
//! a batch of `k` operations costs `O(k · lg(1 + n/k))` rather than
//! `k · O(lg n)`; the frontend is what *creates* those batches from
//! traffic that arrives one request at a time.
//!
//! ## Model
//!
//! * [`ConnServer::submit`] enqueues a request (an ordered `Vec<Op>`) and
//!   returns a [`Ticket`]. The request's operations are validated against
//!   the vertex universe up front, so a round can never fail with
//!   [`DynConError::VertexOutOfRange`] on another client's behalf.
//! * The admission queue is **bounded** ([`ServerConfig::queue_capacity`]):
//!   a full queue rejects with [`DynConError::Backpressure`] (the blocking
//!   [`ConnServer::submit_blocking`] variants wait for space instead).
//! * The writer commits a round when the pending ops reach
//!   [`ServerConfig::max_batch_ops`], or the oldest pending request has
//!   waited [`ServerConfig::max_coalesce_wait`], or the server is closing.
//!   Each round is **one** [`dyncon_api::BatchDynamic::apply`] call.
//! * [`Ticket::wait`] blocks (condvar, no async runtime) until the round
//!   containing the request commits, then yields the request's own query
//!   answers in operation order ([`RequestResult`]).
//! * [`ConnServer::close`] stops admission ([`DynConError::ServiceClosed`]
//!   thereafter) and [`ConnServer::join`] drains every accepted request
//!   before returning the backend in a [`ServiceReport`].
//!
//! ## Deterministic mode
//!
//! [`ServerConfig::deterministic`] extends the workspace determinism
//! contract (byte-identical results at any thread count, PR 3) to **any
//! client interleaving**: rounds have *explicit* boundaries — requests
//! accumulate until [`ConnServer::seal_round`] — and each sealed round is
//! canonically ordered by `(client id, per-client submission index)`
//! before it is applied. However the OS schedules the submitting threads,
//! the committed rounds (op order **and** [`dyncon_api::BatchResult`]s,
//! recorded in [`RoundRecord`]s when [`ServerConfig::record_rounds`] is
//! on) are byte-identical to a serial replay of the same rounds.
//! `tests/service_stress.rs` holds this against the naive oracle at
//! 1/2/4 worker threads.
//!
//! ## Durability hook
//!
//! [`ServerConfig::round_hook`] runs once per round, after the round's
//! operations are fixed and before they are applied — the seam the
//! `dyncon-durable` crate plugs its write-ahead log into, so a single
//! append-and-fsync covers every request of the round (group fsync). A
//! hook failure fails the round's tickets with the hook's typed error
//! and stops the service: a round that cannot be made durable never
//! commits.
//!
//! ## Versioned reads (MVCC)
//!
//! A server started with [`ConnServer::start_versioned`] assigns every
//! sealed commit round a [`Version`] (`= `[`ServerConfig::first_version`]
//! `+ round`; the durable stack passes its recovered WAL round id as
//! `first_version`, so versions are stable across process lifetimes) and
//! publishes an immutable [`ReadView`] of the post-round state —
//! retained for the last [`ServerConfig::retain_views`] versions.
//! [`ConnServer::read_view`] / [`ConnServer::read_view_at`] (via the
//! [`VersionedRead`] trait) hand out views without ever blocking the
//! writer; versions outside the window fail with the typed
//! [`DynConError::UnknownVersion`]. [`ConnServer::read_async`] runs view
//! queries on a pool of [`ServerConfig::reader_threads`] reader threads,
//! off the commit path, returning a [`ReadHandle`].
//!
//! The unified [`ConnServer::submit_with`] entry point takes
//! [`SubmitOptions`] — client identity, blocking, and an optional
//! [`SubmitOptions::min_version`] read-your-writes fence that holds
//! admission until the named version has committed.
//!
//! ## Observability
//!
//! The server records a [`ServerMetrics`] bundle (queue depth with
//! high-water mark, backpressure and admission rejects, round size,
//! coalesce wait, per-round apply latency, read-view request/age/publish
//! costs and the retained-snapshot gauge) into the
//! [`ServerConfig::metrics`] registry — or a private one when none is
//! passed. Snapshots come from [`ConnServer::metrics_snapshot`] live or
//! [`ServiceReport::metrics`] at join. Metrics are observational only:
//! nothing reads them on a decision path, so enabling them leaves every
//! committed round byte-identical (held in `tests/determinism.rs`).
//!
//! Where metrics aggregate, **tracing attributes**: attach a
//! [`TraceRecorder`] via [`ServerConfig::trace`] and every pipeline
//! stage of every round (coalesce wait, WAL append/fsync through the
//! hooks, apply, snapshot publish, ticket fill, plus the reader path)
//! records a span into a bounded ring buffer, folded into per-round
//! stage breakdowns with slow-round capture. Read the slowest round's
//! breakdown from [`ServiceReport::slowest_round`], export the ring as
//! Chrome-trace JSON, or serve both live with
//! [`dyncon_trace::serve_telemetry`]. Same observational-only contract
//! as metrics, proven by the same determinism suite.

mod config;
mod metrics;
mod server;
mod ticket;
mod views;

pub use config::{RoundHook, ServerConfig, SubmitOptions};
pub use metrics::ServerMetrics;
pub use server::{ConnServer, RoundRecord, ServiceReport, DEFAULT_RETAINED_VERSIONS};
pub use ticket::{RequestResult, Ticket};
pub use views::ReadHandle;

// Re-exported so callers can match on server rejections and use the
// versioned-read vocabulary without adding a direct dyncon-api
// dependency.
pub use dyncon_api::{DynConError, ReadView, Version, VersionedRead};

// Re-exported so attaching a health engine ([`ServerConfig::health`])
// needs no direct dyncon-export dependency.
pub use dyncon_export::{HealthConfig, HealthState};

// Re-exported so attaching a recorder and reading
// [`ServiceReport::slowest_round`] need no direct dyncon-trace
// dependency.
pub use dyncon_trace::{RoundTrace, TraceRecorder};
