//! Blocking per-request completion handles.

use dyncon_api::DynConError;
use std::sync::{Arc, Condvar, Mutex};

/// What one submitted request gets back after its round commits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestResult {
    /// The commit round (0-based, monotonically increasing, **local to
    /// this server process**) that applied this request. Rounds are
    /// durable in submission order: once a ticket resolves, every
    /// request of every earlier round is applied.
    pub round: u64,
    /// The [`dyncon_api::Version`] the round committed as:
    /// [`crate::ServerConfig::first_version`]` + `[`RequestResult::round`].
    /// In a durable stack this is the WAL round id — stable across
    /// process lifetimes, unlike `round` — so it is the value to pass to
    /// [`dyncon_api::VersionedRead::read_view_at`] or to a later request's
    /// [`crate::SubmitOptions::min_version`] read-your-writes fence.
    pub version: u64,
    /// Edges the request's **whole round** inserted. A round coalesces
    /// many requests into one backend batch and the backend counts per
    /// batch call, so per-request attribution is not defined — these are
    /// round-level aggregates. A coordinator that submits exactly one
    /// request per round (the sharding layer) reads them as its own.
    pub inserted: usize,
    /// Edges the request's whole round deleted (round-level aggregate,
    /// see [`RequestResult::inserted`]).
    pub deleted: usize,
    /// Answers to **this request's** `Op::Query` operations, in the
    /// request's own operation order.
    pub answers: Vec<bool>,
}

/// The shared slot a writer fills and a client waits on. One per request;
/// plain `Mutex` + `Condvar`, no async runtime.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    state: Mutex<Option<Result<RequestResult, DynConError>>>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn fill(&self, outcome: Result<RequestResult, DynConError>) {
        let mut state = self.state.lock().unwrap();
        debug_assert!(state.is_none(), "a request resolves exactly once");
        *state = Some(outcome);
        self.cv.notify_all();
    }
}

/// Completion handle of one submitted request. Obtain it from
/// [`crate::ConnServer::submit`]; redeem it with [`Ticket::wait`].
///
/// Dropping a ticket without waiting is allowed — the request still
/// commits with its round (group commit is all-or-nothing per round);
/// only the answers are discarded.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
}

impl Ticket {
    /// Block until the request's round commits; returns the request's
    /// query answers, or the error that failed the whole round (e.g.
    /// [`DynConError::Unsupported`] from a backend that cannot perform
    /// one of the round's operations).
    pub fn wait(self) -> Result<RequestResult, DynConError> {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            state = self.slot.cv.wait(state).unwrap();
        }
    }

    /// True once the round has committed ([`Ticket::wait`] will not
    /// block).
    pub fn ready(&self) -> bool {
        self.slot.state.lock().unwrap().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ticket_blocks_until_filled() {
        let slot = Arc::new(Slot::default());
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        assert!(!ticket.ready());
        let h = thread::spawn(move || ticket.wait());
        slot.fill(Ok(RequestResult {
            round: 3,
            version: 13,
            inserted: 0,
            deleted: 0,
            answers: vec![true, false],
        }));
        let r = h.join().unwrap().unwrap();
        assert_eq!((r.round, r.version, r.answers.len()), (3, 13, 2));
    }

    #[test]
    fn ticket_propagates_round_errors() {
        let slot = Arc::new(Slot::default());
        slot.fill(Err(DynConError::ServiceClosed));
        let ticket = Ticket { slot };
        assert!(ticket.ready());
        assert_eq!(ticket.wait(), Err(DynConError::ServiceClosed));
    }
}
