//! Deterministic splittable RNG.
//!
//! Batch algorithms need per-item randomness that is (a) reproducible under
//! any parallel schedule and (b) cheap. `SplitMix64` provides a sequential
//! stream; [`SplitMix64::at`] provides a *stateless indexed* stream so a
//! parallel loop can draw the i-th variate without coordination.

use crate::hash::hash64;

/// SplitMix64 pseudo random generator.
///
/// Not cryptographic. Passes BigCrush per the original publication; entirely
/// sufficient for skip-list heights, workload generation and sampling.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9e3779b97f4a7c15) ^ 0x243f6a8885a308d3,
        }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        hash64(self.state)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift: negligible bias for bound << 2^64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Stateless draw: the variate at index `i` of the stream with this
    /// generator's seed. Safe to call from any thread with no ordering.
    #[inline]
    pub fn at(&self, i: u64) -> u64 {
        hash64(self.state ^ hash64(i))
    }

    /// Fork an independent child generator (for nested components that need
    /// their own streams without sharing state).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Geometric(1/2) height in `[1, max_h]`: counts trailing ones of a
    /// uniform word. This is the skip-list tower height distribution of
    /// Pugh \[47\] used by the batch-parallel ETT.
    #[inline]
    pub fn geometric_height(bits: u64, max_h: u8) -> u8 {
        let h = (bits.trailing_ones() as u8) + 1;
        h.min(max_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for c in counts {
            assert!((9000..11000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn indexed_matches_itself() {
        let r = SplitMix64::new(9);
        assert_eq!(r.at(5), r.at(5));
        assert_ne!(r.at(5), r.at(6));
    }

    #[test]
    fn geometric_heights_distribution() {
        let r = SplitMix64::new(11);
        let mut counts = [0u32; 33];
        let n = 1 << 18;
        for i in 0..n {
            counts[SplitMix64::geometric_height(r.at(i), 32) as usize] += 1;
        }
        // About half the towers have height 1, a quarter height 2, ...
        assert!((counts[1] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.25).abs() < 0.01);
        assert!(counts[0] == 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(13);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
