//! # dyncon-primitives
//!
//! Work-depth style parallel primitives used throughout the
//! *Parallel Batch-Dynamic Graph Connectivity* (SPAA 2019) reproduction.
//!
//! The paper (§2, "Parallel Primitives") assumes the following toolbox:
//!
//! * **semisort** — group equal keys contiguously ([`group`]),
//! * a **parallel dictionary** with batch insert / delete / lookup
//!   ([`dict::ConcurrentDict`]),
//! * **pack** — parallel filtering by a boolean sequence ([`scan`]),
//! * plus parallel spanning-forest building blocks (union-find lives in
//!   `dyncon-spanning`, built on [`hash`] and [`rng`] from here).
//!
//! Everything is implemented on top of [rayon]'s fork-join primitives, which
//! realize the MT-RAM model the paper analyses (see DESIGN.md §3 for the
//! model-to-implementation mapping).
//!
//! All primitives here are deterministic given fixed seeds except where
//! explicitly documented (the concurrent dictionary's slot assignment order
//! is scheduling dependent, but its *contents* are deterministic).

pub mod dict;
pub mod group;
pub mod hash;
pub mod listrank;
pub mod rng;
pub mod scan;
pub mod semisort;
pub mod sync_cell;

pub use dict::ConcurrentDict;
pub use group::{dedup_sorted, group_pairs_by_key, sort_dedup};
pub use hash::{hash64, FxBuildHasher, FxHashMap, FxHashSet};
pub use listrank::resolve_chains;
pub use rng::SplitMix64;
pub use scan::{
    exclusive_scan_usize, pack, pack_by, pack_index, par_expand2, par_map_collect, par_tabulate,
};
pub use semisort::{semisort_pairs, KeyHash};
pub use sync_cell::SyncSlice;

/// Number of items below which batch operations fall back to a sequential
/// loop. Spawning rayon tasks for tiny batches costs more than it saves.
pub const SEQ_THRESHOLD: usize = 1 << 10;

/// Run `f` over `0..n` in parallel if `n` is large, sequentially otherwise.
///
/// This is the workhorse "parallel for" of the whole code base: every phase
/// of every batch algorithm is expressed as one or more of these loops with
/// barrier semantics between them (the call does not return until every
/// iteration finished, which provides the happens-before edges our
/// `Relaxed` atomics rely on).
#[inline]
pub fn par_for(n: usize, f: impl Fn(usize) + Sync) {
    use rayon::prelude::*;
    if n < SEQ_THRESHOLD {
        for i in 0..n {
            f(i);
        }
    } else {
        (0..n).into_par_iter().for_each(&f);
    }
}

/// Like [`par_for`] but over the items of a slice.
#[inline]
pub fn par_for_each<T: Sync>(items: &[T], f: impl Fn(&T) + Sync + Send) {
    use rayon::prelude::*;
    if items.len() < SEQ_THRESHOLD {
        for it in items {
            f(it);
        }
    } else {
        items.par_iter().for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index_small() {
        let hits = (0..100).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        par_for(100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_visits_every_index_large() {
        let n = SEQ_THRESHOLD * 4;
        let hits = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        par_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_each_sums() {
        let v: Vec<u64> = (0..5000).collect();
        let total = AtomicUsize::new(0);
        par_for_each(&v, |x| {
            total.fetch_add(*x as usize, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed) as u64, 5000 * 4999 / 2);
    }
}
