//! Phase-disjoint shared-slice writes.
//!
//! PBBS-style parallel algorithms frequently scatter into an output buffer
//! where *the algorithm* guarantees index disjointness (e.g. after an
//! exclusive scan handed every chunk its own output range) but the type
//! system cannot see it. [`SyncSlice`] is the minimal, audited escape hatch:
//! an `UnsafeCell`-wrapped slice whose `write` is `unsafe fn`, shifting the
//! disjointness proof obligation to the (always local and commented) call
//! site.

use std::cell::UnsafeCell;

/// A shared view of a mutable slice permitting racy-by-construction writes
/// to *disjoint* indices from multiple threads.
pub struct SyncSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: all mutation goes through `unsafe fn write/get_mut`, whose
// contracts require caller-proved disjointness; concurrent reads of
// untouched elements are fine because `T: Sync` is required for sharing.
unsafe impl<'a, T: Send + Sync> Send for SyncSlice<'a, T> {}
unsafe impl<'a, T: Send + Sync> Sync for SyncSlice<'a, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a uniquely borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T] -> &[UnsafeCell<T>]` is sound: UnsafeCell<T> has
        // the same layout as T and we hold the unique borrow for 'a.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    /// No other thread may concurrently read or write index `i` during the
    /// current parallel phase.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.data[i].get() = value;
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    /// Same contract as [`SyncSlice::write`]: index-level exclusivity.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.data[i].get()
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No concurrent writer to index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.data[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut v = vec![0u64; 10_000];
        {
            let s = SyncSlice::new(&mut v);
            (0..10_000usize).into_par_iter().for_each(|i| {
                // SAFETY: every index written exactly once.
                unsafe { s.write(i, i as u64 * 2) };
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn len_reports() {
        let mut v = vec![1u8; 5];
        let s = SyncSlice::new(&mut v);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn chunked_ranges() {
        // The pack() use case: each task owns a contiguous range.
        let mut out = vec![0u32; 100];
        {
            let s = SyncSlice::new(&mut out);
            (0..10usize).into_par_iter().for_each(|chunk| {
                for i in 0..10 {
                    let idx = chunk * 10 + i;
                    unsafe { s.write(idx, chunk as u32) };
                }
            });
        }
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x as usize, i / 10);
        }
    }
}
