//! Prefix sums and packing (the paper's `pack` primitive, §2).
//!
//! `pack` takes a sequence `A` and booleans `B` and returns the elements of
//! `A` whose flag is true, preserving order — `O(n)` work, `O(lg n)` depth
//! \[34\]. We implement it with a chunked two-pass scan: per-chunk counts,
//! a (short) sequential scan over chunk totals, then a parallel scatter.

use rayon::prelude::*;

/// Chunk size for two-pass scan algorithms.
const CHUNK: usize = 1 << 13;

/// Exclusive prefix sum of `xs`; returns the offsets vector and the total.
///
/// `out[i] = xs[0] + … + xs[i-1]`, `out[0] = 0`.
pub fn exclusive_scan_usize(xs: &[usize]) -> (Vec<usize>, usize) {
    let n = xs.len();
    if n <= CHUNK {
        let mut out = Vec::with_capacity(n);
        let mut acc = 0usize;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        return (out, acc);
    }
    let nchunks = n.div_ceil(CHUNK);
    let mut chunk_sums: Vec<usize> = xs.par_chunks(CHUNK).map(|c| c.iter().sum()).collect();
    // Sequential scan over ~n/CHUNK entries: cheap.
    let mut acc = 0usize;
    for s in chunk_sums.iter_mut() {
        let v = *s;
        *s = acc;
        acc += v;
    }
    let mut out = vec![0usize; n];
    out.par_chunks_mut(CHUNK)
        .zip(xs.par_chunks(CHUNK))
        .enumerate()
        .for_each(|(ci, (oc, xc))| {
            let mut a = chunk_sums[ci];
            for (o, &x) in oc.iter_mut().zip(xc) {
                *o = a;
                a += x;
            }
        });
    debug_assert_eq!(nchunks, chunk_sums.len());
    (out, acc)
}

/// The paper's `pack`: keep `items[i]` where `flags[i]`, preserving order.
pub fn pack<T: Copy + Send + Sync>(items: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), flags.len());
    let n = items.len();
    if n <= CHUNK {
        return items
            .iter()
            .zip(flags)
            .filter_map(|(x, &f)| f.then_some(*x))
            .collect();
    }
    let counts: Vec<usize> = flags
        .par_chunks(CHUNK)
        .map(|c| c.iter().filter(|&&f| f).count())
        .collect();
    let (offsets, total) = exclusive_scan_usize(&counts);
    let mut out = vec![items[0]; total];
    // Each chunk writes a disjoint range of `out`.
    let out_ptr = crate::sync_cell::SyncSlice::new(&mut out);
    items
        .par_chunks(CHUNK)
        .zip(flags.par_chunks(CHUNK))
        .enumerate()
        .for_each(|(ci, (ic, fc))| {
            let mut pos = offsets[ci];
            for (x, &f) in ic.iter().zip(fc) {
                if f {
                    // SAFETY: ranges [offsets[ci], offsets[ci+1]) are disjoint
                    // across chunks by construction of the exclusive scan.
                    unsafe { out_ptr.write(pos, *x) };
                    pos += 1;
                }
            }
        });
    out
}

/// Indices `i` with `flags[i]` true, in increasing order.
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    let idx: Vec<usize> = (0..flags.len()).collect();
    pack(&idx, flags)
}

/// Parallel map of a slice into a `Vec` (stable order).
pub fn par_map_collect<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync + Send) -> Vec<U> {
    if items.len() < crate::SEQ_THRESHOLD {
        items.iter().map(f).collect()
    } else {
        items.par_iter().map(f).collect()
    }
}

/// `[f(0), f(1), …, f(n-1)]`, evaluated in parallel (stable order) — the
/// "build an array by index" idiom every batch phase starts with.
pub fn par_tabulate<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync + Send) -> Vec<U> {
    if n < crate::SEQ_THRESHOLD {
        (0..n).map(f).collect()
    } else {
        (0..n).into_par_iter().map(f).collect()
    }
}

/// Fixed-arity parallel flat-map: each item expands to exactly two outputs,
/// laid out at `[2i, 2i+1]` — deterministic order regardless of scheduling.
/// This is the "both endpoints of every edge" fan-out of Algorithms 2–5.
pub fn par_expand2<T: Sync, U: Copy + Send + Sync>(
    items: &[T],
    f: impl Fn(&T) -> [U; 2] + Sync + Send,
) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n < crate::SEQ_THRESHOLD {
        let mut out = Vec::with_capacity(2 * n);
        for it in items {
            let [a, b] = f(it);
            out.push(a);
            out.push(b);
        }
        return out;
    }
    let first = f(&items[0]);
    let mut out = vec![first[0]; 2 * n];
    let slots = crate::sync_cell::SyncSlice::new(&mut out);
    items.par_iter().enumerate().for_each(|(i, it)| {
        let [a, b] = f(it);
        // SAFETY: iteration i exclusively owns slots 2i and 2i+1.
        unsafe {
            slots.write(2 * i, a);
            slots.write(2 * i + 1, b);
        }
    });
    out
}

/// Parallel filter with a computed predicate: evaluate `keep` on every item
/// in parallel, then `pack` the survivors (order preserved). The parallel
/// replacement for sequential `Vec::retain` on the batch hot paths.
pub fn pack_by<T: Copy + Send + Sync>(
    items: &[T],
    keep: impl Fn(&T) -> bool + Sync + Send,
) -> Vec<T> {
    let flags: Vec<bool> = par_map_collect(items, keep);
    pack(items, &flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn scan_small() {
        let xs = [3usize, 1, 4, 1, 5];
        let (offs, total) = exclusive_scan_usize(&xs);
        assert_eq!(offs, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn scan_empty() {
        let (offs, total) = exclusive_scan_usize(&[]);
        assert!(offs.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn scan_large_matches_sequential() {
        let mut r = SplitMix64::new(1);
        let xs: Vec<usize> = (0..100_000).map(|_| r.next_below(10) as usize).collect();
        let (offs, total) = exclusive_scan_usize(&xs);
        let mut acc = 0usize;
        for i in 0..xs.len() {
            assert_eq!(offs[i], acc);
            acc += xs[i];
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn pack_small() {
        let items = [10, 20, 30, 40];
        let flags = [true, false, true, false];
        assert_eq!(pack(&items, &flags), vec![10, 30]);
    }

    #[test]
    fn pack_large_matches_filter() {
        let mut r = SplitMix64::new(2);
        let items: Vec<u64> = (0..50_000).collect();
        let flags: Vec<bool> = (0..50_000).map(|_| r.next_below(3) == 0).collect();
        let expected: Vec<u64> = items
            .iter()
            .zip(&flags)
            .filter_map(|(x, &f)| f.then_some(*x))
            .collect();
        assert_eq!(pack(&items, &flags), expected);
    }

    #[test]
    fn pack_all_false_and_all_true() {
        let items: Vec<u32> = (0..20_000).collect();
        assert!(pack(&items, &vec![false; items.len()]).is_empty());
        assert_eq!(pack(&items, &vec![true; items.len()]), items);
    }

    #[test]
    fn pack_index_basic() {
        let flags = [false, true, true, false, true];
        assert_eq!(pack_index(&flags), vec![1, 2, 4]);
    }

    #[test]
    fn par_map_collect_matches_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map_collect(&items, |x| x * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 3 * i as u64));
    }

    #[test]
    fn par_tabulate_matches_range_map() {
        for n in [0usize, 5, 3000] {
            let out = par_tabulate(n, |i| i * i);
            let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn par_expand2_interleaves_in_order() {
        for n in [0usize, 7, 4000] {
            let items: Vec<u32> = (0..n as u32).collect();
            let out = par_expand2(&items, |&x| [x, x + 100_000]);
            assert_eq!(out.len(), 2 * n);
            for (i, &x) in items.iter().enumerate() {
                assert_eq!(out[2 * i], x);
                assert_eq!(out[2 * i + 1], x + 100_000);
            }
        }
    }

    #[test]
    fn pack_by_matches_retain() {
        let mut r = SplitMix64::new(3);
        let items: Vec<u64> = (0..20_000).map(|_| r.next_below(1 << 20)).collect();
        let keep = |x: &u64| x % 7 < 3;
        let expect: Vec<u64> = items.iter().copied().filter(|x| keep(x)).collect();
        assert_eq!(pack_by(&items, keep), expect);
    }
}
