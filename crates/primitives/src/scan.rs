//! Prefix sums and packing (the paper's `pack` primitive, §2).
//!
//! `pack` takes a sequence `A` and booleans `B` and returns the elements of
//! `A` whose flag is true, preserving order — `O(n)` work, `O(lg n)` depth
//! \[34\]. We implement it with a chunked two-pass scan: per-chunk counts,
//! a (short) sequential scan over chunk totals, then a parallel scatter.

use rayon::prelude::*;

/// Chunk size for two-pass scan algorithms.
const CHUNK: usize = 1 << 13;

/// Exclusive prefix sum of `xs`; returns the offsets vector and the total.
///
/// `out[i] = xs[0] + … + xs[i-1]`, `out[0] = 0`.
pub fn exclusive_scan_usize(xs: &[usize]) -> (Vec<usize>, usize) {
    let n = xs.len();
    if n <= CHUNK {
        let mut out = Vec::with_capacity(n);
        let mut acc = 0usize;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        return (out, acc);
    }
    let nchunks = n.div_ceil(CHUNK);
    let mut chunk_sums: Vec<usize> = xs.par_chunks(CHUNK).map(|c| c.iter().sum()).collect();
    // Sequential scan over ~n/CHUNK entries: cheap.
    let mut acc = 0usize;
    for s in chunk_sums.iter_mut() {
        let v = *s;
        *s = acc;
        acc += v;
    }
    let mut out = vec![0usize; n];
    out.par_chunks_mut(CHUNK)
        .zip(xs.par_chunks(CHUNK))
        .enumerate()
        .for_each(|(ci, (oc, xc))| {
            let mut a = chunk_sums[ci];
            for (o, &x) in oc.iter_mut().zip(xc) {
                *o = a;
                a += x;
            }
        });
    debug_assert_eq!(nchunks, chunk_sums.len());
    (out, acc)
}

/// The paper's `pack`: keep `items[i]` where `flags[i]`, preserving order.
pub fn pack<T: Copy + Send + Sync>(items: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), flags.len());
    let n = items.len();
    if n <= CHUNK {
        return items
            .iter()
            .zip(flags)
            .filter_map(|(x, &f)| f.then_some(*x))
            .collect();
    }
    let counts: Vec<usize> = flags
        .par_chunks(CHUNK)
        .map(|c| c.iter().filter(|&&f| f).count())
        .collect();
    let (offsets, total) = exclusive_scan_usize(&counts);
    let mut out = vec![items[0]; total];
    // Each chunk writes a disjoint range of `out`.
    let out_ptr = crate::sync_cell::SyncSlice::new(&mut out);
    items
        .par_chunks(CHUNK)
        .zip(flags.par_chunks(CHUNK))
        .enumerate()
        .for_each(|(ci, (ic, fc))| {
            let mut pos = offsets[ci];
            for (x, &f) in ic.iter().zip(fc) {
                if f {
                    // SAFETY: ranges [offsets[ci], offsets[ci+1]) are disjoint
                    // across chunks by construction of the exclusive scan.
                    unsafe { out_ptr.write(pos, *x) };
                    pos += 1;
                }
            }
        });
    out
}

/// Indices `i` with `flags[i]` true, in increasing order.
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    let idx: Vec<usize> = (0..flags.len()).collect();
    pack(&idx, flags)
}

/// Parallel map of a slice into a `Vec` (stable order).
pub fn par_map_collect<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync + Send) -> Vec<U> {
    if items.len() < crate::SEQ_THRESHOLD {
        items.iter().map(f).collect()
    } else {
        items.par_iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn scan_small() {
        let xs = [3usize, 1, 4, 1, 5];
        let (offs, total) = exclusive_scan_usize(&xs);
        assert_eq!(offs, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn scan_empty() {
        let (offs, total) = exclusive_scan_usize(&[]);
        assert!(offs.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn scan_large_matches_sequential() {
        let mut r = SplitMix64::new(1);
        let xs: Vec<usize> = (0..100_000).map(|_| r.next_below(10) as usize).collect();
        let (offs, total) = exclusive_scan_usize(&xs);
        let mut acc = 0usize;
        for i in 0..xs.len() {
            assert_eq!(offs[i], acc);
            acc += xs[i];
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn pack_small() {
        let items = [10, 20, 30, 40];
        let flags = [true, false, true, false];
        assert_eq!(pack(&items, &flags), vec![10, 30]);
    }

    #[test]
    fn pack_large_matches_filter() {
        let mut r = SplitMix64::new(2);
        let items: Vec<u64> = (0..50_000).collect();
        let flags: Vec<bool> = (0..50_000).map(|_| r.next_below(3) == 0).collect();
        let expected: Vec<u64> = items
            .iter()
            .zip(&flags)
            .filter_map(|(x, &f)| f.then_some(*x))
            .collect();
        assert_eq!(pack(&items, &flags), expected);
    }

    #[test]
    fn pack_all_false_and_all_true() {
        let items: Vec<u32> = (0..20_000).collect();
        assert!(pack(&items, &vec![false; items.len()]).is_empty());
        assert_eq!(pack(&items, &vec![true; items.len()]), items);
    }

    #[test]
    fn pack_index_basic() {
        let flags = [false, true, true, false, true];
        assert_eq!(pack_index(&flags), vec![1, 2, 4]);
    }

    #[test]
    fn par_map_collect_matches_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map_collect(&items, |x| x * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 3 * i as u64));
    }
}
