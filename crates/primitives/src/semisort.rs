//! A true hash-based semisort (Gu–Shun–Sun–Blelloch \[24\] role).
//!
//! [`crate::group::group_pairs_by_key`] realizes grouping with a parallel
//! comparison sort (`O(k lg k)` work); this module provides the
//! theoretically-faithful alternative: scatter elements into hash buckets
//! with a two-pass counting layout — `O(k)` expected work, `O(lg k)` depth
//! — so equal keys land contiguously *without* ordering distinct keys.
//!
//! The connectivity algorithms are agnostic between the two (grouping is
//! never a dominant term; see DESIGN.md §3); both are tested against each
//! other, and `semisort_pairs` is used by the callers that do not need
//! key-sorted group order (ETT tour construction, adjacency grouping).

use crate::hash::hash64;
use crate::scan::exclusive_scan_usize;
use crate::sync_cell::SyncSlice;
use rayon::prelude::*;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Reorder `pairs` so equal keys are contiguous (no global key order) and
/// return one `(key, range)` descriptor per distinct key.
///
/// `O(k)` expected work, `O(lg k)` depth w.h.p. Falls back to the sorting
/// grouper below a size threshold (counting buckets don't pay off there).
///
/// **Determinism contract:** the output layout — bucket order, group order
/// and the element order *inside* each group — is a pure function of the
/// input, independent of thread count and scheduling. The scatter pass
/// below races for slots, so each bucket is canonicalized afterwards by
/// sorting on the full `(key, value)` pair (hence the `V: Ord` bound);
/// batch-dynamic connectivity routes all tie-breaking through this order
/// (fixed vertex-id / slot order), which is what makes whole-structure
/// byte-determinism across `DYNCON_THREADS` settings possible.
pub fn semisort_pairs<K, V>(pairs: &mut Vec<(K, V)>) -> Vec<(K, Range<usize>)>
where
    K: Copy + Eq + Ord + Send + Sync + KeyHash,
    V: Copy + Ord + Send + Sync,
{
    let k = pairs.len();
    if k < crate::SEQ_THRESHOLD {
        return crate::group::group_pairs_by_key(pairs);
    }
    // Bucket count ~ k: expected O(1) distinct keys per bucket.
    let nbuckets = k.next_power_of_two();
    let mask = (nbuckets - 1) as u64;
    let bucket_of = |key: K| (hash64(key.key_hash()) & mask) as usize;

    // Pass 1: histogram.
    let counts: Vec<AtomicUsize> = (0..nbuckets).map(|_| AtomicUsize::new(0)).collect();
    pairs.par_iter().for_each(|&(key, _)| {
        counts[bucket_of(key)].fetch_add(1, Ordering::Relaxed);
    });
    let plain: Vec<usize> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let (offsets, total) = exclusive_scan_usize(&plain);
    debug_assert_eq!(total, k);

    // Pass 2: scatter into bucket slots (racy counters, disjoint slots).
    // `out` starts as a copy of the input purely so every slot holds
    // initialized data of the right type; all k slots are overwritten.
    let cursors: Vec<AtomicUsize> = offsets.iter().map(|&o| AtomicUsize::new(o)).collect();
    let mut out: Vec<(K, V)> = pairs.clone();
    {
        let slots = SyncSlice::new(&mut out);
        pairs.par_iter().for_each(|&(key, val)| {
            let b = bucket_of(key);
            let slot = cursors[b].fetch_add(1, Ordering::Relaxed);
            // SAFETY: fetch_add hands every element a distinct slot inside
            // its bucket's exclusive range.
            unsafe { slots.write(slot, (key, val)) };
        });
    }
    *pairs = out;

    // Pass 3: within each bucket, group the (expected O(1)) distinct keys
    // contiguously and emit descriptors.
    let mut per_bucket: Vec<Vec<(K, Range<usize>)>> =
        (0..nbuckets).into_par_iter().map(|_| Vec::new()).collect();
    {
        let out = SyncSlice::new(&mut per_bucket);
        let pairs_ref: &Vec<(K, V)> = pairs;
        let offsets_ref = &offsets;
        let plain_ref = &plain;
        (0..nbuckets).into_par_iter().for_each(|b| {
            let lo = offsets_ref[b];
            let hi = lo + plain_ref[b];
            if lo == hi {
                return;
            }
            // SAFETY: bucket b exclusively owns per_bucket[b] and the
            // pairs range [lo, hi).
            let groups = unsafe { out.get_mut(b) };
            let slice = unsafe {
                std::slice::from_raw_parts_mut(pairs_ref.as_ptr().add(lo) as *mut (K, V), hi - lo)
            };
            // Full-pair sort: erases the scatter pass's scheduling-dependent
            // slot order (see the determinism contract above).
            slice.sort_unstable();
            let mut start = 0usize;
            for i in 1..=slice.len() {
                if i == slice.len() || slice[i].0 != slice[start].0 {
                    groups.push((slice[start].0, lo + start..lo + i));
                    start = i;
                }
            }
        });
    }
    per_bucket.into_iter().flatten().collect()
}

/// Keys must expose 64 hashable bits.
pub trait KeyHash {
    /// The bits fed to the hash function.
    fn key_hash(&self) -> u64;
}

impl KeyHash for u32 {
    fn key_hash(&self) -> u64 {
        *self as u64
    }
}
impl KeyHash for u64 {
    fn key_hash(&self) -> u64 {
        *self
    }
}
impl KeyHash for (u32, u32) {
    fn key_hash(&self) -> u64 {
        ((self.0 as u64) << 32) | self.1 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn check(pairs: Vec<(u32, u64)>) {
        let mut model: std::collections::HashMap<u32, Vec<u64>> = Default::default();
        for &(k, v) in &pairs {
            model.entry(k).or_default().push(v);
        }
        let mut pairs = pairs;
        let groups = semisort_pairs(&mut pairs);
        assert_eq!(groups.len(), model.len(), "distinct key count");
        let mut covered = 0usize;
        for (key, range) in &groups {
            let mut vals: Vec<u64> = pairs[range.clone()]
                .iter()
                .map(|&(k, v)| {
                    assert_eq!(k, *key, "foreign key inside group");
                    v
                })
                .collect();
            vals.sort_unstable();
            let mut expect = model[key].clone();
            expect.sort_unstable();
            assert_eq!(vals, expect, "key {key}");
            covered += range.len();
        }
        assert_eq!(covered, pairs.len(), "ranges tile the array");
    }

    #[test]
    fn small_falls_back_to_sort() {
        check(vec![(3, 1), (1, 2), (3, 3), (2, 4)]);
    }

    #[test]
    fn large_uniform_keys() {
        let mut rng = SplitMix64::new(1);
        let pairs: Vec<(u32, u64)> = (0..20_000)
            .map(|i| (rng.next_below(512) as u32, i))
            .collect();
        check(pairs);
    }

    #[test]
    fn large_skewed_keys() {
        let mut rng = SplitMix64::new(2);
        // 90% of elements share one key: the adversarial case for
        // bucket-based grouping.
        let pairs: Vec<(u32, u64)> = (0..30_000)
            .map(|i| {
                let k = if rng.next_below(10) > 0 {
                    7
                } else {
                    rng.next_below(100) as u32
                };
                (k, i)
            })
            .collect();
        check(pairs);
    }

    #[test]
    fn all_distinct_keys() {
        let pairs: Vec<(u32, u64)> = (0..10_000).map(|i| (i as u32, i)).collect();
        check(pairs);
    }

    #[test]
    fn empty_and_singleton() {
        check(vec![]);
        check(vec![(9, 9)]);
    }

    #[test]
    fn layout_is_identical_across_thread_counts() {
        // The full determinism contract: array layout AND group descriptors
        // must be byte-identical whether the scatter ran on 1, 2 or 4
        // threads. (20k elements ≫ SEQ_THRESHOLD, so the bucket path runs.)
        let mut rng = SplitMix64::new(11);
        let pairs: Vec<(u32, u64)> = (0..20_000)
            .map(|i| (rng.next_below(300) as u32, i % 97))
            .collect();
        type Layout = (Vec<(u32, u64)>, Vec<(u32, Range<usize>)>);
        let mut reference: Option<Layout> = None;
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut p = pairs.clone();
            let groups = pool.install(|| semisort_pairs(&mut p));
            match &reference {
                None => reference = Some((p, groups)),
                Some((rp, rg)) => {
                    assert_eq!(&p, rp, "array layout diverged at {threads} threads");
                    assert_eq!(&groups, rg, "group ranges diverged at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn agrees_with_sorting_grouper() {
        let mut rng = SplitMix64::new(5);
        let pairs: Vec<(u32, u64)> = (0..5_000).map(|i| (rng.next_below(64) as u32, i)).collect();
        let mut a = pairs.clone();
        let mut b = pairs;
        let mut ga: Vec<(u32, usize)> = semisort_pairs(&mut a)
            .into_iter()
            .map(|(k, r)| (k, r.len()))
            .collect();
        let mut gb: Vec<(u32, usize)> = crate::group::group_pairs_by_key(&mut b)
            .into_iter()
            .map(|(k, r)| (k, r.len()))
            .collect();
        ga.sort_unstable();
        gb.sort_unstable();
        assert_eq!(ga, gb);
    }
}
