//! Chain resolution by parallel pointer doubling.
//!
//! Used by the ETT batch-cut to "stitch over" removed Euler-tour nodes:
//! every removed node knows a *candidate* successor which may itself be
//! removed; we need the first successor *outside* the removed set. Chains
//! are guaranteed acyclic by the caller (every Euler tour retains at least
//! one live node, and candidate targets strictly advance along the tour).
//!
//! Cost: `O(k lg c)` work and `O(lg c)` depth for `k` chain elements with
//! maximum chain length `c` (Tseng et al. achieve `O(k)`; the gap is
//! dominated elsewhere — see DESIGN.md §3).

use crate::par_for;
use std::sync::atomic::{AtomicU64, Ordering};

/// Resolve every chain element to its first target outside the member set.
///
/// `next[i]` holds the candidate target (an arbitrary `u64` id) of member
/// `i`. `member(id)` returns `Some(j)` when `id` is itself the `j`-th member
/// of the set, `None` when it is "live" (a terminal). On return, every
/// `next[i]` is a terminal id.
///
/// # Panics
/// Debug-asserts termination within `lg(k) + 2` doubling rounds, which holds
/// whenever the chains are acyclic.
pub fn resolve_chains(next: &mut [u64], member: impl Fn(u64) -> Option<usize> + Sync) {
    let k = next.len();
    if k == 0 {
        return;
    }
    // Copy into atomics so each doubling round can read the previous
    // round's values concurrently with (idempotent, converging) writes.
    let cur: Vec<AtomicU64> = next.iter().map(|&x| AtomicU64::new(x)).collect();
    let rounds = usize::BITS - (k - 1).leading_zeros() + 2;
    for _ in 0..rounds {
        let mut any = false;
        // Jump pass: next[i] <- next[member(next[i])] where applicable.
        let changed = std::sync::atomic::AtomicBool::new(false);
        par_for(k, |i| {
            let t = cur[i].load(Ordering::Relaxed);
            if let Some(j) = member(t) {
                let t2 = cur[j].load(Ordering::Relaxed);
                if t2 != t {
                    cur[i].store(t2, Ordering::Relaxed);
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        any |= changed.load(Ordering::Relaxed);
        if !any {
            break;
        }
    }
    for (i, slot) in next.iter_mut().enumerate() {
        *slot = cur[i].load(Ordering::Relaxed);
        debug_assert!(
            member(*slot).is_none(),
            "resolve_chains: unresolved chain (cycle?) at element {i}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Members are ids 0..k; terminals are ids >= k.
    fn run(next: Vec<u64>, k: usize) -> Vec<u64> {
        let mut next = next;
        resolve_chains(&mut next, |id| {
            if (id as usize) < k {
                Some(id as usize)
            } else {
                None
            }
        });
        next
    }

    #[test]
    fn already_terminal() {
        assert_eq!(run(vec![100, 200], 2), vec![100, 200]);
    }

    #[test]
    fn single_hop() {
        // 0 -> 1 -> 100
        assert_eq!(run(vec![1, 100], 2), vec![100, 100]);
    }

    #[test]
    fn long_chain() {
        // i -> i+1, last -> 999
        let k = 1000;
        let mut next: Vec<u64> = (1..=k as u64).collect();
        next[k - 1] = 100_000;
        assert_eq!(run(next, k), vec![100_000; k]);
    }

    #[test]
    fn many_chains() {
        // Chains of length 3: (3i)->(3i+1)->(3i+2)->terminal(1000+i)
        let k = 300;
        let mut next = vec![0u64; k];
        for c in 0..100 {
            next[3 * c] = (3 * c + 1) as u64;
            next[3 * c + 1] = (3 * c + 2) as u64;
            next[3 * c + 2] = 1000 + c as u64;
        }
        let out = run(next, k);
        for c in 0..100 {
            for j in 0..3 {
                assert_eq!(out[3 * c + j], 1000 + c as u64);
            }
        }
    }

    #[test]
    fn empty() {
        assert!(run(vec![], 0).is_empty());
    }
}
