//! Grouping by key — the role of the paper's *semisort* (§2).
//!
//! The algorithms only ever use semisort to bring equal keys together
//! (e.g. "collect all edges incident on u", Algorithm 2 line 3). We realize
//! it with rayon's parallel unstable sort: `O(k lg k)` work instead of the
//! theoretical `O(k)` expected — see DESIGN.md §3 for why this never changes
//! an experiment's shape — followed by a boundary scan.

use rayon::prelude::*;
use std::ops::Range;

/// Sort `pairs` and return one `(key, range)` per distinct key, where
/// `range` indexes the now-contiguous group inside `pairs`.
///
/// Postcondition: concatenating the ranges covers `0..pairs.len()` in order.
///
/// The sort is over the **full pair** (hence `V: Ord`): the parallel sort
/// pre-sorts thread-count-dependent blocks, so a key-only sort would leave
/// equal-key elements in a scheduling-dependent order. Sorting the whole
/// pair makes the layout a pure function of the input — the same
/// determinism contract as [`crate::semisort::semisort_pairs`].
pub fn group_pairs_by_key<K, V>(pairs: &mut [(K, V)]) -> Vec<(K, Range<usize>)>
where
    K: Ord + Copy + Send + Sync,
    V: Ord + Send + Sync + Copy,
{
    if pairs.len() < crate::SEQ_THRESHOLD {
        pairs.sort_unstable();
    } else {
        pairs.par_sort_unstable();
    }
    group_ranges_of_sorted(pairs)
}

/// Boundary detection over an already-sorted slice.
fn group_ranges_of_sorted<K, V>(pairs: &[(K, V)]) -> Vec<(K, Range<usize>)>
where
    K: Ord + Copy + Send + Sync,
    V: Send + Sync,
{
    let n = pairs.len();
    if n == 0 {
        return Vec::new();
    }
    // Flag positions that start a new group, then pack.
    let flags: Vec<bool> = if n < crate::SEQ_THRESHOLD {
        (0..n)
            .map(|i| i == 0 || pairs[i - 1].0 != pairs[i].0)
            .collect()
    } else {
        (0..n)
            .into_par_iter()
            .map(|i| i == 0 || pairs[i - 1].0 != pairs[i].0)
            .collect()
    };
    let starts = crate::scan::pack_index(&flags);
    let mut out = Vec::with_capacity(starts.len());
    for (gi, &s) in starts.iter().enumerate() {
        let e = if gi + 1 < starts.len() {
            starts[gi + 1]
        } else {
            n
        };
        out.push((pairs[s].0, s..e));
    }
    out
}

/// Sort and deduplicate in place (parallel sort, sequential dedup).
pub fn sort_dedup<T: Ord + Copy + Send>(items: &mut Vec<T>) {
    if items.len() < crate::SEQ_THRESHOLD {
        items.sort_unstable();
    } else {
        items.par_sort_unstable();
    }
    items.dedup();
}

/// Deduplicate an already-sorted vector.
pub fn dedup_sorted<T: PartialEq>(items: &mut Vec<T>) {
    items.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn groups_simple() {
        let mut pairs = vec![(2u32, 'a'), (1, 'b'), (2, 'c'), (1, 'd'), (3, 'e')];
        let groups = group_pairs_by_key(&mut pairs);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, 1);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, 2);
        assert_eq!(groups[1].1.len(), 2);
        assert_eq!(groups[2].0, 3);
        assert_eq!(groups[2].1.len(), 1);
        // Ranges tile the slice.
        let total: usize = groups.iter().map(|g| g.1.len()).sum();
        assert_eq!(total, pairs.len());
    }

    #[test]
    fn groups_empty() {
        let mut pairs: Vec<(u32, u32)> = vec![];
        assert!(group_pairs_by_key(&mut pairs).is_empty());
    }

    #[test]
    fn groups_single_key() {
        let mut pairs: Vec<(u8, u32)> = (0..100).map(|i| (7, i)).collect();
        let groups = group_pairs_by_key(&mut pairs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1, 0..100);
    }

    #[test]
    fn groups_large_random() {
        let mut r = SplitMix64::new(5);
        let mut pairs: Vec<(u32, u64)> =
            (0..40_000).map(|i| (r.next_below(500) as u32, i)).collect();
        let mut expected = std::collections::HashMap::<u32, usize>::new();
        for (k, _) in &pairs {
            *expected.entry(*k).or_default() += 1;
        }
        let groups = group_pairs_by_key(&mut pairs);
        assert_eq!(groups.len(), expected.len());
        for (k, range) in &groups {
            assert_eq!(range.len(), expected[k], "key {k}");
            for i in range.clone() {
                assert_eq!(pairs[i].0, *k);
            }
        }
        // Keys strictly increasing across groups.
        for w in groups.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut v = vec![5u32, 1, 5, 2, 1, 9];
        sort_dedup(&mut v);
        assert_eq!(v, vec![1, 2, 5, 9]);
    }

    #[test]
    fn sort_dedup_large() {
        let mut r = SplitMix64::new(6);
        let mut v: Vec<u64> = (0..30_000).map(|_| r.next_below(1000)).collect();
        sort_dedup(&mut v);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v.len(), 1000); // all values hit w.h.p. at this density
    }
}
