//! Deterministic 64-bit mixing and a fast non-cryptographic hasher.
//!
//! The paper's randomized primitives (semisort \[24\], dictionaries \[23\],
//! skip-list heights \[47\]) all assume access to a uniformly random hash
//! function into `[1, n^O(1)]`. We use the SplitMix64 finalizer, whose output
//! passes avalanche tests and is cheap enough for hot loops, and an
//! Fx-style multiply hasher for std `HashMap`s in non-critical paths.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64 finalizer: a bijective mixer with full avalanche.
///
/// Used for dictionary probing, semisort bucketing and skip-list tower
/// heights. Being bijective means no two keys collide at the 64-bit level,
/// so collision behaviour is governed purely by table sizes.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Mix two words into one hash (order sensitive).
#[inline]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    hash64(a ^ hash64(b))
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style hasher: a single multiply-rotate per word. Quality is low but
/// more than sufficient for the integer keys we feed it, and it is the
/// fastest option for `u32`/`u64` keys (see the Rust Performance Book,
/// "Hashing").
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`]. Use for integer-keyed maps on
/// sequential paths (the batch-parallel paths use [`crate::ConcurrentDict`]).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` counterpart of [`FxHashMap`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_is_injective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(hash64(x)), "collision at {x}");
        }
    }

    #[test]
    fn hash64_avalanche_flips_many_bits() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let samples = 1000;
        for x in 0..samples {
            let h0 = hash64(x);
            let h1 = hash64(x ^ 1);
            total += (h0 ^ h1).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((24.0..40.0).contains(&avg), "weak avalanche: {avg}");
    }

    #[test]
    fn fx_hashmap_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&37], 74);
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        assert_ne!(hash64_pair(1, 2), hash64_pair(2, 1));
    }
}
