//! Phase-concurrent parallel dictionary (the paper's Gil–Matias–Vishkin
//! dictionary role, §2).
//!
//! Open-addressing table over `u64` keys and `u64` values with linear
//! probing and CAS slot claiming, in the style of Shun–Blelloch
//! phase-concurrent hash tables \[55\]: within one *phase* only one kind of
//! operation runs (a batch of inserts, a batch of deletes, or a batch of
//! lookups), which is exactly how the connectivity algorithms use it.
//!
//! A batch of `k` operations costs `O(k)` expected work and `O(lg k)` depth
//! w.h.p. (probe sequences are `O(1)` expected at our ≤ 50% load factor).
//!
//! Two key values are reserved as sentinels; callers must not use them
//! (`dyncon` edge keys pack two `u32` vertex ids and can never collide with
//! them).

use crate::hash::hash64;
use crate::par_for;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sentinel: never-used slot.
const EMPTY: u64 = u64::MAX;
/// Sentinel: deleted slot (skipped by probes, cleared on rebuild).
const TOMB: u64 = u64::MAX - 1;

/// A phase-concurrent hash table from `u64` keys to `u64` values.
pub struct ConcurrentDict {
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicU64>,
    mask: usize,
    live: AtomicUsize,
    tombs: AtomicUsize,
}

impl ConcurrentDict {
    /// Create a dictionary with room for at least `capacity` live keys.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = (capacity.max(8) * 2).next_power_of_two();
        Self {
            keys: (0..cap).map(|_| AtomicU64::new(EMPTY)).collect(),
            vals: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
            live: AtomicUsize::new(0),
            tombs: AtomicUsize::new(0),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// True when no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (hash64(key) as usize) & self.mask
    }

    /// Ensure capacity for `extra` more inserts, rebuilding if the table
    /// would exceed 50% occupancy (live + tombstones).
    pub fn reserve(&mut self, extra: usize) {
        let needed = self.live.load(Ordering::Relaxed) + self.tombs.load(Ordering::Relaxed) + extra;
        if needed * 2 <= self.keys.len() {
            return;
        }
        let pairs = self.iter_pairs();
        let mut bigger = ConcurrentDict::with_capacity((pairs.len() + extra).max(8) * 2);
        bigger.insert_batch(&pairs);
        *self = bigger;
    }

    /// Snapshot all live `(key, value)` pairs (parallel scan; no concurrent
    /// mutation allowed — this is its own phase).
    pub fn iter_pairs(&self) -> Vec<(u64, u64)> {
        (0..self.keys.len())
            .into_par_iter()
            .filter_map(|i| {
                let k = self.keys[i].load(Ordering::Relaxed);
                (k != EMPTY && k != TOMB).then(|| (k, self.vals[i].load(Ordering::Relaxed)))
            })
            .collect()
    }

    /// Insert a batch of `(key, value)` pairs. Existing keys are
    /// overwritten. Duplicate keys *within one batch* resolve to one of the
    /// supplied values (callers dedup when they care).
    pub fn insert_batch(&mut self, pairs: &[(u64, u64)]) {
        self.reserve(pairs.len());
        let inserted = AtomicUsize::new(0);
        par_for(pairs.len(), |i| {
            let (key, val) = pairs[i];
            debug_assert!(key != EMPTY && key != TOMB, "reserved key");
            if self.insert_one(key, val) {
                inserted.fetch_add(1, Ordering::Relaxed);
            }
        });
        self.live
            .fetch_add(inserted.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// CAS-claim a slot for `key`; returns true if the key was new.
    fn insert_one(&self, key: u64, val: u64) -> bool {
        let mut i = self.slot_of(key);
        loop {
            let cur = self.keys[i].load(Ordering::Relaxed);
            if cur == key {
                self.vals[i].store(val, Ordering::Relaxed);
                return false;
            }
            if cur == EMPTY {
                match self.keys[i].compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        self.vals[i].store(val, Ordering::Release);
                        return true;
                    }
                    Err(now) => {
                        if now == key {
                            self.vals[i].store(val, Ordering::Relaxed);
                            return false;
                        }
                        // Someone else claimed it for another key: continue
                        // probing from the same slot.
                        continue;
                    }
                }
            }
            // Occupied by another key or tombstone: linear probe.
            i = (i + 1) & self.mask;
        }
    }

    /// Look up a single key.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        loop {
            let cur = self.keys[i].load(Ordering::Acquire);
            if cur == key {
                return Some(self.vals[i].load(Ordering::Acquire));
            }
            if cur == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Batch lookup: `out[i] = get(keys[i])`.
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        crate::scan::par_map_collect(keys, |&k| self.get(k))
    }

    /// Remove a batch of keys (present keys become tombstones). Returns the
    /// number actually removed. Keys absent from the table are ignored.
    pub fn remove_batch(&mut self, keys: &[u64]) -> usize {
        let removed = AtomicUsize::new(0);
        par_for(keys.len(), |qi| {
            let key = keys[qi];
            let mut i = self.slot_of(key);
            loop {
                let cur = self.keys[i].load(Ordering::Relaxed);
                if cur == key {
                    self.keys[i].store(TOMB, Ordering::Relaxed);
                    removed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if cur == EMPTY {
                    break;
                }
                i = (i + 1) & self.mask;
            }
        });
        let r = removed.load(Ordering::Relaxed);
        self.live.fetch_sub(r, Ordering::Relaxed);
        self.tombs.fetch_add(r, Ordering::Relaxed);
        r
    }

    /// Update the value of an existing key (single-threaded convenience).
    pub fn set(&mut self, key: u64, val: u64) {
        self.insert_batch(&[(key, val)]);
    }
}

impl std::fmt::Debug for ConcurrentDict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentDict")
            .field("len", &self.len())
            .field("capacity", &self.keys.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn insert_get_roundtrip() {
        let mut d = ConcurrentDict::with_capacity(16);
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i * 7 + 1, i)).collect();
        d.insert_batch(&pairs);
        assert_eq!(d.len(), 1000);
        for (k, v) in pairs {
            assert_eq!(d.get(k), Some(v));
        }
        assert_eq!(d.get(123_456_789), None);
    }

    #[test]
    fn overwrite_existing() {
        let mut d = ConcurrentDict::with_capacity(4);
        d.insert_batch(&[(5, 1)]);
        d.insert_batch(&[(5, 2)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(5), Some(2));
    }

    #[test]
    fn remove_and_reinsert() {
        let mut d = ConcurrentDict::with_capacity(16);
        d.insert_batch(&[(1, 10), (2, 20), (3, 30)]);
        assert_eq!(d.remove_batch(&[2, 99]), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(2), None);
        assert_eq!(d.get(1), Some(10));
        d.insert_batch(&[(2, 21)]);
        assert_eq!(d.get(2), Some(21));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn grows_under_pressure() {
        let mut d = ConcurrentDict::with_capacity(4);
        let pairs: Vec<(u64, u64)> = (0..50_000).map(|i| (i + 1, i)).collect();
        d.insert_batch(&pairs);
        assert_eq!(d.len(), 50_000);
        assert_eq!(d.get(40_000), Some(39_999));
    }

    #[test]
    fn tombstone_rebuild_does_not_lose_entries() {
        let mut d = ConcurrentDict::with_capacity(8);
        let mut r = SplitMix64::new(17);
        let mut model = std::collections::HashMap::new();
        for round in 0..50 {
            let ins: Vec<(u64, u64)> = (0..100).map(|_| (r.next_below(5000) + 1, round)).collect();
            for &(k, v) in &ins {
                model.insert(k, v);
            }
            // Dedup keys so batch semantics are deterministic.
            let mut ins = ins;
            ins.sort_unstable_by_key(|p| p.0);
            ins.dedup_by_key(|p| p.0);
            d.insert_batch(&ins);
            let del: Vec<u64> = (0..30).map(|_| r.next_below(5000) + 1).collect();
            let mut del = del;
            crate::group::sort_dedup(&mut del);
            for k in &del {
                model.remove(k);
            }
            d.remove_batch(&del);
        }
        assert_eq!(d.len(), model.len());
        for (&k, &v) in &model {
            assert_eq!(d.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn batch_get_matches() {
        let mut d = ConcurrentDict::with_capacity(16);
        d.insert_batch(&[(1, 10), (3, 30)]);
        assert_eq!(d.get_batch(&[1, 2, 3]), vec![Some(10), None, Some(30)]);
    }

    #[test]
    fn iter_pairs_snapshot() {
        let mut d = ConcurrentDict::with_capacity(16);
        d.insert_batch(&[(1, 10), (2, 20)]);
        let mut pairs = d.iter_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn parallel_insert_race_single_key_space() {
        // Hammer a small key space from many parallel inserts.
        let mut d = ConcurrentDict::with_capacity(16);
        let pairs: Vec<(u64, u64)> = (0..20_000).map(|i| (i % 97 + 1, i)).collect();
        d.insert_batch(&pairs);
        assert_eq!(d.len(), 97);
        for k in 1..=97u64 {
            let v = d.get(k).unwrap();
            assert_eq!(v % 97 + 1, k);
        }
    }
}
