//! Insertion-only batch-parallel connectivity (the Simsiri et al. [57]
//! setting the paper cites as prior batch-dynamic work).

use crate::unionfind::ConcurrentUnionFind;
use dyncon_primitives::{par_for, par_map_collect};

/// Work-efficient parallel union-find over an insert-only edge stream:
/// `O(k α(n))` expected work per batch of `k` insertions, low depth.
/// No deletions — that restriction is exactly what the SPAA 2019 paper
/// lifts.
pub struct IncrementalConnectivity {
    uf: ConcurrentUnionFind,
    edges: usize,
}

impl IncrementalConnectivity {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            uf: ConcurrentUnionFind::new(n),
            edges: 0,
        }
    }

    /// Insert a batch of edges.
    pub fn batch_insert(&mut self, batch: &[(u32, u32)]) {
        let uf = &self.uf;
        par_for(batch.len(), |i| {
            let (u, v) = batch[i];
            if u != v {
                uf.union(u, v);
            }
        });
        self.edges += batch.len();
    }

    /// Batch connectivity queries.
    pub fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        par_map_collect(pairs, |&(u, v)| self.uf.same(u, v))
    }

    /// Single query.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.uf.same(u, v)
    }

    /// Number of insert operations processed.
    pub fn num_inserted(&self) -> usize {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_queries() {
        let mut ic = IncrementalConnectivity::new(8);
        ic.batch_insert(&[(0, 1), (2, 3)]);
        assert!(ic.connected(0, 1));
        assert!(!ic.connected(1, 2));
        ic.batch_insert(&[(1, 2)]);
        assert_eq!(
            ic.batch_connected(&[(0, 3), (4, 5), (6, 6)]),
            vec![true, false, true]
        );
        assert_eq!(ic.num_inserted(), 3);
    }

    #[test]
    fn large_batch() {
        let n = 10_000u32;
        let mut ic = IncrementalConnectivity::new(n as usize);
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        ic.batch_insert(&edges);
        assert!(ic.connected(0, n - 1));
    }
}
