//! Insertion-only batch-parallel connectivity (the Simsiri et al. \[57\]
//! setting the paper cites as prior batch-dynamic work).

use crate::unionfind::ConcurrentUnionFind;
use dyncon_api::{validate_pairs, BatchDynamic, BuildFrom, Builder, Connectivity, DynConError};
use dyncon_primitives::{par_for, par_map_collect};

/// Work-efficient parallel union-find over an insert-only edge stream:
/// `O(k α(n))` expected work per batch of `k` insertions, low depth.
/// No deletions — that restriction is exactly what the SPAA 2019 paper
/// lifts.
pub struct IncrementalConnectivity {
    uf: ConcurrentUnionFind,
    edges: usize,
}

impl IncrementalConnectivity {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            uf: ConcurrentUnionFind::new(n),
            edges: 0,
        }
    }

    /// Insert a batch of edges.
    pub fn batch_insert(&mut self, batch: &[(u32, u32)]) {
        let uf = &self.uf;
        par_for(batch.len(), |i| {
            let (u, v) = batch[i];
            if u != v {
                uf.union(u, v);
            }
        });
        self.edges += batch.len();
    }

    /// Batch connectivity queries.
    pub fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        par_map_collect(pairs, |&(u, v)| self.uf.same(u, v))
    }

    /// Single query.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.uf.same(u, v)
    }

    /// Number of insert operations processed.
    pub fn num_inserted(&self) -> usize {
        self.edges
    }
}

impl Connectivity for IncrementalConnectivity {
    fn backend_name(&self) -> &'static str {
        "incremental-unionfind"
    }

    fn num_vertices(&self) -> usize {
        self.uf.len()
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        IncrementalConnectivity::connected(self, u, v)
    }

    fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        IncrementalConnectivity::batch_connected(self, pairs)
    }

    /// `O(n)`: counts union-find roots (a baseline, not a fast path).
    fn num_components(&self) -> usize {
        (0..self.uf.len() as u32)
            .filter(|&x| self.uf.find(x) == x)
            .count()
    }

    /// `O(n)`: scans the whole universe (a baseline, not a fast path).
    fn component_size(&self, v: u32) -> u64 {
        let root = self.uf.find(v);
        (0..self.uf.len() as u32)
            .filter(|&x| self.uf.find(x) == root)
            .count() as u64
    }
}

impl BatchDynamic for IncrementalConnectivity {
    /// Counts accepted (non-self-loop) operations: a union-find tracks no
    /// edge set, so duplicates cannot be distinguished from fresh edges.
    fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.uf.len(), edges)?;
        IncrementalConnectivity::batch_insert(self, edges);
        Ok(edges.iter().filter(|&&(u, v)| u != v).count())
    }

    /// Always fails: this is the insert-only setting the SPAA 2019 paper
    /// lifts. The typed error is the honest answer.
    fn batch_delete(&mut self, _edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        Err(DynConError::Unsupported {
            backend: "incremental-unionfind",
            operation: "batch_delete",
        })
    }

    /// Insert-only: deletions are statically unsupported, so serving
    /// layers can bounce them at admission.
    fn supports(&self, kind: dyncon_api::OpKind) -> bool {
        kind != dyncon_api::OpKind::Delete
    }
}

impl BuildFrom for IncrementalConnectivity {
    fn build_from(builder: &Builder) -> Result<Self, DynConError> {
        // Re-validate (callers can reach this without `Builder::build`).
        builder.validate()?;
        Ok(IncrementalConnectivity::new(builder.num_vertices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_queries() {
        let mut ic = IncrementalConnectivity::new(8);
        ic.batch_insert(&[(0, 1), (2, 3)]);
        assert!(ic.connected(0, 1));
        assert!(!ic.connected(1, 2));
        ic.batch_insert(&[(1, 2)]);
        assert_eq!(
            ic.batch_connected(&[(0, 3), (4, 5), (6, 6)]),
            vec![true, false, true]
        );
        assert_eq!(ic.num_inserted(), 3);
    }

    #[test]
    fn trait_surface_insert_only() {
        use dyncon_api::Op;
        let mut ic: IncrementalConnectivity = Builder::new(8).build().unwrap();
        let res = ic
            .apply(&[Op::Insert(0, 1), Op::Insert(1, 1), Op::Query(0, 1)])
            .unwrap();
        assert_eq!(res.inserted, 1, "self-loop not accepted");
        assert_eq!(res.answers, vec![true]);
        assert_eq!(Connectivity::num_components(&ic), 7);
        assert_eq!(ic.component_size(0), 2);
        // Deletions are a typed refusal, not a panic or a silent no-op.
        let err = ic.apply(&[Op::Delete(0, 1)]).unwrap_err();
        assert!(matches!(err, DynConError::Unsupported { .. }));
    }

    #[test]
    fn large_batch() {
        let n = 10_000u32;
        let mut ic = IncrementalConnectivity::new(n as usize);
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        ic.batch_insert(&edges);
        assert!(ic.connected(0, n - 1));
    }
}
