//! # dyncon-spanning
//!
//! Static parallel connectivity building blocks and baselines:
//!
//! * [`boruvka`] — the **deterministic** parallel spanning forest playing
//!   the role of Gazit's randomized parallel connectivity algorithm \[22\]
//!   in the paper: both batch algorithms call a static
//!   `SpanningForest(...)` subroutine on `O(k)`-sized edge sets
//!   (Algorithm 2 line 5, Algorithm 4 line 23, Algorithm 5 line 18), and
//!   because those calls decide every tree-edge tie-break, the forest's
//!   scheduling independence (min-edge-index hooking, `fetch_min`
//!   reductions) is what makes the connectivity structures byte-identical
//!   across thread counts.
//! * [`ConcurrentUnionFind`] — lock-free union-find (CAS linking with
//!   random priorities + path halving); still the engine behind the
//!   recompute baselines, where label *values* may be scheduling-dependent
//!   but the partition never is.
//! * [`spanning_forest`] / [`connectivity_labels`] — one-shot parallel
//!   spanning forest (deterministic, via [`boruvka`]) and labelling over
//!   dense vertex ids.
//! * [`spanning_forest_sparse`] — the same over sparse `u64` ids (the
//!   connectivity core runs it over *component representatives*).
//! * [`StaticRecompute`] — the baseline the paper's introduction compares
//!   against: recompute components from scratch on every batch (`O(m+n)`
//!   per batch, the worst-case behaviour of existing streaming systems).
//! * [`IncrementalConnectivity`] — insertion-only union-find baseline
//!   (the Simsiri et al. \[57\] setting).
//! * [`NaiveDynamicGraph`] — a slow, obviously-correct dynamic-connectivity
//!   oracle used by every test suite in the workspace.
//!
//! [`IncrementalConnectivity`], [`StaticRecompute`] and
//! [`NaiveDynamicGraph`] all implement the workspace-wide
//! `dyncon_api::{Connectivity, BatchDynamic}` contract, so they slot into
//! differential tests and experiment panels as `Box<dyn BatchDynamic>`
//! alongside the real structures ([`IncrementalConnectivity`] answers
//! deletions with a typed `Unsupported` error — that restriction is the
//! point of the baseline).

pub mod boruvka;
pub mod incremental;
pub mod oracle;
pub mod shiloach_vishkin;
pub mod static_conn;
pub mod unionfind;

pub use boruvka::deterministic_forest_dense;
pub use incremental::IncrementalConnectivity;
pub use oracle::NaiveDynamicGraph;
pub use shiloach_vishkin::{sv_labels, sv_num_components};
pub use static_conn::{
    connectivity_labels, spanning_forest, spanning_forest_sparse, RelabeledForest, StaticRecompute,
};
pub use unionfind::{ConcurrentUnionFind, UnionFind};
