//! Shiloach–Vishkin style parallel connectivity (hook-and-compress).
//!
//! The paper's related-work section traces parallel connectivity to
//! Shiloach–Vishkin \[54\] and its descendants; our spanning-forest oracle
//! uses lock-free union-find instead (DESIGN.md §3). This module provides
//! the classic hook-and-compress algorithm as an *independent alternative
//! implementation* of the same contract — used to cross-validate the
//! union-find path and to let the E6 baseline be run with either engine.
//!
//! `O((m + n) lg n)` work in the worst case, `O(lg² n)` depth — not
//! work-optimal (Gazit's algorithm is), but deterministic given the input
//! and simple to verify.

use dyncon_primitives::{par_for, par_map_collect};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Connected-component labels of `(0..n, edges)` by repeated hooking and
/// pointer-jumping. `labels[u] == labels[v]` iff `u` and `v` are
/// connected; labels are component-minimum vertex ids (deterministic).
pub fn sv_labels(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        // Hook: point the larger root at the smaller endpoint's root.
        par_for(edges.len(), |i| {
            let (u, v) = edges[i];
            if u == v {
                return;
            }
            let pu = parent[u as usize].load(Ordering::Relaxed);
            let pv = parent[v as usize].load(Ordering::Relaxed);
            if pu == pv {
                return;
            }
            let (hi, lo) = if pu > pv { (pu, pv) } else { (pv, pu) };
            // Hook only roots (p[hi] == hi) to keep the forest shallow and
            // guarantee monotone label decrease (termination).
            if parent[hi as usize]
                .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Compress: full pointer jumping until the forest is flat.
        let mut jumping = true;
        while jumping {
            jumping = false;
            let jumped = AtomicBool::new(false);
            par_for(n, |v| {
                let p = parent[v].load(Ordering::Relaxed);
                let gp = parent[p as usize].load(Ordering::Relaxed);
                if p != gp {
                    parent[v].store(gp, Ordering::Relaxed);
                    jumped.store(true, Ordering::Relaxed);
                }
            });
            if jumped.load(Ordering::Relaxed) {
                jumping = true;
            }
        }
    }
    let ids: Vec<u32> = (0..n as u32).collect();
    par_map_collect(&ids, |&v| parent[v as usize].load(Ordering::Relaxed))
}

/// Number of connected components via [`sv_labels`].
pub fn sv_num_components(n: usize, edges: &[(u32, u32)]) -> usize {
    let labels = sv_labels(n, edges);
    let mut roots: Vec<u32> = labels;
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_conn::connectivity_labels;
    use dyncon_primitives::SplitMix64;

    fn partitions_agree(a: &[u32], b: &[u32]) -> bool {
        // Same partition iff the label-pair mapping is a bijection.
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y {
                return false;
            }
            if *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn labels_on_small_graph() {
        let labels = sv_labels(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[3], 3);
        // Deterministic minimum-id labels.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[4], 4);
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        let mut rng = SplitMix64::new(3);
        for trial in 0..10 {
            let n = 50 + (trial * 37) % 200;
            let m = n * 2;
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| {
                    (
                        rng.next_below(n as u64) as u32,
                        rng.next_below(n as u64) as u32,
                    )
                })
                .collect();
            let sv = sv_labels(n, &edges);
            let uf = connectivity_labels(n, &edges);
            assert!(partitions_agree(&sv, &uf), "trial {trial}");
        }
    }

    #[test]
    fn component_count() {
        assert_eq!(sv_num_components(5, &[]), 5);
        assert_eq!(sv_num_components(5, &[(0, 1), (2, 3)]), 3);
        assert_eq!(sv_num_components(4, &[(0, 1), (1, 2), (2, 3)]), 1);
    }

    #[test]
    fn long_path_terminates() {
        let n = 5000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let labels = sv_labels(n, &edges);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
