//! Parallel spanning forest / connectivity labelling, and the
//! recompute-from-scratch baseline.

use crate::unionfind::ConcurrentUnionFind;
use dyncon_primitives::{par_for, par_map_collect, sort_dedup, FxHashMap, FxHashSet, SyncSlice};

/// Choose a spanning forest of `edges` over vertices `0..n`: `chosen[i]` is
/// true for a subset of edges forming a forest that spans every component
/// of the input graph. Nondeterministic tie-breaking (racy unions), always
/// a valid maximal forest. `O(k α)` expected work, low depth.
pub fn spanning_forest(n: usize, edges: &[(u32, u32)]) -> Vec<bool> {
    let uf = ConcurrentUnionFind::new(n);
    let mut chosen = vec![false; edges.len()];
    {
        let out = SyncSlice::new(&mut chosen);
        par_for(edges.len(), |i| {
            let (u, v) = edges[i];
            if u != v && uf.union(u, v) {
                // SAFETY: slot i written only by iteration i.
                unsafe { out.write(i, true) };
            }
        });
    }
    chosen
}

/// Connected-component labels of the graph `(0..n, edges)`: `label[u] ==
/// label[v]` iff connected. Labels are root ids (not necessarily dense).
pub fn connectivity_labels(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let uf = ConcurrentUnionFind::new(n);
    par_for(edges.len(), |i| {
        let (u, v) = edges[i];
        if u != v {
            uf.union(u, v);
        }
    });
    let ids: Vec<u32> = (0..n as u32).collect();
    par_map_collect(&ids, |&v| uf.find(v))
}

/// Result of [`spanning_forest_sparse`].
pub struct RelabeledForest {
    /// Mask over the input edges: a spanning forest.
    pub chosen: Vec<bool>,
    /// Component label (an arbitrary member id) for every id that appeared
    /// as an endpoint.
    pub labels: FxHashMap<u64, u64>,
}

/// Spanning forest over sparse `u64` vertex ids (the connectivity core runs
/// this over ETT component representatives, treating each current
/// component as a contracted vertex — Algorithm 2 line 5).
pub fn spanning_forest_sparse(edges: &[(u64, u64)]) -> RelabeledForest {
    // Compact ids.
    let mut ids: Vec<u64> = Vec::with_capacity(edges.len() * 2);
    for &(a, b) in edges {
        ids.push(a);
        ids.push(b);
    }
    sort_dedup(&mut ids);
    let index = |x: u64| ids.binary_search(&x).expect("endpoint indexed") as u32;
    let dense: Vec<(u32, u32)> = par_map_collect(edges, |&(a, b)| (index(a), index(b)));
    let uf = ConcurrentUnionFind::new(ids.len());
    let mut chosen = vec![false; edges.len()];
    {
        let out = SyncSlice::new(&mut chosen);
        par_for(dense.len(), |i| {
            let (u, v) = dense[i];
            if u != v && uf.union(u, v) {
                // SAFETY: slot i written only by iteration i.
                unsafe { out.write(i, true) };
            }
        });
    }
    let labels: FxHashMap<u64, u64> = ids
        .iter()
        .enumerate()
        .map(|(i, &orig)| (orig, ids[uf.find(i as u32) as usize]))
        .collect();
    RelabeledForest { chosen, labels }
}

/// The `O(m + n)`-per-batch baseline: keep the edge set, recompute the
/// component labelling from scratch whenever a query arrives after a
/// mutation. This is what the paper's introduction says existing
/// batch-processing systems effectively do in the worst case.
pub struct StaticRecompute {
    n: usize,
    edges: FxHashSet<u64>,
    labels: Option<Vec<u32>>,
}

#[inline]
fn key(u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

impl StaticRecompute {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: FxHashSet::default(),
            labels: None,
        }
    }

    /// Number of current edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Insert a batch of edges (duplicates/self-loops ignored).
    pub fn batch_insert(&mut self, batch: &[(u32, u32)]) {
        for &(u, v) in batch {
            if u != v {
                self.edges.insert(key(u, v));
            }
        }
        self.labels = None;
    }

    /// Delete a batch of edges (absent edges ignored).
    pub fn batch_delete(&mut self, batch: &[(u32, u32)]) {
        for &(u, v) in batch {
            self.edges.remove(&key(u, v));
        }
        self.labels = None;
    }

    /// Answer connectivity queries, recomputing labels if stale.
    pub fn batch_connected(&mut self, pairs: &[(u32, u32)]) -> Vec<bool> {
        let labels = self.labels_mut();
        pairs
            .iter()
            .map(|&(u, v)| labels[u as usize] == labels[v as usize])
            .collect()
    }

    /// Current labelling (recomputed if stale): the full static
    /// connectivity pass the baseline pays per batch.
    pub fn labels_mut(&mut self) -> &Vec<u32> {
        if self.labels.is_none() {
            let edge_list: Vec<(u32, u32)> = self
                .edges
                .iter()
                .map(|&k| ((k >> 32) as u32, k as u32))
                .collect();
            self.labels = Some(connectivity_labels(self.n, &edge_list));
        }
        self.labels.as_ref().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_spans_components() {
        let n = 100;
        let edges: Vec<(u32, u32)> = (0..99)
            .map(|i| (i, i + 1))
            .chain([(0, 50), (20, 80)])
            .collect();
        let chosen = spanning_forest(n, &edges);
        let picked: usize = chosen.iter().filter(|&&c| c).count();
        assert_eq!(picked, 99, "path edges + 2 redundant edges -> n-1 chosen");
        // Chosen subset must be acyclic and span: verify via sequential UF.
        let mut uf = crate::unionfind::UnionFind::new(n);
        for (i, &(u, v)) in edges.iter().enumerate() {
            if chosen[i] {
                assert!(uf.union(u, v), "chosen edge closes a cycle");
            }
        }
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn labels_partition() {
        let labels = connectivity_labels(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[3], labels[0]);
    }

    #[test]
    fn sparse_forest_and_labels() {
        let edges: Vec<(u64, u64)> = vec![(1 << 40, 7), (7, 9), (9, 1 << 40), (100, 200)];
        let rf = spanning_forest_sparse(&edges);
        let picked: usize = rf.chosen.iter().filter(|&&c| c).count();
        assert_eq!(picked, 3); // triangle contributes 2, pair contributes 1
        assert_eq!(rf.labels[&(1 << 40)], rf.labels[&7]);
        assert_eq!(rf.labels[&7], rf.labels[&9]);
        assert_ne!(rf.labels[&100], rf.labels[&7]);
        assert_eq!(rf.labels[&100], rf.labels[&200]);
    }

    #[test]
    fn sparse_empty() {
        let rf = spanning_forest_sparse(&[]);
        assert!(rf.chosen.is_empty());
        assert!(rf.labels.is_empty());
    }

    #[test]
    fn recompute_baseline_tracks_mutations() {
        let mut s = StaticRecompute::new(6);
        s.batch_insert(&[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(
            s.batch_connected(&[(0, 2), (0, 3), (3, 4)]),
            vec![true, false, true]
        );
        s.batch_delete(&[(1, 2)]);
        assert_eq!(s.batch_connected(&[(0, 2)]), vec![false]);
        s.batch_insert(&[(2, 4), (4, 0)]);
        assert_eq!(s.batch_connected(&[(0, 2), (0, 3)]), vec![true, true]);
        // Duplicate & self-loop tolerance: {0-1,3-4,2-4,4-0} stays 4 edges.
        s.batch_insert(&[(0, 0), (0, 1)]);
        assert_eq!(s.num_edges(), 4);
    }
}
