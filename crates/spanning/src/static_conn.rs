//! Parallel spanning forest / connectivity labelling, and the
//! recompute-from-scratch baseline.

use crate::unionfind::ConcurrentUnionFind;
use dyncon_api::{validate_pairs, BatchDynamic, BuildFrom, Builder, Connectivity, DynConError};
use dyncon_primitives::{par_expand2, par_for, par_map_collect, sort_dedup, FxHashMap, FxHashSet};
use std::sync::Mutex;

/// Choose a spanning forest of `edges` over vertices `0..n`: `chosen[i]` is
/// true for a subset of edges forming a forest that spans every component
/// of the input graph. **Deterministic**: tie-breaking prefers the smallest
/// edge index (then smaller root id), so the mask is a pure function of the
/// input — byte-identical across thread counts (see [`crate::boruvka`]).
pub fn spanning_forest(n: usize, edges: &[(u32, u32)]) -> Vec<bool> {
    crate::boruvka::deterministic_forest_dense(n, edges).0
}

/// Connected-component labels of the graph `(0..n, edges)`: `label[u] ==
/// label[v]` iff connected. Labels are root ids (not necessarily dense).
pub fn connectivity_labels(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let uf = ConcurrentUnionFind::new(n);
    par_for(edges.len(), |i| {
        let (u, v) = edges[i];
        if u != v {
            uf.union(u, v);
        }
    });
    let ids: Vec<u32> = (0..n as u32).collect();
    par_map_collect(&ids, |&v| uf.find(v))
}

/// Result of [`spanning_forest_sparse`].
pub struct RelabeledForest {
    /// Mask over the input edges: a spanning forest.
    pub chosen: Vec<bool>,
    /// Component label (an arbitrary member id) for every id that appeared
    /// as an endpoint.
    pub labels: FxHashMap<u64, u64>,
}

/// Spanning forest over sparse `u64` vertex ids (the connectivity core runs
/// this over ETT component representatives, treating each current
/// component as a contracted vertex — Algorithm 2 line 5).
///
/// Deterministic like [`spanning_forest`]: the batch algorithms route all
/// tree-edge tie-breaking through this call, so its scheduling independence
/// is what makes the whole connectivity structure byte-identical across
/// thread counts.
pub fn spanning_forest_sparse(edges: &[(u64, u64)]) -> RelabeledForest {
    // Compact ids.
    let mut ids: Vec<u64> = par_expand2(edges, |&(a, b)| [a, b]);
    sort_dedup(&mut ids);
    let index = |x: u64| ids.binary_search(&x).expect("endpoint indexed") as u32;
    let dense: Vec<(u32, u32)> = par_map_collect(edges, |&(a, b)| (index(a), index(b)));
    let (chosen, parent) = crate::boruvka::deterministic_forest_dense(ids.len(), &dense);
    let labels: FxHashMap<u64, u64> = ids
        .iter()
        .enumerate()
        .map(|(i, &orig)| {
            (
                orig,
                ids[crate::boruvka::root_of(&parent, i as u32) as usize],
            )
        })
        .collect();
    RelabeledForest { chosen, labels }
}

/// The `O(m + n)`-per-batch baseline: keep the edge set, recompute the
/// component labelling from scratch whenever a query arrives after a
/// mutation. This is what the paper's introduction says existing
/// batch-processing systems effectively do in the worst case.
///
/// Queries take `&self` (the labelling cache sits behind a mutex), so the
/// type satisfies the workspace [`Connectivity`] contract and slots into
/// differential experiments as the static reference backend.
pub struct StaticRecompute {
    n: usize,
    edges: FxHashSet<u64>,
    labels: Mutex<Option<Vec<u32>>>,
}

#[inline]
fn key(u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

impl StaticRecompute {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: FxHashSet::default(),
            labels: Mutex::new(None),
        }
    }

    /// Number of current edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Insert a batch of edges (duplicates/self-loops ignored); returns
    /// the number of edges actually added.
    pub fn batch_insert(&mut self, batch: &[(u32, u32)]) -> usize {
        let mut added = 0;
        for &(u, v) in batch {
            if u != v && self.edges.insert(key(u, v)) {
                added += 1;
            }
        }
        if added > 0 {
            *self.labels.get_mut().unwrap() = None;
        }
        added
    }

    /// Delete a batch of edges (absent edges ignored); returns the number
    /// of edges actually removed.
    pub fn batch_delete(&mut self, batch: &[(u32, u32)]) -> usize {
        let mut removed = 0;
        for &(u, v) in batch {
            if self.edges.remove(&key(u, v)) {
                removed += 1;
            }
        }
        if removed > 0 {
            *self.labels.get_mut().unwrap() = None;
        }
        removed
    }

    /// Run `f` on the current labelling, recomputing it first if stale:
    /// the full static connectivity pass the baseline pays per batch.
    pub fn with_labels<R>(&self, f: impl FnOnce(&[u32]) -> R) -> R {
        let mut cache = self.labels.lock().unwrap();
        let labels = cache.get_or_insert_with(|| {
            let edge_list: Vec<(u32, u32)> = self
                .edges
                .iter()
                .map(|&k| ((k >> 32) as u32, k as u32))
                .collect();
            connectivity_labels(self.n, &edge_list)
        });
        f(labels)
    }

    /// Answer connectivity queries, recomputing labels if stale.
    pub fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        self.with_labels(|labels| {
            pairs
                .iter()
                .map(|&(u, v)| labels[u as usize] == labels[v as usize])
                .collect()
        })
    }
}

impl Connectivity for StaticRecompute {
    fn backend_name(&self) -> &'static str {
        "static-recompute"
    }

    fn num_vertices(&self) -> usize {
        self.n
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        self.with_labels(|labels| labels[u as usize] == labels[v as usize])
    }

    fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        StaticRecompute::batch_connected(self, pairs)
    }

    fn num_components(&self) -> usize {
        self.with_labels(|labels| {
            let mut distinct: Vec<u32> = labels.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.len()
        })
    }

    fn component_size(&self, v: u32) -> u64 {
        self.with_labels(|labels| {
            let mine = labels[v as usize];
            labels.iter().filter(|&&l| l == mine).count() as u64
        })
    }
}

impl BatchDynamic for StaticRecompute {
    fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.n, edges)?;
        Ok(StaticRecompute::batch_insert(self, edges))
    }

    fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.n, edges)?;
        Ok(StaticRecompute::batch_delete(self, edges))
    }
}

impl BuildFrom for StaticRecompute {
    fn build_from(builder: &Builder) -> Result<Self, DynConError> {
        // Re-validate (callers can reach this without `Builder::build`).
        builder.validate()?;
        Ok(StaticRecompute::new(builder.num_vertices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_spans_components() {
        let n = 100;
        let edges: Vec<(u32, u32)> = (0..99)
            .map(|i| (i, i + 1))
            .chain([(0, 50), (20, 80)])
            .collect();
        let chosen = spanning_forest(n, &edges);
        let picked: usize = chosen.iter().filter(|&&c| c).count();
        assert_eq!(picked, 99, "path edges + 2 redundant edges -> n-1 chosen");
        // Chosen subset must be acyclic and span: verify via sequential UF.
        let mut uf = crate::unionfind::UnionFind::new(n);
        for (i, &(u, v)) in edges.iter().enumerate() {
            if chosen[i] {
                assert!(uf.union(u, v), "chosen edge closes a cycle");
            }
        }
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn labels_partition() {
        let labels = connectivity_labels(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[3], labels[0]);
    }

    #[test]
    fn sparse_forest_and_labels() {
        let edges: Vec<(u64, u64)> = vec![(1 << 40, 7), (7, 9), (9, 1 << 40), (100, 200)];
        let rf = spanning_forest_sparse(&edges);
        let picked: usize = rf.chosen.iter().filter(|&&c| c).count();
        assert_eq!(picked, 3); // triangle contributes 2, pair contributes 1
        assert_eq!(rf.labels[&(1 << 40)], rf.labels[&7]);
        assert_eq!(rf.labels[&7], rf.labels[&9]);
        assert_ne!(rf.labels[&100], rf.labels[&7]);
        assert_eq!(rf.labels[&100], rf.labels[&200]);
    }

    #[test]
    fn sparse_empty() {
        let rf = spanning_forest_sparse(&[]);
        assert!(rf.chosen.is_empty());
        assert!(rf.labels.is_empty());
    }

    #[test]
    fn recompute_baseline_tracks_mutations() {
        let mut s = StaticRecompute::new(6);
        s.batch_insert(&[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(
            s.batch_connected(&[(0, 2), (0, 3), (3, 4)]),
            vec![true, false, true]
        );
        s.batch_delete(&[(1, 2)]);
        assert_eq!(s.batch_connected(&[(0, 2)]), vec![false]);
        s.batch_insert(&[(2, 4), (4, 0)]);
        assert_eq!(s.batch_connected(&[(0, 2), (0, 3)]), vec![true, true]);
        // Duplicate & self-loop tolerance: {0-1,3-4,2-4,4-0} stays 4 edges.
        assert_eq!(s.batch_insert(&[(0, 0), (0, 1)]), 0);
        assert_eq!(s.num_edges(), 4);
    }

    #[test]
    fn recompute_trait_surface() {
        use dyncon_api::{BatchDynamic, Builder, Connectivity, Op};
        let mut s: StaticRecompute = Builder::new(6).build().unwrap();
        let res = s
            .apply(&[
                Op::Insert(0, 1),
                Op::Insert(1, 2),
                Op::Query(0, 2),
                Op::Delete(1, 2),
                Op::Query(0, 2),
            ])
            .unwrap();
        assert_eq!((res.inserted, res.deleted), (2, 1));
        assert_eq!(res.answers, vec![true, false]);
        assert_eq!(Connectivity::num_components(&s), 5);
        assert_eq!(s.component_size(1), 2);
        assert!(s.apply(&[Op::Query(0, 6)]).is_err());
    }
}
