//! Deterministic parallel spanning forest (Borůvka hooking).
//!
//! The racy CAS union-find of [`crate::ConcurrentUnionFind`] picks a valid
//! spanning forest, but *which* edges it picks depends on scheduling — two
//! runs of the same batch on different thread counts can disagree. The
//! batch-dynamic connectivity structure routes every tie-break (which
//! inserted edge becomes a tree edge, which replacement edge is promoted)
//! through its `SpanningForest(...)` subroutine, so forest choice is the
//! one place where scheduling could leak into the structure's state. This
//! module makes that choice a pure function of the input edge order:
//!
//! * every round, each component selects its **minimum-index** incident
//!   live edge. The reduction runs as a racy `fetch_min` — min is
//!   commutative and associative, so the result is scheduling-independent;
//! * a pair of components selecting the same edge (a "mutual" pair) hooks
//!   larger root onto smaller root; a one-sided selection hooks the
//!   selecting root onto the other endpoint's root. Distinct edge indices
//!   make every other pointer cycle impossible (along a hooking chain the
//!   selected indices strictly decrease);
//! * hooked roots are flattened by pointer doubling over the (sorted,
//!   deduplicated) touched-root set — again a fixed function of the input.
//!
//! `O(m lg n)` work worst case, `O(lg² n)` depth — each round is a constant
//! number of parallel loops and halves the number of live components.
//! Rounds after the first touch only still-crossing edges, so the common
//! near-forest batches of Algorithms 2/4/5 finish in one or two rounds.

use dyncon_primitives::{
    pack, par_expand2, par_for, par_for_each, par_map_collect, par_tabulate, sort_dedup, SyncSlice,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Root of `x` under the frozen `parent` array. Chains are short (one hop
/// per completed round — every round ends by flattening the roots it
/// touched), so a read-only walk is `O(lg n)`.
#[inline]
fn find(parent: &[u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        x = parent[x as usize];
    }
    x
}

/// Deterministic spanning forest over dense vertex ids `0..n`.
///
/// Returns `(chosen, parent)`: `chosen[i]` marks a subset of `edges`
/// forming a maximal forest, and `parent` is a shallow union-find forest
/// over `0..n` (follow [`root_of`] chains of length `O(lg n)` for
/// labels). Both outputs are **byte-identical across thread counts**:
/// `chosen` prefers the smallest edge index available to each component,
/// ties between components break by smaller root id.
pub fn deterministic_forest_dense(n: usize, edges: &[(u32, u32)]) -> (Vec<bool>, Vec<u32>) {
    let m = edges.len();
    let mut chosen = vec![false; m];
    let mut parent: Vec<u32> = (0..n as u32).collect();
    // Live edges: still cross two components (self-loops never do).
    let mut live: Vec<u32> = pack(
        &par_tabulate(m, |i| i as u32),
        &par_map_collect(edges, |&(u, v)| u != v),
    );
    // best[r]: packed (edge index << 32 | other root) — minimized by edge
    // index first, reset after every round for the roots it touched.
    let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();

    while !live.is_empty() {
        // Phase 1: roots of every live edge; drop settled edges.
        let ends: Vec<(u32, u32)> = par_map_collect(&live, |&i| {
            let (u, v) = edges[i as usize];
            (find(&parent, u), find(&parent, v))
        });
        let crossing: Vec<bool> = par_map_collect(&ends, |&(ru, rv)| ru != rv);
        let ends = pack(&ends, &crossing);
        live = pack(&live, &crossing);
        if live.is_empty() {
            break;
        }

        // Phase 2: minimum-index selection per root (deterministic racy min).
        par_for(live.len(), |j| {
            let i = live[j] as u64;
            let (ru, rv) = ends[j];
            best[ru as usize].fetch_min((i << 32) | rv as u64, Ordering::Relaxed);
            best[rv as usize].fetch_min((i << 32) | ru as u64, Ordering::Relaxed);
        });

        // Phase 3: hook. Touched roots, sorted so ownership is canonical.
        let mut roots: Vec<u32> = par_expand2(&ends, |&(ru, rv)| [ru, rv]);
        sort_dedup(&mut roots);
        {
            let parent_out = SyncSlice::new(&mut parent);
            let chosen_out = SyncSlice::new(&mut chosen);
            // The closure reads only `best` entries and writes only
            // `parent[r]` / `chosen[e]` slots it exclusively owns (the
            // edge's two endpoint-roots are the only candidates, and the
            // mutual rule picks exactly one writer).
            par_for_each(&roots, |&r| {
                let b = best[r as usize].load(Ordering::Relaxed);
                debug_assert_ne!(b, u64::MAX, "touched root without a candidate");
                let e = (b >> 32) as usize;
                let other = b as u32;
                let mutual = (best[other as usize].load(Ordering::Relaxed) >> 32) as usize == e;
                if !mutual || r > other {
                    // SAFETY: only root `r` writes parent[r]; `chosen[e]` is
                    // written by at most one of the edge's two roots (the
                    // non-mutual selector, or the larger of a mutual pair).
                    unsafe {
                        parent_out.write(r as usize, other);
                        chosen_out.write(e, true);
                    }
                }
            });
        }

        // Phase 4: flatten — every touched root points at its final root.
        // Hooking chains live entirely inside `roots`, so pointer-double
        // over that compact index space.
        let root_slot = |x: u32| {
            roots
                .binary_search(&x)
                .expect("hook target is a touched root")
        };
        let mut ptr: Vec<u32> = par_map_collect(&roots, |&r| root_slot(parent[r as usize]) as u32);
        loop {
            let next: Vec<u32> = par_map_collect(&ptr, |&j| ptr[j as usize]);
            if next == ptr {
                break;
            }
            ptr = next;
        }
        {
            let parent_out = SyncSlice::new(&mut parent);
            par_for(roots.len(), |j| {
                // SAFETY: slot roots[j] written only by iteration j.
                unsafe { parent_out.write(roots[j] as usize, roots[ptr[j] as usize]) };
            });
        }

        // Phase 5: reset the touched `best` entries for the next round.
        par_for_each(&roots, |&r| {
            best[r as usize].store(u64::MAX, Ordering::Relaxed)
        });
    }
    (chosen, parent)
}

/// Component label (root id) of every vertex under the forest returned by
/// [`deterministic_forest_dense`].
pub fn labels_of(parent: &[u32]) -> Vec<u32> {
    par_map_collect(&(0..parent.len() as u32).collect::<Vec<_>>(), |&v| {
        find(parent, v)
    })
}

/// Root of `v` in a parent forest produced by
/// [`deterministic_forest_dense`].
pub fn root_of(parent: &[u32], v: u32) -> u32 {
    find(parent, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncon_primitives::SplitMix64;

    fn oracle_components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut uf = crate::UnionFind::new(n);
        for &(u, v) in edges {
            if u != v {
                uf.union(u, v);
            }
        }
        (0..n as u32).map(|v| uf.find(v)).collect()
    }

    fn check_valid_forest(n: usize, edges: &[(u32, u32)], chosen: &[bool]) {
        // Chosen edges are cycle-free and span every component.
        let mut uf = crate::UnionFind::new(n);
        for (i, &(u, v)) in edges.iter().enumerate() {
            if chosen[i] {
                assert!(uf.union(u, v), "chosen edge {i} closes a cycle");
            }
        }
        let all = oracle_components(n, edges);
        for &(u, v) in edges {
            if u != v {
                assert!(uf.same(u, v), "({u},{v}) not spanned");
            }
        }
        // Same partition as the oracle.
        for u in 0..n as u32 {
            for w in (u + 1..n as u32).step_by(17) {
                assert_eq!(
                    uf.same(u, w),
                    all[u as usize] == all[w as usize],
                    "partition mismatch at ({u},{w})"
                );
            }
        }
    }

    #[test]
    fn forest_is_valid_on_random_graphs() {
        let mut rng = SplitMix64::new(42);
        for &(n, m) in &[(1usize, 0usize), (2, 1), (50, 200), (300, 1000)] {
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| {
                    (
                        rng.next_below(n as u64) as u32,
                        rng.next_below(n as u64) as u32,
                    )
                })
                .collect();
            let (chosen, parent) = deterministic_forest_dense(n, &edges);
            check_valid_forest(n, &edges, &chosen);
            // Labels agree with the oracle partition.
            let labels = labels_of(&parent);
            let oracle = oracle_components(n, &edges);
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(
                        labels[u] == labels[v],
                        oracle[u] == oracle[v],
                        "labels partition mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn chain_hooking_is_handled() {
        // A path graph makes round 1 hook every root into one long chain —
        // the pointer-doubling flatten must converge, and every edge joins.
        let n = 5000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let (chosen, parent) = deterministic_forest_dense(n, &edges);
        assert!(chosen.iter().all(|&c| c), "every path edge is a tree edge");
        let r = root_of(&parent, 0);
        assert!((0..n as u32).all(|v| root_of(&parent, v) == r));
    }

    #[test]
    fn prefers_smaller_edge_indices() {
        // Triangle: the third edge loses to the two earlier ones.
        let (chosen, _) = deterministic_forest_dense(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(chosen, vec![true, true, false]);
        // Duplicate edges: first copy wins.
        let (chosen, _) = deterministic_forest_dense(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(chosen, vec![true, false, false]);
    }

    #[test]
    fn identical_across_thread_counts() {
        let mut rng = SplitMix64::new(7);
        let n = 4000;
        let edges: Vec<(u32, u32)> = (0..3 * n)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let mut reference: Option<(Vec<bool>, Vec<u32>)> = None;
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(|| deterministic_forest_dense(n, &edges));
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "forest diverged at {threads} threads"),
            }
        }
    }
}
