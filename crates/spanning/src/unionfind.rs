//! Sequential and lock-free concurrent union-find.

use dyncon_primitives::hash64;
use std::sync::atomic::{AtomicU32, Ordering};

/// Classic sequential union-find with union by size and path halving.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Root of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; false if already merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Same-set query.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Lock-free concurrent union-find.
///
/// Linking uses pseudo-random priorities (a hash of the root id) so the
/// union forest has `O(lg n)` expected depth regardless of adversarial
/// union order; `find` applies path halving with benign-race CAS. Wait-free
/// reads, lock-free unions — the standard concurrent DSU construction.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    #[inline]
    fn read(&self, x: u32) -> u32 {
        self.parent[x as usize].load(Ordering::Relaxed)
    }

    /// Current root of `x` (with path halving).
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.read(x);
            if p == x {
                return x;
            }
            let gp = self.read(p);
            if p != gp {
                // Path halving; losing the race is harmless.
                let _ = self.parent[x as usize].compare_exchange_weak(
                    p,
                    gp,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            x = gp;
        }
    }

    /// Priority ordering for linking: hash then id as tie-break.
    #[inline]
    fn prio(x: u32) -> (u64, u32) {
        (hash64(x as u64), x)
    }

    /// Merge the sets of `a` and `b`. Returns true iff *this call*
    /// performed the merge (at most one concurrent caller wins per merge —
    /// the property spanning-forest construction relies on).
    pub fn union(&self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (a, b);
        loop {
            ra = self.find(ra);
            rb = self.find(rb);
            if ra == rb {
                return false;
            }
            // Link the lower-priority root under the higher-priority one.
            let (child, parent) = if Self::prio(ra) < Self::prio(rb) {
                (ra, rb)
            } else {
                (rb, ra)
            };
            if self.parent[child as usize]
                .compare_exchange(child, parent, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
            // Lost a race; retry from the new roots.
        }
    }

    /// Same-set query, correct when no unions run concurrently.
    pub fn same(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // Re-check stability: if ra is still a root, the answer is a
            // consistent snapshot.
            if self.read(ra) == ra {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncon_primitives::par_for;
    use dyncon_primitives::SplitMix64;

    #[test]
    fn sequential_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert_eq!(uf.num_components(), 4);
        assert_eq!(uf.size_of(1), 2);
    }

    #[test]
    fn concurrent_matches_sequential() {
        let n = 2000;
        let mut rng = SplitMix64::new(3);
        let edges: Vec<(u32, u32)> = (0..4000)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let cuf = ConcurrentUnionFind::new(n);
        par_for(edges.len(), |i| {
            let (a, b) = edges[i];
            cuf.union(a, b);
        });
        let mut suf = UnionFind::new(n);
        for &(a, b) in &edges {
            suf.union(a, b);
        }
        for i in 0..n as u32 {
            for j in [0u32, 7, 99] {
                assert_eq!(cuf.same(i, j), suf.same(i, j), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn union_returns_true_exactly_once_per_merge() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 512;
        let cuf = ConcurrentUnionFind::new(n);
        let wins = AtomicUsize::new(0);
        // Everyone unions into a single component; exactly n-1 wins.
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1)
            .flat_map(|i| [(i, i + 1), (i, i + 1), (i + 1, i)])
            .collect();
        par_for(edges.len(), |i| {
            let (a, b) = edges[i];
            if cuf.union(a, b) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), n - 1);
    }

    #[test]
    fn find_is_stable_after_quiescence() {
        let cuf = ConcurrentUnionFind::new(10);
        cuf.union(1, 2);
        cuf.union(2, 3);
        let r = cuf.find(1);
        assert_eq!(cuf.find(2), r);
        assert_eq!(cuf.find(3), r);
        assert_ne!(cuf.find(4), r);
    }
}
