//! The slow, obviously-correct dynamic connectivity oracle used as ground
//! truth by every test suite in the workspace.

use crate::unionfind::UnionFind;
use dyncon_api::{
    validate_pairs, BatchDynamic, BuildFrom, Builder, Connectivity, DynConError, ExportEdges,
};
use dyncon_primitives::FxHashSet;
use std::sync::Mutex;

/// Fully dynamic graph with recompute-on-demand connectivity. All
/// operations are sequential and straightforward — this type exists to be
/// *trusted*, not fast. Queries take `&self` (the DSU cache sits behind a
/// mutex), so it satisfies the workspace [`Connectivity`] contract and
/// serves as the reference backend of the differential test suite.
pub struct NaiveDynamicGraph {
    n: usize,
    edges: FxHashSet<(u32, u32)>,
    cache: Mutex<Option<UnionFind>>,
}

impl NaiveDynamicGraph {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: FxHashSet::default(),
            cache: Mutex::new(None),
        }
    }

    fn norm(u: u32, v: u32) -> (u32, u32) {
        (u.min(v), u.max(v))
    }

    fn invalidate(&mut self) {
        *self.cache.get_mut().unwrap() = None;
    }

    /// Insert one edge; returns false if it was already present or a loop.
    pub fn insert(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let fresh = self.edges.insert(Self::norm(u, v));
        if fresh {
            self.invalidate();
        }
        fresh
    }

    /// Delete one edge; returns false if absent.
    pub fn delete(&mut self, u: u32, v: u32) -> bool {
        let removed = self.edges.remove(&Self::norm(u, v));
        if removed {
            self.invalidate();
        }
        removed
    }

    /// Insert a batch (duplicates skipped).
    pub fn batch_insert(&mut self, batch: &[(u32, u32)]) {
        for &(u, v) in batch {
            self.insert(u, v);
        }
    }

    /// Delete a batch (absences skipped).
    pub fn batch_delete(&mut self, batch: &[(u32, u32)]) {
        for &(u, v) in batch {
            self.delete(u, v);
        }
    }

    /// Membership test.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edges.contains(&Self::norm(u, v))
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges, sorted (for driving other structures deterministically).
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self.edges.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Run `f` on the (lazily rebuilt) DSU cache.
    fn with_dsu<R>(&self, f: impl FnOnce(&mut UnionFind) -> R) -> R {
        let mut cache = self.cache.lock().unwrap();
        let dsu = cache.get_or_insert_with(|| {
            let mut uf = UnionFind::new(self.n);
            for &(u, v) in &self.edges {
                uf.union(u, v);
            }
            uf
        });
        f(dsu)
    }

    /// Connectivity query.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.with_dsu(|dsu| dsu.same(u, v))
    }

    /// Batch connectivity queries.
    pub fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        self.with_dsu(|dsu| pairs.iter().map(|&(u, v)| dsu.same(u, v)).collect())
    }

    /// Number of connected components (isolated vertices included).
    pub fn num_components(&self) -> usize {
        self.with_dsu(|dsu| dsu.num_components())
    }

    /// Size of the component containing `v`.
    pub fn component_size(&self, v: u32) -> u32 {
        self.with_dsu(|dsu| dsu.size_of(v))
    }
}

impl Connectivity for NaiveDynamicGraph {
    fn backend_name(&self) -> &'static str {
        "naive-oracle"
    }

    fn num_vertices(&self) -> usize {
        self.n
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        NaiveDynamicGraph::connected(self, u, v)
    }

    fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        NaiveDynamicGraph::batch_connected(self, pairs)
    }

    fn num_components(&self) -> usize {
        NaiveDynamicGraph::num_components(self)
    }

    fn component_size(&self, v: u32) -> u64 {
        NaiveDynamicGraph::component_size(self, v) as u64
    }
}

impl BatchDynamic for NaiveDynamicGraph {
    fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.n, edges)?;
        Ok(edges.iter().filter(|&&(u, v)| self.insert(u, v)).count())
    }

    fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.n, edges)?;
        Ok(edges.iter().filter(|&&(u, v)| self.delete(u, v)).count())
    }
}

impl ExportEdges for NaiveDynamicGraph {
    fn export_edges(&self) -> Vec<(u32, u32)> {
        // `edge_list` already stores normalized pairs and returns them
        // sorted — exactly the canonical form the trait requires.
        self.edge_list()
    }
}

impl BuildFrom for NaiveDynamicGraph {
    fn build_from(builder: &Builder) -> Result<Self, DynConError> {
        // Re-validate (callers can reach this without `Builder::build`).
        builder.validate()?;
        Ok(NaiveDynamicGraph::new(builder.num_vertices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncon_api::Op;

    #[test]
    fn oracle_basics() {
        let mut g = NaiveDynamicGraph::new(5);
        assert!(g.insert(0, 1));
        assert!(!g.insert(1, 0), "normalized duplicate");
        assert!(!g.insert(2, 2), "self loop rejected");
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
        assert_eq!(g.num_components(), 4);
        assert!(g.delete(0, 1));
        assert!(!g.delete(0, 1));
        assert!(!g.connected(0, 1));
        assert_eq!(g.num_components(), 5);
    }

    #[test]
    fn component_sizes() {
        let mut g = NaiveDynamicGraph::new(6);
        g.batch_insert(&[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.component_size(2), 3);
        assert_eq!(g.component_size(3), 2);
        assert_eq!(g.component_size(5), 1);
    }

    #[test]
    fn edge_list_is_sorted_and_normalized() {
        let mut g = NaiveDynamicGraph::new(5);
        g.batch_insert(&[(3, 1), (0, 4), (2, 0)]);
        assert_eq!(g.edge_list(), vec![(0, 2), (0, 4), (1, 3)]);
    }

    #[test]
    fn queries_through_shared_reference() {
        let mut g = NaiveDynamicGraph::new(4);
        g.batch_insert(&[(0, 1)]);
        let shared = &g;
        assert!(shared.connected(0, 1));
        assert_eq!(shared.batch_connected(&[(0, 1), (2, 3)]), vec![true, false]);
    }

    #[test]
    fn trait_mixed_batch() {
        let mut g: NaiveDynamicGraph = Builder::new(5).build().unwrap();
        let res = g
            .apply(&[
                Op::Insert(0, 1),
                Op::Insert(0, 1),
                Op::Query(0, 1),
                Op::Delete(0, 1),
                Op::Query(0, 1),
            ])
            .unwrap();
        assert_eq!((res.inserted, res.deleted), (1, 1));
        assert_eq!(res.answers, vec![true, false]);
        let err = g.apply(&[Op::Insert(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            DynConError::VertexOutOfRange { vertex: 5, .. }
        ));
    }
}
