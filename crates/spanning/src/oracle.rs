//! The slow, obviously-correct dynamic connectivity oracle used as ground
//! truth by every test suite in the workspace.

use crate::unionfind::UnionFind;
use dyncon_primitives::FxHashSet;

/// Fully dynamic graph with recompute-on-demand connectivity. All
/// operations are sequential and straightforward — this type exists to be
/// *trusted*, not fast.
pub struct NaiveDynamicGraph {
    n: usize,
    edges: FxHashSet<(u32, u32)>,
    cache: Option<UnionFind>,
}

impl NaiveDynamicGraph {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: FxHashSet::default(),
            cache: None,
        }
    }

    fn norm(u: u32, v: u32) -> (u32, u32) {
        (u.min(v), u.max(v))
    }

    /// Insert one edge; returns false if it was already present or a loop.
    pub fn insert(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let fresh = self.edges.insert(Self::norm(u, v));
        if fresh {
            self.cache = None;
        }
        fresh
    }

    /// Delete one edge; returns false if absent.
    pub fn delete(&mut self, u: u32, v: u32) -> bool {
        let removed = self.edges.remove(&Self::norm(u, v));
        if removed {
            self.cache = None;
        }
        removed
    }

    /// Insert a batch (duplicates skipped).
    pub fn batch_insert(&mut self, batch: &[(u32, u32)]) {
        for &(u, v) in batch {
            self.insert(u, v);
        }
    }

    /// Delete a batch (absences skipped).
    pub fn batch_delete(&mut self, batch: &[(u32, u32)]) {
        for &(u, v) in batch {
            self.delete(u, v);
        }
    }

    /// Membership test.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edges.contains(&Self::norm(u, v))
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges, sorted (for driving other structures deterministically).
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self.edges.iter().copied().collect();
        v.sort_unstable();
        v
    }

    fn dsu(&mut self) -> &mut UnionFind {
        if self.cache.is_none() {
            let mut uf = UnionFind::new(self.n);
            for &(u, v) in &self.edges {
                uf.union(u, v);
            }
            self.cache = Some(uf);
        }
        self.cache.as_mut().unwrap()
    }

    /// Connectivity query.
    pub fn connected(&mut self, u: u32, v: u32) -> bool {
        self.dsu().same(u, v)
    }

    /// Batch connectivity queries.
    pub fn batch_connected(&mut self, pairs: &[(u32, u32)]) -> Vec<bool> {
        let dsu = self.dsu();
        pairs.iter().map(|&(u, v)| dsu.same(u, v)).collect()
    }

    /// Number of connected components (isolated vertices included).
    pub fn num_components(&mut self) -> usize {
        self.dsu().num_components()
    }

    /// Size of the component containing `v`.
    pub fn component_size(&mut self, v: u32) -> u32 {
        self.dsu().size_of(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_basics() {
        let mut g = NaiveDynamicGraph::new(5);
        assert!(g.insert(0, 1));
        assert!(!g.insert(1, 0), "normalized duplicate");
        assert!(!g.insert(2, 2), "self loop rejected");
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
        assert_eq!(g.num_components(), 4);
        assert!(g.delete(0, 1));
        assert!(!g.delete(0, 1));
        assert!(!g.connected(0, 1));
        assert_eq!(g.num_components(), 5);
    }

    #[test]
    fn component_sizes() {
        let mut g = NaiveDynamicGraph::new(6);
        g.batch_insert(&[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.component_size(2), 3);
        assert_eq!(g.component_size(3), 2);
        assert_eq!(g.component_size(5), 1);
    }

    #[test]
    fn edge_list_is_sorted_and_normalized() {
        let mut g = NaiveDynamicGraph::new(5);
        g.batch_insert(&[(3, 1), (0, 4), (2, 0)]);
        assert_eq!(g.edge_list(), vec![(0, 2), (0, 4), (1, 3)]);
    }
}
