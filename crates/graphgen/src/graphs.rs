//! Static graph generators. All return deduplicated, normalized
//! (`u < v`), self-loop-free edge lists.

use dyncon_primitives::{sort_dedup, SplitMix64};

fn norm(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

/// Erdős–Rényi `G(n, m)`: `m` distinct uniform edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= 2);
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m + m / 4);
    while {
        sort_dedup(&mut edges);
        edges.len() < m
    } {
        for _ in 0..(m - edges.len()) * 5 / 4 + 4 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            if u != v {
                edges.push(norm(u, v));
            }
        }
    }
    edges.truncate(m);
    edges
}

/// R-MAT power-law generator (Chakrabarti–Zhan–Faloutsos) with the classic
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` parameters: the skewed,
/// social-network-like workload motivating the paper's introduction.
/// `n` is rounded up to a power of two internally; edges are produced over
/// `0..n`.
pub fn rmat(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= 2);
    let bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m + m / 4);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < 80 {
        attempts += 1;
        let need = m - edges.len();
        for _ in 0..need * 5 / 4 + 4 {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..bits {
                u <<= 1;
                v <<= 1;
                let p = rng.next_f64();
                if p < 0.57 {
                    // quadrant a: (0,0)
                } else if p < 0.76 {
                    v |= 1; // b
                } else if p < 0.95 {
                    u |= 1; // c
                } else {
                    u |= 1;
                    v |= 1; // d
                }
            }
            if u != v && (u as usize) < n && (v as usize) < n {
                edges.push(norm(u, v));
            }
        }
        sort_dedup(&mut edges);
    }
    edges.truncate(m);
    edges
}

/// Path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Vec<(u32, u32)> {
    (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect()
}

/// Cycle over `0..n`.
pub fn cycle(n: usize) -> Vec<(u32, u32)> {
    assert!(n >= 3);
    let mut e = path(n);
    e.push((0, n as u32 - 1));
    e
}

/// Star centered at 0.
pub fn star(n: usize) -> Vec<(u32, u32)> {
    (1..n as u32).map(|v| (0, v)).collect()
}

/// 2-D grid `rows × cols` (4-neighbourhood), vertices row-major.
pub fn grid2d(rows: usize, cols: usize) -> Vec<(u32, u32)> {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    edges
}

/// Uniform random spanning tree over `0..n` (random attachment order:
/// every node links to a uniform predecessor in a random permutation).
pub fn random_tree(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = SplitMix64::new(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.next_below((i + 1) as u64) as usize;
        perm.swap(i, j);
    }
    (1..n)
        .map(|i| {
            let j = rng.next_below(i as u64) as usize;
            norm(perm[i], perm[j])
        })
        .collect()
}

/// Complete graph over `0..n`.
pub fn complete(n: usize) -> Vec<(u32, u32)> {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            edges.push((u, v));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_normalized(edges: &[(u32, u32)], n: usize) {
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in edges {
            assert!(u < v, "({u},{v}) not normalized");
            assert!((v as usize) < n, "vertex {v} out of range {n}");
            assert!(seen.insert((u, v)), "duplicate ({u},{v})");
        }
    }

    #[test]
    fn er_counts_and_dedup() {
        let e = erdos_renyi(100, 300, 1);
        assert_eq!(e.len(), 300);
        check_normalized(&e, 100);
        // Determinism.
        assert_eq!(e, erdos_renyi(100, 300, 1));
        assert_ne!(e, erdos_renyi(100, 300, 2));
    }

    #[test]
    fn er_caps_at_complete() {
        let e = erdos_renyi(5, 1000, 3);
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn rmat_is_skewed() {
        let n = 1 << 10;
        let e = rmat(n, 4000, 7);
        assert!(e.len() >= 3500, "rmat produced {}", e.len());
        check_normalized(&e, n);
        // Degree skew: the max degree should far exceed the average.
        let mut deg = vec![0u32; n];
        for &(u, v) in &e {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = 2.0 * e.len() as f64 / n as f64;
        assert!(max as f64 > 4.0 * avg, "max {max} avg {avg}");
    }

    #[test]
    fn structured_generators() {
        assert_eq!(path(4), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(star(3), vec![(0, 1), (0, 2)]);
        assert_eq!(cycle(3).len(), 3);
        assert_eq!(grid2d(2, 3).len(), 7);
        assert_eq!(complete(5).len(), 10);
    }

    #[test]
    fn random_tree_spans() {
        let n = 200;
        let e = random_tree(n, 11);
        assert_eq!(e.len(), n - 1);
        check_normalized(&e, n);
        // Must be a single connected acyclic component.
        let mut p: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x {
                p[x as usize] = p[p[x as usize] as usize];
                x = p[x as usize];
            }
            x
        }
        for &(u, v) in &e {
            let (a, b) = (find(&mut p, u), find(&mut p, v));
            assert_ne!(a, b, "cycle in random_tree");
            p[a as usize] = b;
        }
    }
}
