//! # dyncon-graphgen
//!
//! Deterministic graph and update-stream generators for the experiment
//! suite (EXPERIMENTS.md). All generators are seeded and reproducible.

pub mod graphs;
pub mod stream;

pub use graphs::{complete, cycle, erdos_renyi, grid2d, path, random_tree, rmat, star};
pub use stream::{
    crash_points, poisson_arrivals, zipf_client_schedules, Batch, UpdateStream, Zipf,
};
