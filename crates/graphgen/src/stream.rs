//! Batch update-stream builders: the workloads of the experiment suite.

use dyncon_primitives::SplitMix64;

/// One batch of operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Batch {
    /// Insert these edges.
    Insert(Vec<(u32, u32)>),
    /// Delete these edges.
    Delete(Vec<(u32, u32)>),
    /// Ask these connectivity queries.
    Query(Vec<(u32, u32)>),
}

/// A replayable sequence of batches.
#[derive(Clone, Debug, Default)]
pub struct UpdateStream {
    /// The batches, in order.
    pub batches: Vec<Batch>,
}

impl UpdateStream {
    /// Insert `edges` in batches of `batch_size`, then delete all of them
    /// in batches of `delta` (uniformly shuffled): the workload of
    /// experiment E4, where `delta` is exactly the paper's average
    /// deletion batch size Δ.
    pub fn insert_then_delete(
        edges: &[(u32, u32)],
        batch_size: usize,
        delta: usize,
        seed: u64,
    ) -> Self {
        let mut s = UpdateStream::default();
        for chunk in edges.chunks(batch_size.max(1)) {
            s.batches.push(Batch::Insert(chunk.to_vec()));
        }
        let mut order: Vec<(u32, u32)> = edges.to_vec();
        let mut rng = SplitMix64::new(seed);
        for i in (1..order.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            order.swap(i, j);
        }
        for chunk in order.chunks(delta.max(1)) {
            s.batches.push(Batch::Delete(chunk.to_vec()));
        }
        s
    }

    /// Sliding-window ingestion (the streaming scenario of §1): keep a
    /// window of `window` batches alive; each round inserts a fresh batch
    /// of `batch_size` edges from the generator, deletes the batch that
    /// fell out of the window, and issues `queries` random queries.
    pub fn sliding_window(
        n: usize,
        rounds: usize,
        batch_size: usize,
        window: usize,
        queries: usize,
        seed: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut s = UpdateStream::default();
        let mut live: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut present = std::collections::HashSet::new();
        for _ in 0..rounds {
            let mut batch = Vec::with_capacity(batch_size);
            while batch.len() < batch_size {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                if u == v {
                    continue;
                }
                let e = (u.min(v), u.max(v));
                if present.insert(e) {
                    batch.push(e);
                }
            }
            s.batches.push(Batch::Insert(batch.clone()));
            live.push(batch);
            if live.len() > window {
                let old = live.remove(0);
                for e in &old {
                    present.remove(e);
                }
                s.batches.push(Batch::Delete(old));
            }
            if queries > 0 {
                let qs: Vec<(u32, u32)> = (0..queries)
                    .map(|_| {
                        (
                            rng.next_below(n as u64) as u32,
                            rng.next_below(n as u64) as u32,
                        )
                    })
                    .collect();
                s.batches.push(Batch::Query(qs));
            }
        }
        s
    }

    /// Uniform random query pairs.
    pub fn random_queries(n: usize, k: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = SplitMix64::new(seed);
        (0..k)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect()
    }

    /// Total number of operations across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches
            .iter()
            .map(|b| match b {
                Batch::Insert(v) | Batch::Delete(v) | Batch::Query(v) => v.len(),
            })
            .sum()
    }

    /// Number of deletion batches and their average size (the paper's Δ).
    pub fn deletion_delta(&self) -> (usize, f64) {
        let (mut batches, mut total) = (0usize, 0usize);
        for b in &self.batches {
            if let Batch::Delete(v) = b {
                batches += 1;
                total += v.len();
            }
        }
        let delta = if batches == 0 {
            0.0
        } else {
            total as f64 / batches as f64
        };
        (batches, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::erdos_renyi;

    #[test]
    fn insert_then_delete_covers_everything() {
        let edges = erdos_renyi(50, 120, 1);
        let s = UpdateStream::insert_then_delete(&edges, 40, 16, 2);
        let mut inserted = 0;
        let mut deleted = Vec::new();
        for b in &s.batches {
            match b {
                Batch::Insert(v) => inserted += v.len(),
                Batch::Delete(v) => deleted.extend(v.iter().copied()),
                Batch::Query(_) => {}
            }
        }
        assert_eq!(inserted, 120);
        assert_eq!(deleted.len(), 120);
        let mut d = deleted.clone();
        d.sort_unstable();
        let mut e = edges.clone();
        e.sort_unstable();
        assert_eq!(d, e, "every inserted edge is deleted exactly once");
        let (batches, delta) = s.deletion_delta();
        assert_eq!(batches, 120usize.div_ceil(16));
        assert!((delta - 120.0 / batches as f64).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_deletes_old_batches() {
        let s = UpdateStream::sliding_window(100, 10, 8, 3, 4, 5);
        let mut live: std::collections::HashSet<(u32, u32)> = Default::default();
        for b in &s.batches {
            match b {
                Batch::Insert(v) => {
                    for &e in v {
                        assert!(live.insert(e), "inserted edge already live");
                    }
                }
                Batch::Delete(v) => {
                    for e in v {
                        assert!(live.remove(e), "deleted edge not live");
                    }
                }
                Batch::Query(v) => assert_eq!(v.len(), 4),
            }
        }
        // Window of 3 batches × 8 edges stays live at the end.
        assert_eq!(live.len(), 3 * 8);
    }

    #[test]
    fn deterministic_streams() {
        let a = UpdateStream::sliding_window(64, 6, 5, 2, 3, 9);
        let b = UpdateStream::sliding_window(64, 6, 5, 2, 3, 9);
        assert_eq!(a.batches, b.batches);
        assert!(a.total_ops() > 0);
    }
}
