//! Batch update-stream builders: the workloads of the experiment suite,
//! plus the skewed per-client traffic schedules of the serving layer.

use dyncon_api::Op;
use dyncon_primitives::SplitMix64;

/// One batch of operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Batch {
    /// Insert these edges.
    Insert(Vec<(u32, u32)>),
    /// Delete these edges.
    Delete(Vec<(u32, u32)>),
    /// Ask these connectivity queries.
    Query(Vec<(u32, u32)>),
}

/// A replayable sequence of batches.
#[derive(Clone, Debug, Default)]
pub struct UpdateStream {
    /// The batches, in order.
    pub batches: Vec<Batch>,
}

impl UpdateStream {
    /// Insert `edges` in batches of `batch_size`, then delete all of them
    /// in batches of `delta` (uniformly shuffled): the workload of
    /// experiment E4, where `delta` is exactly the paper's average
    /// deletion batch size Δ.
    pub fn insert_then_delete(
        edges: &[(u32, u32)],
        batch_size: usize,
        delta: usize,
        seed: u64,
    ) -> Self {
        let mut s = UpdateStream::default();
        for chunk in edges.chunks(batch_size.max(1)) {
            s.batches.push(Batch::Insert(chunk.to_vec()));
        }
        let mut order: Vec<(u32, u32)> = edges.to_vec();
        let mut rng = SplitMix64::new(seed);
        for i in (1..order.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            order.swap(i, j);
        }
        for chunk in order.chunks(delta.max(1)) {
            s.batches.push(Batch::Delete(chunk.to_vec()));
        }
        s
    }

    /// Sliding-window ingestion (the streaming scenario of §1): keep a
    /// window of `window` batches alive; each round inserts a fresh batch
    /// of `batch_size` edges from the generator, deletes the batch that
    /// fell out of the window, and issues `queries` random queries.
    pub fn sliding_window(
        n: usize,
        rounds: usize,
        batch_size: usize,
        window: usize,
        queries: usize,
        seed: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut s = UpdateStream::default();
        let mut live: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut present = std::collections::HashSet::new();
        for _ in 0..rounds {
            let mut batch = Vec::with_capacity(batch_size);
            while batch.len() < batch_size {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                if u == v {
                    continue;
                }
                let e = (u.min(v), u.max(v));
                if present.insert(e) {
                    batch.push(e);
                }
            }
            s.batches.push(Batch::Insert(batch.clone()));
            live.push(batch);
            if live.len() > window {
                let old = live.remove(0);
                for e in &old {
                    present.remove(e);
                }
                s.batches.push(Batch::Delete(old));
            }
            if queries > 0 {
                let qs: Vec<(u32, u32)> = (0..queries)
                    .map(|_| {
                        (
                            rng.next_below(n as u64) as u32,
                            rng.next_below(n as u64) as u32,
                        )
                    })
                    .collect();
                s.batches.push(Batch::Query(qs));
            }
        }
        s
    }

    /// Uniform random query pairs.
    pub fn random_queries(n: usize, k: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = SplitMix64::new(seed);
        (0..k)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect()
    }

    /// Total number of operations across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches
            .iter()
            .map(|b| match b {
                Batch::Insert(v) | Batch::Delete(v) | Batch::Query(v) => v.len(),
            })
            .sum()
    }

    /// Number of deletion batches and their average size (the paper's Δ).
    pub fn deletion_delta(&self) -> (usize, f64) {
        let (mut batches, mut total) = (0usize, 0usize);
        for b in &self.batches {
            if let Batch::Delete(v) = b {
                batches += 1;
                total += v.len();
            }
        }
        let delta = if batches == 0 {
            0.0
        } else {
            total as f64 / batches as f64
        };
        (batches, delta)
    }
}

/// Zipf-distributed vertex sampler over `0..n`: vertex `i` is drawn with
/// probability proportional to `1/(i+1)^s`. With `s > 0` low-numbered
/// vertices are "hot", concentrating traffic on a few contended hubs —
/// the access pattern real serving workloads exhibit and the one the
/// group-commit frontend's benches need (De Man et al. use skewed
/// workloads for exactly this reason). `s = 0` degenerates to uniform.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `0..n` (`n >= 1`) with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs a non-empty vertex universe");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Draw one vertex id.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> u32 {
        let total = *self.cdf.last().expect("non-empty cdf");
        let x = rng.next_f64() * total;
        // First index whose cumulative weight reaches x.
        (self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)) as u32
    }
}

/// Seeded per-client request schedules of mixed operations with
/// Zipf-skewed endpoints: the traffic shape the group-commit serving
/// frontend coalesces into batches.
///
/// Returns `schedules[client][request]` — each request is a small ordered
/// `Vec<Op>` the client submits as one unit. Each op is a connectivity
/// query with probability `read_ratio`, otherwise an insert or delete
/// (even odds; deleting an absent edge is a no-op by the [`Op`] contract,
/// which yields realistic churn without global coordination between
/// clients). Endpoints are drawn from [`Zipf`] with exponent `skew`, so
/// hot vertices collide across clients. Each client's schedule depends
/// only on `(seed, client index)` — independent of thread scheduling —
/// which is what the serving layer's determinism contract replays.
#[allow(clippy::too_many_arguments)]
pub fn zipf_client_schedules(
    n: usize,
    clients: usize,
    requests_per_client: usize,
    ops_per_request: usize,
    read_ratio: f64,
    skew: f64,
    seed: u64,
) -> Vec<Vec<Vec<Op>>> {
    assert!(n >= 2, "need at least two vertices for edges");
    assert!(
        (0.0..=1.0).contains(&read_ratio),
        "read_ratio must be in [0, 1]"
    );
    let zipf = Zipf::new(n, skew);
    let root = SplitMix64::new(seed);
    (0..clients)
        .map(|c| {
            // Stateless per-client fork: client c's stream never depends
            // on how many draws other clients made.
            let mut rng = SplitMix64::new(root.at(c as u64));
            (0..requests_per_client)
                .map(|_| {
                    (0..ops_per_request)
                        .map(|_| {
                            let u = zipf.sample(&mut rng);
                            let mut v = zipf.sample(&mut rng);
                            if u == v {
                                v = (v + 1) % n as u32;
                            }
                            if rng.next_f64() < read_ratio {
                                Op::Query(u, v)
                            } else if rng.next_u64() & 1 == 0 {
                                Op::Insert(u, v)
                            } else {
                                Op::Delete(u, v)
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Seeded open-loop arrival schedule: `count` cumulative nanosecond
/// offsets with exponentially distributed inter-arrival gaps of mean
/// `mean_gap_ns` — a Poisson process, the standard open-loop load model.
///
/// An **open-loop** driver fires request `i` at `start + offsets[i]`
/// whether or not earlier requests have finished, and measures each
/// response against its *intended* arrival time. Unlike a closed loop
/// (next request only after the previous response), it cannot
/// accidentally throttle itself when the server slows down, so the
/// latency tail it measures includes the queueing delay real overload
/// produces — the coordinated-omission pitfall the E13 load experiment
/// is built to avoid.
///
/// Deterministic in `(count, mean_gap_ns, seed)`; offsets are
/// non-decreasing and start at the first gap (not zero).
pub fn poisson_arrivals(count: usize, mean_gap_ns: u64, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut at = 0u64;
    (0..count)
        .map(|_| {
            // Inverse-CDF exponential draw; 1 - u in (0, 1] avoids ln(0).
            let u = rng.next_f64();
            let gap = (-(1.0 - u).ln() * mean_gap_ns as f64).round();
            at = at.saturating_add(gap as u64);
            at
        })
        .collect()
}

/// Seeded crash offsets for recovery tests: `n` distinct round indices
/// in `1..rounds`, sorted ascending. "Crash at offset `k`" means the
/// process dies after sealing (and logging) rounds `0..k` — so there is
/// always at least one committed round behind the crash and at least one
/// round of remaining traffic to replay on the recovered structure.
/// Deterministic in `(rounds, n, seed)`, like every generator here; if
/// fewer than `n` interior offsets exist, all of them are returned.
pub fn crash_points(rounds: usize, n: usize, seed: u64) -> Vec<usize> {
    if rounds < 2 {
        return Vec::new();
    }
    // Partial Fisher–Yates over the interior offsets 1..rounds: draw the
    // first n positions of a seeded shuffle, then sort.
    let mut pool: Vec<usize> = (1..rounds).collect();
    let take = n.min(pool.len());
    let mut rng = SplitMix64::new(seed);
    for i in 0..take {
        let j = i + rng.next_below((pool.len() - i) as u64) as usize;
        pool.swap(i, j);
    }
    let mut picks = pool[..take].to_vec();
    picks.sort_unstable();
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::erdos_renyi;

    #[test]
    fn insert_then_delete_covers_everything() {
        let edges = erdos_renyi(50, 120, 1);
        let s = UpdateStream::insert_then_delete(&edges, 40, 16, 2);
        let mut inserted = 0;
        let mut deleted = Vec::new();
        for b in &s.batches {
            match b {
                Batch::Insert(v) => inserted += v.len(),
                Batch::Delete(v) => deleted.extend(v.iter().copied()),
                Batch::Query(_) => {}
            }
        }
        assert_eq!(inserted, 120);
        assert_eq!(deleted.len(), 120);
        let mut d = deleted.clone();
        d.sort_unstable();
        let mut e = edges.clone();
        e.sort_unstable();
        assert_eq!(d, e, "every inserted edge is deleted exactly once");
        let (batches, delta) = s.deletion_delta();
        assert_eq!(batches, 120usize.div_ceil(16));
        assert!((delta - 120.0 / batches as f64).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_deletes_old_batches() {
        let s = UpdateStream::sliding_window(100, 10, 8, 3, 4, 5);
        let mut live: std::collections::HashSet<(u32, u32)> = Default::default();
        for b in &s.batches {
            match b {
                Batch::Insert(v) => {
                    for &e in v {
                        assert!(live.insert(e), "inserted edge already live");
                    }
                }
                Batch::Delete(v) => {
                    for e in v {
                        assert!(live.remove(e), "deleted edge not live");
                    }
                }
                Batch::Query(v) => assert_eq!(v.len(), 4),
            }
        }
        // Window of 3 batches × 8 edges stays live at the end.
        assert_eq!(live.len(), 3 * 8);
    }

    #[test]
    fn zipf_skews_towards_hot_vertices() {
        let zipf = Zipf::new(1024, 1.2);
        let mut rng = SplitMix64::new(7);
        let mut counts = vec![0usize; 1024];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        // Vertex 0 is the hottest by a wide margin; the cold tail is rare.
        assert!(counts[0] > counts[10] && counts[10] > 0);
        let head: usize = counts[..16].iter().sum();
        let tail: usize = counts[512..].iter().sum();
        assert!(head > 5 * tail, "head {head} vs tail {tail}");
        // s = 0 degenerates to uniform: no vertex dominates.
        let uni = Zipf::new(64, 0.0);
        let mut c0 = 0usize;
        for _ in 0..20_000 {
            if uni.sample(&mut rng) == 0 {
                c0 += 1;
            }
        }
        assert!(c0 < 1_000, "uniform head too hot: {c0}");
    }

    #[test]
    fn zipf_schedules_are_deterministic_and_shaped() {
        let a = zipf_client_schedules(256, 4, 8, 32, 0.5, 1.1, 99);
        let b = zipf_client_schedules(256, 4, 8, 32, 0.5, 1.1, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a
            .iter()
            .all(|c| c.len() == 8 && c.iter().all(|r| r.len() == 32)));
        // Clients have distinct streams.
        assert_ne!(a[0], a[1]);
        // The read ratio holds approximately, and all kinds appear.
        let ops: Vec<Op> = a.iter().flatten().flatten().copied().collect();
        let reads = ops.iter().filter(|o| matches!(o, Op::Query(..))).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((0.4..0.6).contains(&frac), "read fraction {frac}");
        assert!(ops.iter().any(|o| matches!(o, Op::Insert(..))));
        assert!(ops.iter().any(|o| matches!(o, Op::Delete(..))));
        // No self-loops ever.
        assert!(ops.iter().all(|o| {
            let (u, v) = o.endpoints();
            u != v
        }));
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_exponential() {
        let a = poisson_arrivals(10_000, 1_000, 42);
        assert_eq!(a, poisson_arrivals(10_000, 1_000, 42));
        assert_eq!(a.len(), 10_000);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // The mean inter-arrival gap converges on mean_gap_ns (±10%).
        let mean = *a.last().unwrap() as f64 / a.len() as f64;
        assert!((900.0..1100.0).contains(&mean), "mean gap {mean}");
        // Exponential gaps: plenty below the mean, a real tail above 3x.
        let gaps: Vec<u64> = std::iter::once(a[0])
            .chain(a.windows(2).map(|w| w[1] - w[0]))
            .collect();
        let below = gaps.iter().filter(|&&g| g < 1_000).count();
        let tail = gaps.iter().filter(|&&g| g > 3_000).count();
        assert!(below > 5_500, "memoryless head: {below}");
        assert!(tail > 200, "exponential tail: {tail}");
        // Different seeds, different schedules; empty count is empty.
        assert_ne!(a, poisson_arrivals(10_000, 1_000, 43));
        assert!(poisson_arrivals(0, 1_000, 1).is_empty());
    }

    #[test]
    fn crash_points_are_deterministic_interior_and_distinct() {
        let a = crash_points(20, 5, 9);
        assert_eq!(a, crash_points(20, 5, 9));
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct: {a:?}");
        assert!(
            a.iter().all(|&k| (1..20).contains(&k)),
            "interior offsets only: {a:?}"
        );
        // Different seeds explore different offsets.
        assert_ne!(a, crash_points(20, 5, 10));
        // Asking for more crashes than interior offsets yields them all.
        assert_eq!(crash_points(4, 99, 3), vec![1, 2, 3]);
        // Degenerate schedules have nowhere to crash.
        assert!(crash_points(1, 3, 0).is_empty());
        assert!(crash_points(0, 3, 0).is_empty());
    }

    #[test]
    fn deterministic_streams() {
        let a = UpdateStream::sliding_window(64, 6, 5, 2, 3, 9);
        let b = UpdateStream::sliding_window(64, 6, 5, 2, 3, 9);
        assert_eq!(a.batches, b.batches);
        assert!(a.total_ops() > 0);
    }
}
