//! The durability layer's metric bundle.
//!
//! A [`crate::DurableServer`] records WAL, snapshot and recovery
//! activity here, in the **same registry** as the serving metrics it
//! wraps, so one snapshot shows the whole stack. As everywhere in the
//! workspace: metrics are observational, never inputs — fsync policy,
//! round boundaries and replay are unaffected by recording.

use dyncon_metrics::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Live handles to every durability metric. One instance per
/// [`crate::DurableServer`]; shared with the writer thread's round hook.
pub struct DurableMetrics {
    /// `dyncon_wal_append_bytes_total` — bytes the WAL grew by across
    /// all appended rounds (frame headers included).
    pub wal_append_bytes: Arc<Counter>,
    /// `dyncon_wal_append_ns` — wall time of each round's append,
    /// including the policy fsync when one is due. This is the
    /// durability tax each commit round pays before apply.
    pub wal_append_ns: Arc<Histogram>,
    /// `dyncon_wal_fsyncs_total` — fsyncs issued by the WAL writer
    /// (policy, explicit, abort and reset syncs alike). Under
    /// [`crate::FsyncPolicy::EveryNRounds`] this grows ~1/n as fast as
    /// rounds logged.
    pub wal_fsyncs: Arc<Counter>,
    /// `dyncon_wal_rounds_logged_total` — rounds successfully appended.
    pub wal_rounds_logged: Arc<Counter>,
    /// `dyncon_wal_rounds_aborted_total` — logged rounds retracted
    /// because their apply failed.
    pub wal_rounds_aborted: Arc<Counter>,
    /// `dyncon_snapshot_write_ns` — wall time of each atomic snapshot
    /// write (compaction at join).
    pub snapshot_write_ns: Arc<Histogram>,
    /// `dyncon_recovery_replayed_rounds_total` — WAL rounds replayed at
    /// open, on top of the snapshot.
    pub recovery_replayed_rounds: Arc<Counter>,
    /// `dyncon_recovery_replayed_ops_total` — operations inside those
    /// replayed rounds (replay progress in op granularity).
    pub recovery_replayed_ops: Arc<Counter>,
}

impl DurableMetrics {
    /// Register (or re-attach to) the durability metrics in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            wal_append_bytes: registry.counter(
                "dyncon_wal_append_bytes_total",
                "bytes",
                "bytes appended to the write-ahead log (frame headers included)",
            ),
            wal_append_ns: registry.histogram(
                "dyncon_wal_append_ns",
                "ns",
                "per-round WAL append wall time, policy fsync included",
            ),
            wal_fsyncs: registry.counter(
                "dyncon_wal_fsyncs_total",
                "fsyncs",
                "fsyncs issued by the WAL writer",
            ),
            wal_rounds_logged: registry.counter(
                "dyncon_wal_rounds_logged_total",
                "rounds",
                "rounds appended to the write-ahead log",
            ),
            wal_rounds_aborted: registry.counter(
                "dyncon_wal_rounds_aborted_total",
                "rounds",
                "logged rounds retracted because their apply failed",
            ),
            snapshot_write_ns: registry.histogram(
                "dyncon_snapshot_write_ns",
                "ns",
                "atomic snapshot write wall time",
            ),
            recovery_replayed_rounds: registry.counter(
                "dyncon_recovery_replayed_rounds_total",
                "rounds",
                "WAL rounds replayed at open on top of the snapshot",
            ),
            recovery_replayed_ops: registry.counter(
                "dyncon_recovery_replayed_ops_total",
                "ops",
                "operations replayed at open",
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_every_durability_metric() {
        let registry = Registry::new();
        DurableMetrics::register(&registry);
        let snap = registry.snapshot();
        for name in [
            "dyncon_wal_append_bytes_total",
            "dyncon_wal_append_ns",
            "dyncon_wal_fsyncs_total",
            "dyncon_wal_rounds_logged_total",
            "dyncon_wal_rounds_aborted_total",
            "dyncon_snapshot_write_ns",
            "dyncon_recovery_replayed_rounds_total",
            "dyncon_recovery_replayed_ops_total",
        ] {
            assert!(snap.get(name).is_some(), "missing {name}");
        }
    }
}
