//! Atomic, checksummed snapshots of a connectivity backend.
//!
//! A snapshot is the canonical export surface of any backend — the
//! vertex count plus the normalized, sorted edge list
//! ([`dyncon_api::ExportEdges`]) — together with `next_round`, the WAL
//! round id the snapshot is current as of. Rebuilding any
//! [`dyncon_api::BuildFrom`] backend from it and replaying WAL records
//! `>= next_round` reproduces the pre-crash graph.
//!
//! ## On-disk format
//!
//! ```text
//! snapshot.bin := magic "DCSNAP01" (8 bytes)
//!                 num_vertices u64 LE
//!                 next_round   u64 LE
//!                 num_edges    u64 LE
//!                 (u u32 LE, v u32 LE) * num_edges
//!                 checksum     u64 LE   -- over everything after magic
//! ```
//!
//! ## Atomicity
//!
//! [`Snapshot::write_atomic`] writes to `snapshot.bin.tmp`, fsyncs,
//! renames over `snapshot.bin`, then fsyncs the directory: readers see
//! either the old snapshot or the new one, never a torn in-between. A
//! snapshot is therefore never tail-tolerant — any validation failure in
//! one is [`DynConError::Corrupt`].

use crate::wal::storage_err;
use dyncon_api::{DynConError, ExportEdges};
use dyncon_primitives::hash64;
use std::io::Write;
use std::path::Path;

/// File name of the snapshot inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAP_MAGIC: [u8; 8] = *b"DCSNAP01";

/// A complete, backend-independent image of the graph as of a WAL round
/// boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Size of the vertex universe.
    pub num_vertices: usize,
    /// First WAL round id NOT folded into this snapshot: recovery replays
    /// records `>= next_round` on top.
    pub next_round: u64,
    /// The edge set, normalized (`u < v`) and sorted — canonical bytes.
    pub edges: Vec<(u32, u32)>,
}

/// Chained SplitMix64 checksum over the snapshot body.
fn body_checksum(body: &[u8]) -> u64 {
    let mut acc = hash64(u64::from_le_bytes(SNAP_MAGIC));
    for chunk in body.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = hash64(acc ^ u64::from_le_bytes(word));
    }
    acc
}

impl Snapshot {
    /// Capture a backend through its canonical export surface.
    pub fn capture<B: ExportEdges>(backend: &B, next_round: u64) -> Self {
        Self {
            num_vertices: backend.num_vertices(),
            next_round,
            edges: backend.export_edges(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(24 + self.edges.len() * 8 + SNAP_MAGIC.len() + 8);
        body.extend_from_slice(&(self.num_vertices as u64).to_le_bytes());
        body.extend_from_slice(&self.next_round.to_le_bytes());
        body.extend_from_slice(&(self.edges.len() as u64).to_le_bytes());
        for &(u, v) in &self.edges {
            body.extend_from_slice(&u.to_le_bytes());
            body.extend_from_slice(&v.to_le_bytes());
        }
        let checksum = body_checksum(&body);
        let mut bytes = Vec::with_capacity(SNAP_MAGIC.len() + body.len() + 8);
        bytes.extend_from_slice(&SNAP_MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Write the snapshot into `dir` with write-to-temp + fsync + rename
    /// atomicity.
    pub fn write_atomic(&self, dir: &Path) -> Result<(), DynConError> {
        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let dst = dir.join(SNAPSHOT_FILE);
        let bytes = self.encode();
        let mut file = std::fs::File::create(&tmp).map_err(|e| storage_err(&tmp, e))?;
        file.write_all(&bytes).map_err(|e| storage_err(&tmp, e))?;
        file.sync_all().map_err(|e| storage_err(&tmp, e))?;
        drop(file);
        std::fs::rename(&tmp, &dst).map_err(|e| storage_err(&dst, e))?;
        // Make the rename itself durable. Directory fsync is best-effort:
        // not every filesystem supports opening a directory for sync.
        let _ = std::fs::File::open(dir).and_then(|d| d.sync_all());
        Ok(())
    }

    /// Load the snapshot from `dir`. `Ok(None)` if none exists; any
    /// validation failure is [`DynConError::Corrupt`] (snapshots are
    /// written atomically, so there is no torn tail to tolerate).
    pub fn load(dir: &Path) -> Result<Option<Self>, DynConError> {
        let path = dir.join(SNAPSHOT_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(storage_err(&path, e)),
        };
        let corrupt = |offset: u64, detail: &str| DynConError::Corrupt {
            path: path.display().to_string(),
            offset,
            detail: detail.to_string(),
        };
        if bytes.len() < SNAP_MAGIC.len() + 24 + 8 {
            return Err(corrupt(bytes.len() as u64, "snapshot too short"));
        }
        if bytes[..8] != SNAP_MAGIC {
            return Err(corrupt(0, "bad snapshot magic"));
        }
        let body = &bytes[8..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if body_checksum(body) != stored {
            return Err(corrupt(8, "snapshot checksum mismatch"));
        }
        let num_vertices = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes")) as usize;
        let next_round = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
        let num_edges = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")) as usize;
        if body.len() != 24 + num_edges * 8 {
            return Err(corrupt(16, "edge count disagrees with body length"));
        }
        let edges = body[24..]
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                    u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                )
            })
            .collect();
        Ok(Some(Self {
            num_vertices,
            next_round,
            edges,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = crate::scratch_dir(tag);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            num_vertices: 100,
            next_round: 42,
            edges: vec![(0, 1), (0, 99), (5, 7)],
        }
    }

    #[test]
    fn write_load_round_trips() {
        let dir = scratch("snap-roundtrip");
        assert_eq!(Snapshot::load(&dir).unwrap(), None);
        let s = sample();
        s.write_atomic(&dir).unwrap();
        assert_eq!(Snapshot::load(&dir).unwrap(), Some(s.clone()));
        // Overwrite atomically with a newer snapshot.
        let s2 = Snapshot {
            next_round: 50,
            edges: vec![(1, 2)],
            ..s
        };
        s2.write_atomic(&dir).unwrap();
        assert_eq!(Snapshot::load(&dir).unwrap(), Some(s2));
        // The temp file never survives a successful write.
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
    }

    #[test]
    fn empty_graph_snapshot() {
        let dir = scratch("snap-empty");
        let s = Snapshot {
            num_vertices: 8,
            next_round: 0,
            edges: Vec::new(),
        };
        s.write_atomic(&dir).unwrap();
        assert_eq!(Snapshot::load(&dir).unwrap(), Some(s));
    }

    #[test]
    fn encoding_is_canonical() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn corruption_is_typed_never_a_panic() {
        let dir = scratch("snap-corrupt");
        sample().write_atomic(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let good = std::fs::read(&path).unwrap();

        // Bit flip in the body.
        let mut bad = good.clone();
        bad[20] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        match Snapshot::load(&dir) {
            Err(DynConError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncation: snapshots are atomic, so a short file is corrupt,
        // not a tolerable tail.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            Snapshot::load(&dir),
            Err(DynConError::Corrupt { .. })
        ));

        // Wrong magic.
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        match Snapshot::load(&dir) {
            Err(DynConError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset, 0);
                assert!(detail.contains("magic"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
