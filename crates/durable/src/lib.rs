//! # dyncon-durable
//!
//! Durability for the serving layer: a **write-ahead log**, **atomic
//! snapshots**, and **deterministic crash recovery** for any
//! [`dyncon_api::BatchDynamic`] backend. The paper's structures are
//! in-memory; this crate is what lets a `dyncon-server` process die and
//! come back without losing a committed round — the etcd-style
//! group-commit-WAL + periodic-snapshot + deterministic-replay pattern.
//!
//! ## The pieces
//!
//! * [`WalWriter`] / [`read_wal`] — a checksummed, length-framed binary
//!   log of sealed rounds (the compact [`dyncon_api::encode_ops`]
//!   encoding), with [`FsyncPolicy`] knobs (`every_round`,
//!   `every_n_rounds`, `never`) and torn-tail tolerance on recovery:
//!   a truncated or checksum-failing **final** record is dropped
//!   cleanly; corruption **mid-log** is [`DynConError::Corrupt`].
//! * [`Snapshot`] — the canonical export surface
//!   ([`dyncon_api::ExportEdges`]: normalized sorted edge list + vertex
//!   count) plus the next round id, written with write-to-temp + fsync +
//!   rename atomicity. [`compact`] snapshots and then truncates the WAL.
//! * [`recover`] — rebuild any `BatchDynamic + BuildFrom` backend: load
//!   the snapshot, replay the WAL tail **one `apply` per logged round**.
//!   Because replay preserves the exact batch boundaries the writer
//!   committed, the workspace determinism contract upgrades recovery to
//!   byte-equivalence: a backend recovered from an uncompacted log is
//!   indistinguishable — results *and* internal labelling — from one
//!   that never crashed (`tests/crash_recovery.rs`).
//! * [`DurableServer`] — a [`dyncon_server::ConnServer`] wired to the
//!   log through [`dyncon_server::ServerConfig::round_hook`]: each
//!   sealed round is appended and fsynced *before* it is applied, so
//!   group commit and group fsync coincide (one fsync per round, not per
//!   request) and a resolved ticket implies durability.
//! * [`DurableMetrics`] — WAL append bytes/latency, fsync counts, abort
//!   and recovery-replay counters, snapshot timings, recorded into the
//!   same `dyncon-metrics` registry as the serving metrics
//!   ([`dyncon_server::ServerConfig::metrics`]); observational only,
//!   never an input to fsync policy or replay.
//!
//! ## Crash-consistency model
//!
//! | event | guarantee |
//! |---|---|
//! | ticket resolved, `every_round` fsync | round is on stable storage and will be recovered |
//! | ticket resolved, `every_n_rounds(n)` | round survives unless the crash eats the last `< n` unsynced rounds |
//! | crash mid-append | torn tail dropped at recovery; no client saw the round commit |
//! | crash between snapshot rename and WAL truncate (in [`compact`]) | recovery skips the already-folded rounds |
//! | bit rot / manual edit mid-log | typed [`DynConError::Corrupt`], never a panic, never silent data invention |

mod metrics;
mod recover;
mod server;
mod snapshot;
mod wal;

pub use metrics::DurableMetrics;
pub use recover::{compact, recover, recover_with, RoundMeta};
pub use server::{DurableConfig, DurableReport, DurableServer};
pub use snapshot::{Snapshot, SNAPSHOT_FILE};
pub use wal::{read_wal, FsyncPolicy, WalReadout, WalRecord, WalWriter, WAL_FILE};

// Re-exported so callers can match durable failures without a direct
// dyncon-api dependency.
pub use dyncon_api::DynConError;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory under the system temp dir (not created).
/// Test/bench helper — durable state needs real files, and the workspace
/// has no tempdir dependency. Callers may delete it; leaked ones land in
/// the OS temp cleanup.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dyncon-durable-{}-{}-{}",
        std::process::id(),
        tag,
        unique
    ))
}
