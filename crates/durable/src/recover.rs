//! Crash recovery and log compaction.
//!
//! Recovery is deterministic replay: load the latest valid snapshot,
//! rebuild the backend from its canonical edge list, then re-`apply` the
//! WAL records the snapshot does not cover — **one `apply` per logged
//! round**, so the rebuilt structure sees exactly the batch boundaries
//! the original writer committed. Under the workspace determinism
//! contract that makes recovery testable to the strongest standard: a
//! backend recovered from a log with no intervening snapshot is
//! byte-identical (results *and* internal labelling) to one that never
//! crashed.

use crate::snapshot::Snapshot;
use crate::wal::{read_wal, WalWriter};
use dyncon_api::{BatchDynamic, BuildFrom, Builder, DynConError};
use std::path::Path;

/// What [`recover`] found in the durable directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundMeta {
    /// Round id the next sealed round will receive (continue logging
    /// here).
    pub next_round: u64,
    /// Rounds folded into the snapshot the recovery started from
    /// (`snapshot.next_round`).
    pub snapshot_rounds: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_rounds: u64,
    /// Operations inside the replayed records (replay progress at op
    /// granularity — what `dyncon_recovery_replayed_ops_total` reports).
    pub replayed_ops: u64,
    /// Whether a torn/corrupt WAL tail was dropped during the scan (its
    /// round was never acknowledged under the `every_round` fsync
    /// policy; under laxer policies it falls inside the documented loss
    /// window).
    pub dropped_tail: bool,
}

/// Rebuild a backend from the durable state in `dir` using the default
/// [`Builder`] configuration. See [`recover_with`] for custom knobs.
pub fn recover<B: BatchDynamic + BuildFrom>(dir: &Path) -> Result<(B, RoundMeta), DynConError> {
    recover_with(dir, |b| b)
}

/// Rebuild a backend from the durable state in `dir`, passing the
/// [`Builder`] through `configure` before construction (deletion
/// algorithm, stats, …). The vertex count always comes from the
/// snapshot; changing it in `configure` is ignored.
///
/// Replay semantics: WAL records with `round < snapshot.next_round` are
/// skipped (compaction crashed between snapshot rename and log truncate
/// — the snapshot already contains them); records from
/// `snapshot.next_round` on are applied in order, one batch per round. A
/// gap between the snapshot and the first replayable record, or within
/// the records, is [`DynConError::Corrupt`].
pub fn recover_with<B: BatchDynamic + BuildFrom>(
    dir: &Path,
    configure: impl FnOnce(Builder) -> Builder,
) -> Result<(B, RoundMeta), DynConError> {
    let snapshot = Snapshot::load(dir)?.ok_or_else(|| DynConError::Storage {
        path: dir.display().to_string(),
        message: "no snapshot to recover from (not a durable directory?)".to_string(),
    })?;
    let readout = read_wal(dir)?.unwrap_or_default();

    let mut builder = configure(Builder::new(snapshot.num_vertices));
    builder.num_vertices = snapshot.num_vertices;
    let mut backend = B::build_from(&builder)?;
    if !snapshot.edges.is_empty() {
        backend.batch_insert(&snapshot.edges)?;
    }

    let mut next_round = snapshot.next_round;
    let mut replayed = 0u64;
    let mut replayed_ops = 0u64;
    for record in &readout.records {
        if record.round < snapshot.next_round {
            // Folded into the snapshot already (compaction crashed after
            // the snapshot rename but before the log truncate).
            continue;
        }
        if record.round != next_round {
            return Err(DynConError::Corrupt {
                path: dir.join(crate::wal::WAL_FILE).display().to_string(),
                offset: 0,
                detail: format!(
                    "round gap: snapshot covers up to {}, log continues at {}",
                    next_round, record.round
                ),
            });
        }
        backend.apply(&record.ops)?;
        next_round += 1;
        replayed += 1;
        replayed_ops += record.ops.len() as u64;
    }

    Ok((
        backend,
        RoundMeta {
            next_round,
            snapshot_rounds: snapshot.next_round,
            replayed_rounds: replayed,
            replayed_ops,
            dropped_tail: readout.dropped_tail,
        },
    ))
}

/// Compact the durable state in `dir`: capture `backend` (which must
/// have every round `< next_round` applied) as a snapshot, write it
/// atomically, then truncate the WAL. After compaction, recovery cost is
/// proportional to the graph, not the history.
///
/// Crash-safe at every point: before the snapshot rename the old
/// snapshot + full log still recover; between rename and truncate the
/// new snapshot simply skips the (now-redundant) logged rounds.
pub fn compact<B: dyncon_api::ExportEdges>(
    dir: &Path,
    backend: &B,
    next_round: u64,
) -> Result<(), DynConError> {
    Snapshot::capture(backend, next_round).write_atomic(dir)?;
    // The snapshot is durable; the log's records are redundant now.
    let mut wal = WalWriter::open(dir, crate::wal::FsyncPolicy::EveryRound, next_round)?;
    wal.reset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::FsyncPolicy;
    use dyncon_api::{Connectivity, ExportEdges, Op};
    use dyncon_core::BatchDynamicConnectivity;
    use dyncon_spanning::NaiveDynamicGraph;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = crate::scratch_dir(tag);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn init_dir(dir: &std::path::Path, n: usize) {
        Snapshot {
            num_vertices: n,
            next_round: 0,
            edges: Vec::new(),
        }
        .write_atomic(dir)
        .unwrap();
    }

    fn rounds() -> Vec<Vec<Op>> {
        vec![
            vec![Op::Insert(0, 1), Op::Insert(1, 2), Op::Query(0, 2)],
            vec![Op::Delete(0, 1), Op::Query(0, 2), Op::Insert(3, 4)],
            vec![Op::Insert(0, 1), Op::Insert(4, 5), Op::Query(3, 5)],
        ]
    }

    #[test]
    fn recover_replays_the_full_log() {
        let dir = scratch("rec-replay");
        init_dir(&dir, 8);
        let mut wal = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        let mut reference = BatchDynamicConnectivity::new(8);
        for ops in rounds() {
            wal.append_round(&ops).unwrap();
            reference.apply(&ops).unwrap();
        }
        drop(wal);
        let (recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
        assert_eq!(
            meta,
            RoundMeta {
                next_round: 3,
                snapshot_rounds: 0,
                replayed_rounds: 3,
                replayed_ops: 9,
                dropped_tail: false,
            }
        );
        // Pure-log replay rebuilds the exact structure: even the opaque
        // internal labels agree (the determinism contract).
        assert_eq!(recovered.component_labels(), reference.component_labels());
        assert_eq!(recovered.export_edges(), reference.export_edges());
    }

    #[test]
    fn recover_skips_rounds_already_in_the_snapshot() {
        let dir = scratch("rec-skip");
        init_dir(&dir, 8);
        let mut wal = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        let mut reference = BatchDynamicConnectivity::new(8);
        for ops in rounds() {
            wal.append_round(&ops).unwrap();
            reference.apply(&ops).unwrap();
        }
        drop(wal);
        // Simulate a compaction that crashed between the snapshot rename
        // and the WAL truncate: snapshot covers rounds 0..2, log holds
        // 0..3.
        let mut upto2 = BatchDynamicConnectivity::new(8);
        for ops in &rounds()[..2] {
            upto2.apply(ops).unwrap();
        }
        Snapshot::capture(&upto2, 2).write_atomic(&dir).unwrap();
        let (recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
        assert_eq!((meta.snapshot_rounds, meta.replayed_rounds), (2, 1));
        assert_eq!(meta.next_round, 3);
        assert_eq!(recovered.export_edges(), reference.export_edges());
        let q: Vec<bool> = recovered.batch_connected(&[(0, 2), (3, 5), (6, 7)]);
        assert_eq!(q, reference.batch_connected(&[(0, 2), (3, 5), (6, 7)]));
    }

    #[test]
    fn compact_then_recover_round_trips() {
        let dir = scratch("rec-compact");
        init_dir(&dir, 8);
        let mut wal = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        let mut reference = BatchDynamicConnectivity::new(8);
        for ops in rounds() {
            wal.append_round(&ops).unwrap();
            reference.apply(&ops).unwrap();
        }
        drop(wal);
        compact(&dir, &reference, 3).unwrap();
        // The log is empty now, the snapshot carries everything.
        let readout = read_wal(&dir).unwrap().unwrap();
        assert!(readout.records.is_empty());
        let (recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
        assert_eq!((meta.snapshot_rounds, meta.replayed_rounds), (3, 0));
        assert_eq!(meta.next_round, 3);
        assert_eq!(recovered.export_edges(), reference.export_edges());
        // Logging continues at the preserved round numbering.
        let wal = WalWriter::open(&dir, FsyncPolicy::EveryRound, meta.next_round).unwrap();
        assert_eq!(wal.next_round(), 3);
    }

    #[test]
    fn recovery_is_backend_generic() {
        let dir = scratch("rec-generic");
        init_dir(&dir, 8);
        let mut wal = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        for ops in rounds() {
            wal.append_round(&ops).unwrap();
        }
        drop(wal);
        let (core, _) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
        let (oracle, _) = recover::<NaiveDynamicGraph>(&dir).unwrap();
        assert_eq!(core.export_edges(), oracle.export_edges());
        let pairs: Vec<(u32, u32)> = (0..8)
            .flat_map(|u| (u + 1..8).map(move |v| (u, v)))
            .collect();
        assert_eq!(core.batch_connected(&pairs), oracle.batch_connected(&pairs));
    }

    #[test]
    fn recover_without_snapshot_is_a_storage_error() {
        let dir = scratch("rec-nosnap");
        match recover::<NaiveDynamicGraph>(&dir) {
            Err(DynConError::Storage { message, .. }) => {
                assert!(message.contains("no snapshot"), "{message}")
            }
            Err(other) => panic!("expected Storage, got {other:?}"),
            Ok(_) => panic!("expected Storage, got a recovered backend"),
        }
    }

    #[test]
    fn round_gap_between_snapshot_and_log_is_corrupt() {
        let dir = scratch("rec-gap");
        init_dir(&dir, 8);
        // Log starts at round 2 but the snapshot only covers up to 0.
        let mut wal = WalWriter::open(&dir, FsyncPolicy::EveryRound, 2).unwrap();
        wal.append_round(&[Op::Insert(0, 1)]).unwrap();
        drop(wal);
        match recover::<NaiveDynamicGraph>(&dir) {
            Err(DynConError::Corrupt { detail, .. }) => {
                assert!(detail.contains("round gap"), "{detail}")
            }
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("expected Corrupt, got a recovered backend"),
        }
    }

    #[test]
    fn recover_with_configures_the_builder() {
        let dir = scratch("rec-cfg");
        init_dir(&dir, 8);
        let mut wal = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        wal.append_round(&[Op::Insert(0, 1)]).unwrap();
        drop(wal);
        let (g, _) = recover_with::<BatchDynamicConnectivity>(&dir, |b| {
            b.algorithm(dyncon_api::DeletionAlgorithm::Simple)
                .stats(false)
        })
        .unwrap();
        assert_eq!(g.backend_name(), "batch-dynamic/simple");
        // The vertex count always comes from the snapshot.
        let (g2, _) = recover_with::<BatchDynamicConnectivity>(&dir, |mut b| {
            b.num_vertices = 4;
            b
        })
        .unwrap();
        assert_eq!(Connectivity::num_vertices(&g2), 8);
    }
}
