//! The durable group-commit frontend: a [`ConnServer`] whose every
//! sealed round is appended (and fsynced, per policy) to the write-ahead
//! log *before* it is applied — group commit and group fsync coincide.

use crate::metrics::DurableMetrics;
use crate::recover::{recover_with, RoundMeta};
use crate::wal::{FsyncPolicy, WalWriter};
use crate::Snapshot;
use dyncon_api::{
    BatchDynamic, BuildFrom, Builder, DynConError, ExportEdges, Op, ReadView, Version,
    VersionedRead,
};
use dyncon_metrics::MetricsSnapshot;
use dyncon_server::{ConnServer, ReadHandle, ServerConfig, ServiceReport, SubmitOptions, Ticket};
use dyncon_trace::Stage;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Durability knobs of a [`DurableServer`].
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// When WAL appends reach stable storage (default: every round).
    pub fsync: FsyncPolicy,
    /// Snapshot + truncate the WAL when the server joins (default: on),
    /// so the next open replays a short log. Turn off to leave the full
    /// log in place — e.g. to keep replayable history, or in crash tests.
    pub compact_on_join: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::EveryRound,
            compact_on_join: true,
        }
    }
}

impl DurableConfig {
    /// The defaults: fsync every round, compact at join.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the [`FsyncPolicy`].
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Toggle compaction at [`DurableServer::join`].
    pub fn compact_on_join(mut self, enabled: bool) -> Self {
        self.compact_on_join = enabled;
        self
    }
}

/// What [`DurableServer::join`] returns.
#[derive(Debug)]
pub struct DurableReport<B> {
    /// The wrapped service's report (backend, counters, optional
    /// in-memory round log).
    pub service: ServiceReport<B>,
    /// Round id the next process will continue logging at.
    pub next_round: u64,
    /// Whether the WAL was compacted into a snapshot at join.
    pub compacted: bool,
}

/// A [`ConnServer`] with an etcd-style durability spine: recover on
/// open, write-ahead log every sealed round, snapshot on close.
///
/// The round hook ties the two layers together: the server's writer
/// thread calls it once per commit round, after the round's operations
/// are fixed and before they are applied, so the WAL append + fsync
/// happen exactly once per round no matter how many client requests the
/// round coalesced. A ticket that resolves successfully therefore
/// implies its round is as durable as the fsync policy promises.
///
/// Submission, sealing and shutdown all delegate to [`ConnServer`]; see
/// `examples/durable_service.rs` for the end-to-end crash/recover loop.
pub struct DurableServer<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    inner: ConnServer<B>,
    wal: Arc<Mutex<WalWriter>>,
    metrics: Arc<DurableMetrics>,
    registry: dyncon_metrics::Registry,
    dir: PathBuf,
    compact_on_join: bool,
}

impl<B> DurableServer<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    /// Open the durable directory `dir` and start serving.
    ///
    /// A fresh (or empty) directory is initialized to an empty graph
    /// over `num_vertices` vertices; an existing one is recovered
    /// (snapshot + WAL replay) and `num_vertices` must match the
    /// snapshot. Any `round_hook` already present in `config` is
    /// replaced by the WAL hook.
    pub fn open(
        dir: &Path,
        num_vertices: usize,
        config: ServerConfig,
        durable: DurableConfig,
    ) -> Result<(Self, RoundMeta), DynConError> {
        std::fs::create_dir_all(dir).map_err(|e| crate::wal::storage_err(dir, e))?;
        if Snapshot::load(dir)?.is_none() {
            // First open: make the vertex universe durable immediately so
            // recovery never needs out-of-band configuration.
            Builder::new(num_vertices).validate()?;
            Snapshot {
                num_vertices,
                next_round: 0,
                edges: Vec::new(),
            }
            .write_atomic(dir)?;
        }
        let (backend, meta) = recover_with::<B>(dir, |b| b)?;
        if backend.num_vertices() != num_vertices {
            return Err(DynConError::InvalidVertexCount {
                requested: num_vertices,
            });
        }
        // Pool the durability metrics in the caller's registry when one
        // was passed; otherwise create one registry for both layers, so
        // the service report always shows the whole stack.
        let registry = config.metrics.clone().unwrap_or_default();
        let config = config.metrics(registry.clone());
        let metrics = DurableMetrics::register(&registry);
        metrics.recovery_replayed_rounds.add(meta.replayed_rounds);
        metrics.recovery_replayed_ops.add(meta.replayed_ops);
        let wal = Arc::new(Mutex::new(WalWriter::open(
            dir,
            durable.fsync,
            meta.next_round,
        )?));
        let hook_wal = Arc::clone(&wal);
        let abort_wal = Arc::clone(&wal);
        let hook_metrics = Arc::clone(&metrics);
        let abort_metrics = Arc::clone(&metrics);
        let hook_trace = config.trace.clone();
        let abort_trace = config.trace.clone();
        let hook_health = config.health.clone();
        let abort_health = config.health.clone();
        let config = config
            .round_hook(Arc::new(move |server_round, ops: &[Op]| {
                let mut wal = hook_wal.lock().expect("WAL writer lock poisoned");
                let (bytes_before, fsyncs_before) = (wal.log_bytes(), wal.fsync_count());
                let sync_ns_before = wal.sync_ns();
                let started = Instant::now();
                let appended = wal.append_round(ops).map(|_| ());
                let append_took = started.elapsed();
                hook_metrics.wal_append_ns.record_duration(append_took);
                // A failed append rolls its frame back, so the byte delta
                // is zero exactly when nothing durable was added.
                hook_metrics
                    .wal_append_bytes
                    .add(wal.log_bytes().saturating_sub(bytes_before));
                hook_metrics
                    .wal_fsyncs
                    .add(wal.fsync_count() - fsyncs_before);
                if appended.is_ok() {
                    hook_metrics.wal_rounds_logged.inc();
                } else if let Some(h) = &hook_health {
                    // A failed append closes the service; readiness must
                    // flip before the load balancer retries here.
                    h.note_wal_error();
                }
                if let Some(t) = &hook_trace {
                    let ops_n = ops.len() as u64;
                    t.record_parts(
                        server_round,
                        Stage::WalAppend,
                        started,
                        append_took,
                        ops_n,
                        None,
                    );
                    // The fsync (when the policy made one due) happened
                    // inside the append; attribute its share as a nested
                    // span so the breakdown separates encode+write from
                    // the stable-storage wait.
                    let fsync_ns = wal.sync_ns().saturating_sub(sync_ns_before);
                    if fsync_ns > 0 {
                        let dur = Duration::from_nanos(fsync_ns);
                        t.record_parts(server_round, Stage::WalFsync, started, dur, ops_n, None);
                    }
                }
                appended
            }))
            // A logged round whose apply then fails is un-logged, so the
            // failure the clients see and the durable history agree.
            .round_abort(Arc::new(move |server_round, ops: &[Op]| {
                let mut wal = abort_wal.lock().expect("WAL writer lock poisoned");
                let fsyncs_before = wal.fsync_count();
                let started = Instant::now();
                let aborted = wal.abort_round().map(|_| ());
                abort_metrics
                    .wal_fsyncs
                    .add(wal.fsync_count() - fsyncs_before);
                if aborted.is_ok() {
                    abort_metrics.wal_rounds_aborted.inc();
                } else if let Some(h) = &abort_health {
                    h.note_wal_error();
                }
                if let Some(t) = &abort_trace {
                    t.record(server_round, Stage::WalAbort, started, ops.len() as u64);
                }
                aborted
            }))
            // Versions ARE WAL round ids: the first round this process
            // commits is logged as `meta.next_round`, so recovery and
            // replicas agree on version numbering across lifetimes. The
            // recovered state itself is version `next_round - 1`.
            .first_version(meta.next_round);
        // Versioned reads opt in via `retain_views`; left at 0, the
        // serving layer skips view publication entirely (no per-round
        // export cost).
        let inner = if config.retain_views > 0 {
            ConnServer::start_versioned(backend, config)
        } else {
            ConnServer::start(backend, config)
        };
        Ok((
            Self {
                inner,
                wal,
                metrics,
                registry,
                dir: dir.to_path_buf(),
                compact_on_join: durable.compact_on_join,
            },
            meta,
        ))
    }

    /// The backend's vertex universe.
    pub fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    /// Rounds committed by this process (excludes recovered rounds).
    pub fn rounds_committed(&self) -> u64 {
        self.inner.rounds_committed()
    }

    /// Operations committed by this process.
    pub fn ops_committed(&self) -> u64 {
        self.inner.ops_committed()
    }

    /// Freeze the stack's metric registry right now: serving metrics
    /// (queue depth, round sizes, apply latency) and durability metrics
    /// (WAL appends, fsyncs, recovery replay) in one snapshot. See
    /// [`ConnServer::metrics_snapshot`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics_snapshot()
    }

    /// Round id the next sealed round will be logged as.
    pub fn next_round(&self) -> u64 {
        self.wal
            .lock()
            .expect("WAL writer lock poisoned")
            .next_round()
    }

    /// See [`ConnServer::submit`].
    pub fn submit(&self, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit(ops)
    }

    /// See [`ConnServer::submit_as`].
    pub fn submit_as(&self, client: u64, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit_as(client, ops)
    }

    /// See [`ConnServer::submit_blocking`].
    pub fn submit_blocking(&self, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit_blocking(ops)
    }

    /// See [`ConnServer::submit_blocking_as`].
    pub fn submit_blocking_as(&self, client: u64, ops: Vec<Op>) -> Result<Ticket, DynConError> {
        self.inner.submit_blocking_as(client, ops)
    }

    /// See [`ConnServer::submit_with`]. On a durable server,
    /// [`SubmitOptions::min_version`] fences against **WAL round ids**
    /// (versions survive process restarts), so a client may carry a
    /// version from a previous lifetime.
    pub fn submit_with(&self, ops: Vec<Op>, options: SubmitOptions) -> Result<Ticket, DynConError> {
        self.inner.submit_with(ops, options)
    }

    /// See [`ConnServer::seal_round`].
    pub fn seal_round(&self) -> usize {
        self.inner.seal_round()
    }

    /// See [`ConnServer::inspect`]. The closure observes recovered state
    /// too: after `open`, an inspection sees every replayed round.
    pub fn inspect<R, F>(&self, f: F) -> Result<R, DynConError>
    where
        R: Send + 'static,
        F: FnOnce(&B) -> R + Send + 'static,
    {
        self.inner.inspect(f)
    }

    /// See [`ConnServer::inspect_versioned`]. The version the closure is
    /// handed is a WAL round id; right after `open` it is
    /// `meta.next_round - 1` (the recovered state), not `None`.
    pub fn inspect_versioned<R, F>(&self, f: F) -> Result<R, DynConError>
    where
        R: Send + 'static,
        F: FnOnce(&B, Option<Version>) -> R + Send + 'static,
    {
        self.inner.inspect_versioned(f)
    }

    /// The newest committed version (a WAL round id); after recovery at
    /// least `meta.next_round - 1` even before any new round commits.
    pub fn newest_committed(&self) -> Option<Version> {
        self.inner.newest_committed()
    }

    /// See [`ConnServer::read_async`]. Requires
    /// [`ServerConfig::retain_views`] > 0 at `open`.
    pub fn read_async<R, F>(&self, f: F) -> ReadHandle<Result<R, DynConError>>
    where
        R: Send + 'static,
        F: FnOnce(&ReadView) -> R + Send + 'static,
    {
        self.inner.read_async(f)
    }

    /// See [`ConnServer::read_async_at`].
    pub fn read_async_at<R, F>(&self, version: Version, f: F) -> ReadHandle<Result<R, DynConError>>
    where
        R: Send + 'static,
        F: FnOnce(&ReadView) -> R + Send + 'static,
    {
        self.inner.read_async_at(version, f)
    }

    /// See [`ConnServer::close`].
    pub fn close(&self) {
        self.inner.close()
    }

    /// Force every logged round onto stable storage regardless of the
    /// fsync policy.
    pub fn sync(&self) -> Result<(), DynConError> {
        self.wal.lock().expect("WAL writer lock poisoned").sync()
    }

    /// Drain, stop, make the log durable, and (per
    /// [`DurableConfig::compact_on_join`]) compact it into a snapshot.
    pub fn join(self) -> Result<DurableReport<B>, DynConError> {
        let mut service = self.inner.join();
        let mut wal = self.wal.lock().expect("WAL writer lock poisoned");
        let fsyncs_before = wal.fsync_count();
        // Under lax fsync policies the final rounds may still be in
        // the page cache; an orderly shutdown always lands them.
        wal.sync()?;
        let next_round = wal.next_round();
        if self.compact_on_join {
            // Same two steps as `crate::compact`, but on the writer we
            // already hold — no recovery-scale rescan of the log it is
            // about to empty.
            let started = Instant::now();
            crate::Snapshot::capture(&service.backend, next_round).write_atomic(&self.dir)?;
            wal.reset()?;
            self.metrics
                .snapshot_write_ns
                .record_duration(started.elapsed());
        }
        self.metrics
            .wal_fsyncs
            .add(wal.fsync_count() - fsyncs_before);
        drop(wal);
        // Re-freeze: the inner join snapshotted before the final sync
        // and compaction, whose fsyncs and snapshot timing belong in the
        // report too.
        service.metrics = self.registry.snapshot();
        Ok(DurableReport {
            service,
            next_round,
            compacted: self.compact_on_join,
        })
    }
}

impl<B> VersionedRead for DurableServer<B>
where
    B: BatchDynamic + BuildFrom + ExportEdges + Send + 'static,
{
    /// Versions here are **WAL round ids**: after recovery the window
    /// starts at `meta.next_round - 1` (the recovered state, published
    /// at `open` when [`ServerConfig::retain_views`] > 0) and each new
    /// round extends it by its logged round id.
    fn version_window(&self) -> Option<(Version, Version)> {
        self.inner.version_window()
    }

    fn read_view(&self) -> Result<ReadView, DynConError> {
        self.inner.read_view()
    }

    fn read_view_at(&self, version: Version) -> Result<ReadView, DynConError> {
        self.inner.read_view_at(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::read_wal;
    use dyncon_core::BatchDynamicConnectivity;

    fn scratch(tag: &str) -> PathBuf {
        // open() creates the directory itself.
        crate::scratch_dir(tag)
    }

    fn open_det(
        dir: &Path,
        durable: DurableConfig,
    ) -> (DurableServer<BatchDynamicConnectivity>, RoundMeta) {
        DurableServer::open(dir, 16, ServerConfig::new().deterministic(true), durable).unwrap()
    }

    #[test]
    fn rounds_are_logged_before_tickets_resolve() {
        let dir = scratch("dsrv-logged");
        let (server, meta) = open_det(&dir, DurableConfig::new().compact_on_join(false));
        assert_eq!(meta.next_round, 0);
        let t = server
            .submit_as(0, vec![Op::Insert(0, 1), Op::Query(0, 1)])
            .unwrap();
        server.seal_round();
        assert_eq!(t.wait().unwrap().answers, vec![true]);
        // The ticket resolved ⇒ the round is already on disk (fsync
        // policy is every_round).
        let readout = read_wal(&dir).unwrap().unwrap();
        assert_eq!(readout.records.len(), 1);
        assert_eq!(
            readout.records[0].ops,
            vec![Op::Insert(0, 1), Op::Query(0, 1)]
        );
        let report = server.join().unwrap();
        assert_eq!(report.next_round, 1);
        assert!(!report.compacted);
    }

    #[test]
    fn reopen_recovers_and_continues_round_numbering() {
        let dir = scratch("dsrv-reopen");
        {
            let (server, _) = open_det(&dir, DurableConfig::new().compact_on_join(false));
            for (i, ops) in [vec![Op::Insert(0, 1)], vec![Op::Insert(1, 2)]]
                .into_iter()
                .enumerate()
            {
                let t = server.submit_as(0, ops).unwrap();
                server.seal_round();
                assert_eq!(t.wait().unwrap().round, i as u64);
            }
            server.join().unwrap();
        }
        // Second process lifetime: recovery replays the two rounds, and
        // new rounds continue at id 2.
        let (server, meta) = open_det(&dir, DurableConfig::new());
        assert_eq!((meta.replayed_rounds, meta.next_round), (2, 2));
        assert_eq!(server.next_round(), 2);
        let t = server.submit_as(0, vec![Op::Query(0, 2)]).unwrap();
        server.seal_round();
        assert_eq!(
            t.wait().unwrap().answers,
            vec![true],
            "recovered edges answer"
        );
        let report = server.join().unwrap();
        assert_eq!(report.next_round, 3);
        assert!(report.compacted);
        // Third lifetime: the compacted snapshot carries everything.
        let (_server, meta) = open_det(&dir, DurableConfig::new());
        assert_eq!((meta.snapshot_rounds, meta.replayed_rounds), (3, 0));
    }

    #[test]
    fn vertex_count_mismatch_is_rejected() {
        let dir = scratch("dsrv-mismatch");
        {
            let (server, _) = open_det(&dir, DurableConfig::new());
            server.join().unwrap();
        }
        match DurableServer::<BatchDynamicConnectivity>::open(
            &dir,
            64,
            ServerConfig::new(),
            DurableConfig::new(),
        ) {
            Err(err) => assert_eq!(err, DynConError::InvalidVertexCount { requested: 64 }),
            Ok(_) => panic!("mismatched vertex count must be rejected"),
        }
    }

    #[test]
    fn apply_panic_unlogs_the_round_so_recovery_matches_the_acknowledgement() {
        use dyncon_api::{
            BatchDynamic, BatchResult, BuildFrom, Builder, Connectivity, ExportEdges,
        };
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Applies committed rounds until the fuse runs out, then panics —
        // AFTER the round was appended to the WAL. Fuse is a static so
        // `BuildFrom` (which recovery also calls) can construct it.
        static FUSE: AtomicUsize = AtomicUsize::new(usize::MAX);
        struct Bomb(BatchDynamicConnectivity);
        impl Connectivity for Bomb {
            fn backend_name(&self) -> &'static str {
                "durable-bomb"
            }
            fn num_vertices(&self) -> usize {
                Connectivity::num_vertices(&self.0)
            }
            fn connected(&self, u: u32, v: u32) -> bool {
                Connectivity::connected(&self.0, u, v)
            }
            fn num_components(&self) -> usize {
                Connectivity::num_components(&self.0)
            }
            fn component_size(&self, v: u32) -> u64 {
                Connectivity::component_size(&self.0, v)
            }
        }
        impl BatchDynamic for Bomb {
            fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
                BatchDynamic::batch_insert(&mut self.0, edges)
            }
            fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
                BatchDynamic::batch_delete(&mut self.0, edges)
            }
            fn apply(&mut self, ops: &[Op]) -> Result<BatchResult, DynConError> {
                if FUSE.fetch_sub(1, Ordering::Relaxed) == 0 {
                    panic!("durable bomb detonated");
                }
                self.0.apply(ops)
            }
        }
        impl BuildFrom for Bomb {
            fn build_from(b: &Builder) -> Result<Self, DynConError> {
                Ok(Bomb(BatchDynamicConnectivity::build_from(b)?))
            }
        }
        impl ExportEdges for Bomb {
            fn export_edges(&self) -> Vec<(u32, u32)> {
                self.0.export_edges()
            }
        }

        let dir = scratch("dsrv-abort");
        FUSE.store(1, Ordering::Relaxed); // round 0 applies, round 1 detonates
        let (server, _) = DurableServer::<Bomb>::open(
            &dir,
            16,
            ServerConfig::new().deterministic(true),
            DurableConfig::new().compact_on_join(false),
        )
        .unwrap();
        let ok = server.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
        server.seal_round();
        ok.wait().unwrap();
        let boom = server.submit_as(0, vec![Op::Insert(1, 2)]).unwrap();
        server.seal_round();
        assert!(boom.wait().is_err(), "the detonated round fails its ticket");
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.join()));
        assert!(joined.is_err(), "the panic resurfaces at join");

        // The failed round was appended before apply, but the abort hook
        // retracted it: on-disk history agrees with what clients saw.
        FUSE.store(usize::MAX, Ordering::Relaxed);
        let readout = read_wal(&dir).unwrap().unwrap();
        assert_eq!(readout.records.len(), 1, "only the committed round remains");
        let (recovered, meta) = crate::recover::<Bomb>(&dir).unwrap();
        assert_eq!(meta.replayed_rounds, 1);
        assert!(recovered.connected(0, 1));
        assert!(
            !recovered.connected(1, 2),
            "the failed round is not replayed"
        );
    }

    #[test]
    fn metrics_observe_the_durability_stack() {
        let dir = scratch("dsrv-metrics");
        {
            let (server, _) = open_det(&dir, DurableConfig::new().compact_on_join(false));
            let t = server.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
            server.seal_round();
            t.wait().unwrap();
            let report = server.join().unwrap();
            let get = |name: &str| report.service.metrics.get(name).unwrap().value.clone();
            assert_eq!(get("dyncon_wal_rounds_logged_total").as_counter(), Some(1));
            // One frame: 28-byte header + one 9-byte encoded op.
            assert_eq!(get("dyncon_wal_append_bytes_total").as_counter(), Some(37));
            assert!(get("dyncon_wal_fsyncs_total").as_counter().unwrap() >= 2);
            assert_eq!(get("dyncon_wal_rounds_aborted_total").as_counter(), Some(0));
            assert_eq!(
                get("dyncon_recovery_replayed_rounds_total").as_counter(),
                Some(0),
                "fresh directory: nothing replayed"
            );
            // Serving-layer metrics pool into the same registry.
            assert_eq!(
                get("dyncon_server_rounds_committed_total").as_counter(),
                Some(1)
            );
            let append = get("dyncon_wal_append_ns");
            assert_eq!(append.as_histogram().unwrap().count, 1);
        }
        // Second lifetime: recovery replays the round, and the compacting
        // join records a snapshot write.
        let (server, meta) = open_det(&dir, DurableConfig::new());
        assert_eq!((meta.replayed_rounds, meta.replayed_ops), (1, 1));
        let live = server.metrics_snapshot();
        assert_eq!(
            live.get("dyncon_recovery_replayed_ops_total")
                .unwrap()
                .value
                .as_counter(),
            Some(1)
        );
        let report = server.join().unwrap();
        let snap_hist = report
            .service
            .metrics
            .get("dyncon_snapshot_write_ns")
            .unwrap()
            .value
            .as_histogram()
            .unwrap()
            .count;
        assert_eq!(snap_hist, 1, "compaction timing lands in the report");
    }

    #[test]
    fn throughput_mode_is_durable_too() {
        let dir = scratch("dsrv-throughput");
        let total: u64 = {
            let (server, _) = DurableServer::<BatchDynamicConnectivity>::open(
                &dir,
                16,
                ServerConfig::new().coalesce_wait(std::time::Duration::from_micros(50)),
                DurableConfig::new().fsync(FsyncPolicy::EveryNRounds(4)),
            )
            .unwrap();
            for i in 0..10u32 {
                let t = server.submit(vec![Op::Insert(i % 8, 8 + i % 8)]).unwrap();
                t.wait().unwrap();
            }
            let report = server.join().unwrap();
            report.service.ops_committed
        };
        assert_eq!(total, 10);
        let (recovered, _) = crate::recover::<BatchDynamicConnectivity>(&dir).unwrap();
        assert!(recovered.connected(0, 8));
        assert_eq!(recovered.export_edges().len(), 8);
    }

    #[test]
    fn versions_are_wal_round_ids_across_lifetimes() {
        use dyncon_api::Connectivity;
        let dir = scratch("dsrv-versions");
        {
            let (server, _) = DurableServer::<BatchDynamicConnectivity>::open(
                &dir,
                16,
                ServerConfig::new().deterministic(true).retain_views(4),
                DurableConfig::new().compact_on_join(false),
            )
            .unwrap();
            // Fresh directory: nothing committed, nothing to read yet.
            assert_eq!(server.version_window(), None);
            let t = server.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
            server.seal_round();
            let r = t.wait().unwrap();
            assert_eq!(r.version, 0, "first WAL round id");
            assert!(server.read_view_at(0).unwrap().connected(0, 1));
            let t = server.submit_as(0, vec![Op::Insert(1, 2)]).unwrap();
            server.seal_round();
            assert_eq!(t.wait().unwrap().version, 1);
            server.join().unwrap();
        }
        // Second lifetime: recovery replays WAL rounds 0..=1, so the
        // recovered state is version 1 — published at open, readable
        // before any new round commits, and `newest_committed` agrees.
        let (server, meta) = DurableServer::<BatchDynamicConnectivity>::open(
            &dir,
            16,
            ServerConfig::new().deterministic(true).retain_views(4),
            DurableConfig::new(),
        )
        .unwrap();
        assert_eq!(meta.next_round, 2);
        assert_eq!(server.newest_committed(), Some(1));
        assert_eq!(server.version_window(), Some((1, 1)));
        let recovered = server.read_view().unwrap();
        assert_eq!(recovered.version(), 1);
        assert!(recovered.connected(0, 2), "recovered edges answer");
        // New rounds continue the WAL numbering: the next commit is
        // version 2, and a fence on the recovered version admits at once.
        let t = server
            .submit_with(
                vec![Op::Query(0, 2)],
                SubmitOptions::new().as_client(0).min_version(1),
            )
            .unwrap();
        server.seal_round();
        let r = t.wait().unwrap();
        assert_eq!((r.version, r.answers.as_slice()), (2, &[true][..]));
        assert_eq!(server.version_window(), Some((1, 2)));
        server.join().unwrap();
    }
}
