//! The checksummed, length-framed binary write-ahead log.
//!
//! ## On-disk format
//!
//! ```text
//! wal.log := magic "DCWAL001" (8 bytes)
//!            record*
//! record  := round        u64 LE   -- global round id, contiguous ascending
//!            len          u32 LE   -- payload byte length
//!            header_chk   u64 LE   -- over (round, len): makes framing trustworthy
//!            payload_chk  u64 LE   -- over (round, payload)
//!            payload      len bytes -- encode_ops() of the round's Op batch
//! ```
//!
//! ## Recovery tolerance
//!
//! The **tail** of the log absorbs torn writes: a final record whose
//! header is cut off by end-of-file, whose (header-verified) payload
//! extent runs past end-of-file, or whose payload checksum fails at the
//! very end of the file is dropped cleanly — that is the write that was
//! in flight when the process died, and no client ever saw its round
//! commit (tickets resolve only after append *and* apply). Anything
//! wrong **before** the end of the file — a payload checksum mismatch
//! with data after it, bad magic, an undecodable payload, a round-id gap
//! — is real corruption of committed history and surfaces as
//! [`DynConError::Corrupt`]; recovery must not guess around it.
//!
//! The header carries its own checksum so the *length field itself* is
//! validated before it is used for framing: a bit-flipped `len` can
//! never swallow the valid records behind it and masquerade as a torn
//! tail. A complete-but-invalid header is always `Corrupt` (the writer
//! emits each frame as one sequential write, so a torn write leaves a
//! strict prefix — never a complete header with damaged bytes).

use dyncon_api::{decode_ops, encode_ops, DynConError, Op};
use dyncon_primitives::hash64;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File name of the write-ahead log inside a durable directory.
pub const WAL_FILE: &str = "wal.log";

const WAL_MAGIC: [u8; 8] = *b"DCWAL001";
/// round (8) + len (4) + header checksum (8) + payload checksum (8).
const RECORD_HEADER: usize = 28;

/// When the WAL writer calls `fsync` after an append.
///
/// The policy trades durability for append latency: `EveryRound` loses
/// nothing on a crash (every acknowledged round is on stable storage);
/// `EveryNRounds(n)` bounds the loss window to the last `n - 1` rounds;
/// `Never` leaves flushing to the OS page cache (loss window unbounded,
/// but the *format* still recovers cleanly — a torn tail is dropped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended round (the group-commit default: one
    /// fsync covers every request of the round).
    EveryRound,
    /// `fsync` after every `n`-th appended round (`n >= 1`).
    EveryNRounds(u64),
    /// Never `fsync` explicitly; the OS decides when bytes hit disk.
    Never,
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The global round id (contiguous, ascending across the log).
    pub round: u64,
    /// The round's operations, in applied order.
    pub ops: Vec<Op>,
}

/// What a full WAL scan found.
#[derive(Clone, Debug, Default)]
pub struct WalReadout {
    /// Every valid record, in log order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past the last valid record — where an appender
    /// must truncate to before writing (anything beyond is a torn tail).
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was dropped during the scan.
    pub dropped_tail: bool,
}

/// Payload checksum: a seeded SplitMix64 chain over the round id and
/// payload words. Not cryptographic — it guards against torn writes and
/// bit rot, the failure modes fsync-era storage actually has.
fn record_checksum(round: u64, payload: &[u8]) -> u64 {
    let mut acc = hash64(round ^ (payload.len() as u64).rotate_left(32));
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = hash64(acc ^ u64::from_le_bytes(word));
    }
    acc
}

/// Header checksum over `(round, len)`: validated BEFORE `len` is used
/// for framing, so a corrupted length field can never swallow the valid
/// records behind it (see the module docs).
fn header_checksum(round: u64, len: u32) -> u64 {
    hash64(hash64(round ^ u64::from_le_bytes(WAL_MAGIC)) ^ len as u64)
}

/// Map an `io::Error` on `path` to the typed storage error.
pub(crate) fn storage_err(path: &Path, e: std::io::Error) -> DynConError {
    DynConError::Storage {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn corrupt_err(path: &Path, offset: u64, detail: &str) -> DynConError {
    DynConError::Corrupt {
        path: path.display().to_string(),
        offset,
        detail: detail.to_string(),
    }
}

/// Scan the WAL in `dir`. `Ok(None)` if no log file exists; torn tails
/// are dropped (see the module docs), mid-log corruption is
/// [`DynConError::Corrupt`].
pub fn read_wal(dir: &Path) -> Result<Option<WalReadout>, DynConError> {
    let path = dir.join(WAL_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(storage_err(&path, e)),
    };
    if bytes.len() < WAL_MAGIC.len() {
        // A torn creation: not even the magic made it out. Treat as an
        // empty log whose tail (the partial magic) is dropped.
        return Ok(Some(WalReadout {
            records: Vec::new(),
            valid_len: 0,
            dropped_tail: !bytes.is_empty(),
        }));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(corrupt_err(&path, 0, "bad WAL magic"));
    }
    let mut out = WalReadout {
        records: Vec::new(),
        valid_len: WAL_MAGIC.len() as u64,
        dropped_tail: false,
    };
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        // Truncated header or payload: by construction this can only be
        // the final (in-flight) record — drop it.
        if bytes.len() - pos < RECORD_HEADER {
            out.dropped_tail = true;
            break;
        }
        let round = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        let len_raw = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes"));
        let stored_hchk =
            u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("8 bytes"));
        let stored_pchk =
            u64::from_le_bytes(bytes[pos + 20..pos + 28].try_into().expect("8 bytes"));
        // Validate the header before trusting `len` for framing. A
        // complete header that fails its checksum is corruption, final
        // record or not: the writer emits each frame as one sequential
        // write, so a torn write can only leave a strict prefix (caught
        // by the length checks), never a complete-but-damaged header.
        if header_checksum(round, len_raw) != stored_hchk {
            return Err(corrupt_err(&path, pos as u64, "header checksum mismatch"));
        }
        let len = len_raw as usize;
        let payload_start = pos + RECORD_HEADER;
        if bytes.len() - payload_start < len {
            // The verified length extends past end-of-file: a torn final
            // payload — nothing can exist beyond it.
            out.dropped_tail = true;
            break;
        }
        let payload = &bytes[payload_start..payload_start + len];
        let record_end = payload_start + len;
        if record_checksum(round, payload) != stored_pchk {
            if record_end >= bytes.len() {
                // The final record: a torn write, drop it.
                out.dropped_tail = true;
                break;
            }
            // Valid-looking data follows — committed history is damaged.
            return Err(corrupt_err(
                &path,
                pos as u64,
                "payload checksum mismatch mid-log",
            ));
        }
        let ops = decode_ops(payload)
            .ok_or_else(|| corrupt_err(&path, pos as u64, "undecodable op payload"))?;
        if let Some(prev) = out.records.last() {
            if round != prev.round + 1 {
                return Err(corrupt_err(
                    &path,
                    pos as u64,
                    "round sequence gap in committed history",
                ));
            }
        }
        out.records.push(WalRecord { round, ops });
        out.valid_len = record_end as u64;
        pos = record_end;
    }
    Ok(Some(out))
}

/// Append-side handle on the WAL of one durable directory.
///
/// Opening scans the existing log (so a torn tail is truncated away
/// before the first new append lands after it), positions at the end,
/// and continues the round numbering; see [`FsyncPolicy`] for when
/// appends reach stable storage.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    next_round: u64,
    unsynced_rounds: u64,
    /// Lifetime fsync count of this writer handle (observability; see
    /// [`WalWriter::fsync_count`]).
    fsyncs: u64,
    /// Lifetime nanoseconds spent inside fsync calls (observability; see
    /// [`WalWriter::sync_ns`]).
    sync_ns: u64,
    /// Byte offset just past the last fully-appended record — the
    /// rollback point when an append or sync fails mid-frame.
    end_offset: u64,
    /// Start offset of the most recent successful append (None right
    /// after open/reset/abort), for [`WalWriter::abort_round`].
    last_record_start: Option<u64>,
    /// Set when a failed append could not be rolled back: the file may
    /// hold a frame the caller was told failed, so further appends are
    /// refused rather than risking divergence between acknowledgements
    /// and the log.
    poisoned: bool,
}

impl WalWriter {
    /// Open (or create) the WAL in `dir` for appending. `base_round` is
    /// the id the next round gets when the log is empty — recovery passes
    /// the snapshot's `next_round` so numbering continues across
    /// compactions. A log whose records end at round `r` continues at
    /// `r + 1` regardless of `base_round`. Mid-log corruption is an
    /// error: a damaged log must be healed (or removed) explicitly, never
    /// silently appended to.
    pub fn open(dir: &Path, policy: FsyncPolicy, base_round: u64) -> Result<Self, DynConError> {
        let path = dir.join(WAL_FILE);
        let readout = read_wal(dir)?.unwrap_or_default();
        let next_round = match readout.records.last() {
            Some(last) => last.round + 1,
            None => base_round,
        };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| storage_err(&path, e))?;
        let mut writer = Self {
            file,
            path,
            policy,
            next_round,
            unsynced_rounds: 0,
            fsyncs: 0,
            sync_ns: 0,
            end_offset: WAL_MAGIC.len() as u64,
            last_record_start: None,
            poisoned: false,
        };
        if readout.valid_len < WAL_MAGIC.len() as u64 {
            // Fresh (or torn-at-creation) file: lay down the magic.
            writer.truncate_to(0)?;
            writer
                .file
                .write_all(&WAL_MAGIC)
                .map_err(|e| storage_err(&writer.path, e))?;
            writer.sync()?;
        } else {
            // Cut off any dropped tail so new records append cleanly.
            writer.truncate_to(readout.valid_len)?;
            writer.end_offset = readout.valid_len;
        }
        Ok(writer)
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), DynConError> {
        self.file
            .set_len(len)
            .map_err(|e| storage_err(&self.path, e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| storage_err(&self.path, e))?;
        Ok(())
    }

    /// The id the next appended round will get.
    pub fn next_round(&self) -> u64 {
        self.next_round
    }

    /// How many times this writer handle has fsynced the log (policy
    /// syncs, explicit [`WalWriter::sync`] calls, and abort/reset syncs
    /// alike). Observability only.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Lifetime nanoseconds this writer handle has spent inside fsync
    /// calls. Observability only; successive readings around an append
    /// give that append's fsync cost (zero when the policy deferred the
    /// sync).
    pub fn sync_ns(&self) -> u64 {
        self.sync_ns
    }

    /// Bytes of valid log currently on disk (magic + every appended
    /// frame). Observability only; successive readings around an append
    /// give the append's byte cost.
    pub fn log_bytes(&self) -> u64 {
        self.end_offset
    }

    fn check_poisoned(&self) -> Result<(), DynConError> {
        if self.poisoned {
            return Err(DynConError::Storage {
                path: self.path.display().to_string(),
                message: "WAL writer poisoned by an earlier unrecoverable append failure"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// A failed append/sync must not leave the frame behind: the caller
    /// is about to report the round as never committed, so a later
    /// recovery must not find (and replay) it. Best-effort truncate back
    /// to the last good offset; if even that fails, poison the writer so
    /// no further append can land after the orphaned bytes.
    fn rollback_to_end_offset(&mut self) {
        if self.file.set_len(self.end_offset).is_err()
            || self.file.seek(SeekFrom::End(0)).is_err()
            || self.file.sync_all().is_err()
        {
            self.poisoned = true;
        }
    }

    /// Append one round and apply the fsync policy. Returns the round id
    /// assigned to it. On failure the frame is rolled back (so the round
    /// a caller reports as failed can never be recovered), and if the
    /// rollback itself fails the writer is poisoned: every later append
    /// returns [`DynConError::Storage`].
    pub fn append_round(&mut self, ops: &[Op]) -> Result<u64, DynConError> {
        self.check_poisoned()?;
        let round = self.next_round;
        let payload = encode_ops(ops);
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&round.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&header_checksum(round, payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&record_checksum(round, &payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let start = self.end_offset;
        if let Err(e) = self.file.write_all(&frame) {
            self.rollback_to_end_offset();
            return Err(storage_err(&self.path, e));
        }
        self.unsynced_rounds += 1;
        let due = match self.policy {
            FsyncPolicy::EveryRound => true,
            FsyncPolicy::EveryNRounds(n) => self.unsynced_rounds >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            if let Err(e) = self.sync() {
                self.unsynced_rounds -= 1;
                self.rollback_to_end_offset();
                return Err(e);
            }
        }
        self.next_round += 1;
        self.end_offset = start + frame.len() as u64;
        self.last_record_start = Some(start);
        Ok(round)
    }

    /// Remove the most recently appended round — the abort path for a
    /// round that was logged but whose apply failed, so durable state and
    /// client acknowledgements stay consistent. Returns the round id that
    /// was rolled back. Errors if there is nothing to abort (fresh open,
    /// or already aborted).
    pub fn abort_round(&mut self) -> Result<u64, DynConError> {
        self.check_poisoned()?;
        let start = self
            .last_record_start
            .take()
            .ok_or_else(|| DynConError::Storage {
                path: self.path.display().to_string(),
                message: "no appended round to abort".to_string(),
            })?;
        self.truncate_to(start)?;
        self.end_offset = start;
        self.next_round -= 1;
        self.sync()?;
        Ok(self.next_round)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), DynConError> {
        let started = Instant::now();
        self.file
            .sync_all()
            .map_err(|e| storage_err(&self.path, e))?;
        self.sync_ns += started.elapsed().as_nanos() as u64;
        self.unsynced_rounds = 0;
        self.fsyncs += 1;
        Ok(())
    }

    /// Drop every record (compaction's second half, after the snapshot is
    /// durably in place): the log becomes just the magic, and numbering
    /// continues from where it was.
    pub fn reset(&mut self) -> Result<(), DynConError> {
        self.check_poisoned()?;
        self.truncate_to(WAL_MAGIC.len() as u64)?;
        self.end_offset = WAL_MAGIC.len() as u64;
        self.last_record_start = None;
        self.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = crate::scratch_dir(tag);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops(k: u32) -> Vec<Op> {
        vec![Op::Insert(k, k + 1), Op::Query(0, k + 1), Op::Delete(k, 0)]
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = scratch("wal-roundtrip");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        for k in 0..5u32 {
            assert_eq!(w.append_round(&ops(k)).unwrap(), k as u64);
        }
        // Empty rounds are legal (a round of pure flush requests).
        assert_eq!(w.append_round(&[]).unwrap(), 5);
        drop(w);
        let r = read_wal(&dir).unwrap().unwrap();
        assert_eq!(r.records.len(), 6);
        assert!(!r.dropped_tail);
        for (k, rec) in r.records[..5].iter().enumerate() {
            assert_eq!(rec.round, k as u64);
            assert_eq!(rec.ops, ops(k as u32));
        }
        assert!(r.records[5].ops.is_empty());
        // Reopening continues the numbering and keeps the records.
        let w2 = WalWriter::open(&dir, FsyncPolicy::Never, 0).unwrap();
        assert_eq!(w2.next_round(), 6);
    }

    #[test]
    fn missing_and_empty_logs() {
        let dir = scratch("wal-empty");
        assert!(read_wal(&dir).unwrap().is_none(), "no file yet");
        let w = WalWriter::open(&dir, FsyncPolicy::EveryNRounds(3), 7).unwrap();
        assert_eq!(w.next_round(), 7, "base round honoured on empty log");
        drop(w);
        let r = read_wal(&dir).unwrap().unwrap();
        assert!(r.records.is_empty() && !r.dropped_tail);
    }

    #[test]
    fn truncated_tail_is_dropped_cleanly() {
        let dir = scratch("wal-torn");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        for k in 0..3u32 {
            w.append_round(&ops(k)).unwrap();
        }
        drop(w);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Chop off the last 7 bytes: a torn final payload.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let r = read_wal(&dir).unwrap().unwrap();
        assert_eq!(r.records.len(), 2, "torn record dropped");
        assert!(r.dropped_tail);
        // The appender truncates the torn tail and REUSES its round id.
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        assert_eq!(w.next_round(), 2);
        w.append_round(&ops(9)).unwrap();
        drop(w);
        let r = read_wal(&dir).unwrap().unwrap();
        assert_eq!(r.records.len(), 3);
        assert!(!r.dropped_tail);
        assert_eq!(r.records[2].ops, ops(9));
    }

    #[test]
    fn checksum_flip_on_final_record_is_a_dropped_tail() {
        let dir = scratch("wal-tailflip");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        w.append_round(&ops(0)).unwrap();
        w.append_round(&ops(1)).unwrap();
        drop(w);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a bit in the final payload byte
        std::fs::write(&path, &bytes).unwrap();
        let r = read_wal(&dir).unwrap().unwrap();
        assert_eq!(r.records.len(), 1);
        assert!(r.dropped_tail);
    }

    #[test]
    fn checksum_flip_mid_log_is_typed_corruption() {
        let dir = scratch("wal-midflip");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        for k in 0..3u32 {
            w.append_round(&ops(k)).unwrap();
        }
        drop(w);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit of the FIRST record (offset: magic + header).
        bytes[WAL_MAGIC.len() + RECORD_HEADER + 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&dir) {
            Err(DynConError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset, WAL_MAGIC.len() as u64);
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // And the appender refuses to write past it.
        assert!(WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).is_err());
    }

    #[test]
    fn corrupted_length_field_cannot_swallow_committed_records() {
        // Regression: a bit flip in record 0's `len` used to make its
        // claimed extent run past EOF, silently dropping record 0 AND the
        // valid records behind it as a "torn tail". The header checksum
        // catches it as corruption instead.
        let dir = scratch("wal-lenflip");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        for k in 0..3u32 {
            w.append_round(&ops(k)).unwrap();
        }
        drop(w);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // len lives at header offset 8..12; set a high bit.
        bytes[WAL_MAGIC.len() + 9] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&dir) {
            Err(DynConError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset, WAL_MAGIC.len() as u64);
                assert!(detail.contains("header checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn abort_round_removes_exactly_the_last_append() {
        let dir = scratch("wal-abort");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        w.append_round(&ops(0)).unwrap();
        w.append_round(&ops(1)).unwrap();
        // The logged-but-apply-failed round is rolled back: durable state
        // and the failure acknowledgement agree.
        assert_eq!(w.abort_round().unwrap(), 1);
        assert_eq!(w.next_round(), 1, "the aborted id is reusable");
        // Double-abort has nothing to remove.
        assert!(w.abort_round().is_err());
        w.append_round(&ops(7)).unwrap();
        drop(w);
        let r = read_wal(&dir).unwrap().unwrap();
        assert!(!r.dropped_tail);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0].ops, ops(0));
        assert_eq!(r.records[1].ops, ops(7));
        assert_eq!(r.records[1].round, 1);
    }

    #[test]
    fn bad_magic_is_typed_corruption() {
        let dir = scratch("wal-magic");
        std::fs::write(dir.join(WAL_FILE), b"GARBAGE!more garbage").unwrap();
        match read_wal(&dir) {
            Err(DynConError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset, 0);
                assert!(detail.contains("magic"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn reset_empties_the_log_but_keeps_numbering() {
        let dir = scratch("wal-reset");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryRound, 0).unwrap();
        for k in 0..4u32 {
            w.append_round(&ops(k)).unwrap();
        }
        w.reset().unwrap();
        assert_eq!(w.next_round(), 4, "round ids survive compaction");
        w.append_round(&ops(4)).unwrap();
        drop(w);
        let r = read_wal(&dir).unwrap().unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].round, 4);
    }

    #[test]
    fn fsync_count_and_log_bytes_track_the_policy() {
        let dir = scratch("wal-observe");
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryNRounds(2), 0).unwrap();
        let after_open = (w.fsync_count(), w.log_bytes());
        assert_eq!(after_open, (1, WAL_MAGIC.len() as u64), "magic is synced");
        let before = w.log_bytes();
        w.append_round(&ops(0)).unwrap(); // unsynced (1 of 2)
        let appended = w.log_bytes() - before;
        assert_eq!(
            appended,
            (RECORD_HEADER + ops(0).len() * Op::ENCODED_LEN) as u64
        );
        assert_eq!(w.fsync_count(), 1);
        w.append_round(&ops(1)).unwrap(); // policy sync (2 of 2)
        assert_eq!(w.fsync_count(), 2);
        w.sync().unwrap(); // explicit
        assert_eq!(w.fsync_count(), 3);
    }

    #[test]
    fn checksum_depends_on_round_and_length() {
        assert_ne!(record_checksum(0, b"abc"), record_checksum(1, b"abc"));
        assert_ne!(record_checksum(0, b"abc"), record_checksum(0, b"abcd"));
        assert_ne!(record_checksum(0, b"ab\0"), record_checksum(0, b"ab"));
    }
}
