//! Model-based testing of the full batch-dynamic connectivity structure:
//! random mixed insert/delete/query batches mirrored into the naive
//! oracle, with the complete invariant checker run after every batch.

use dyncon_core::{BatchDynamicConnectivity, DeletionAlgorithm};
use dyncon_primitives::SplitMix64;
use dyncon_spanning::NaiveDynamicGraph;

fn random_mixed(seed: u64, n: usize, rounds: usize, max_batch: usize, algo: DeletionAlgorithm) {
    let mut rng = SplitMix64::new(seed);
    let mut g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(n)
        .algorithm(algo)
        .build()
        .unwrap();
    let mut oracle = NaiveDynamicGraph::new(n);

    for round in 0..rounds {
        // Insert batch.
        let bi = 1 + rng.next_below(max_batch as u64) as usize;
        let ins: Vec<(u32, u32)> = (0..bi)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        g.batch_insert(&ins);
        oracle.batch_insert(&ins);

        // Delete batch: mix of existing edges and absent ones.
        let edges = oracle.edge_list();
        let mut del: Vec<(u32, u32)> = Vec::new();
        for &e in &edges {
            if rng.next_below(4) == 0 {
                del.push(e);
            }
        }
        del.push((
            rng.next_below(n as u64) as u32,
            rng.next_below(n as u64) as u32,
        )); // probably absent
        g.batch_delete(&del);
        oracle.batch_delete(&del);

        assert_eq!(
            g.num_edges(),
            oracle.num_edges(),
            "seed {seed} round {round}: edge counts diverged"
        );

        // Query batch.
        let queries: Vec<(u32, u32)> = (0..20)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let got = g.batch_connected(&queries);
        let expect = oracle.batch_connected(&queries);
        assert_eq!(got, expect, "seed {seed} round {round}: queries diverged");
        assert_eq!(
            g.num_components(),
            oracle.num_components(),
            "seed {seed} round {round}: component counts diverged"
        );

        if let Err(e) = g.check_invariants() {
            panic!("seed {seed} round {round} ({algo:?}): {e}");
        }
    }
}

#[test]
fn interleaved_small_graphs() {
    for seed in 0..8 {
        random_mixed(seed, 10, 20, 8, DeletionAlgorithm::Interleaved);
    }
}

#[test]
fn simple_small_graphs() {
    for seed in 0..8 {
        random_mixed(seed, 10, 20, 8, DeletionAlgorithm::Simple);
    }
}

#[test]
fn interleaved_medium_graphs() {
    for seed in 100..104 {
        random_mixed(seed, 50, 15, 30, DeletionAlgorithm::Interleaved);
    }
}

#[test]
fn simple_medium_graphs() {
    for seed in 100..104 {
        random_mixed(seed, 50, 15, 30, DeletionAlgorithm::Simple);
    }
}

#[test]
fn interleaved_denser() {
    random_mixed(7, 40, 12, 120, DeletionAlgorithm::Interleaved);
}

#[test]
fn simple_denser() {
    random_mixed(7, 40, 12, 120, DeletionAlgorithm::Simple);
}

#[test]
fn delete_every_edge_of_a_path() {
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        let n = 32u32;
        let mut g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(n as usize)
            .algorithm(algo)
            .build()
            .unwrap();
        let path: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        g.batch_insert(&path);
        assert!(g.connected(0, n - 1));
        g.batch_delete(&path);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_components(), n as usize);
        g.check_invariants().unwrap();
    }
}

#[test]
fn cycle_deletion_finds_replacement() {
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        let n = 16u32;
        let mut g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(n as usize)
            .algorithm(algo)
            .build()
            .unwrap();
        // A cycle: deleting any one tree edge must find the remaining
        // non-tree edge as a replacement.
        let mut cyc: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        cyc.push((n - 1, 0));
        g.batch_insert(&cyc);
        g.check_invariants().unwrap();
        // Delete edges one at a time: connectivity must persist until the
        // last possible moment (a cycle tolerates any single deletion).
        g.batch_delete(&[(3, 4)]);
        assert!(g.connected(0, 8), "{algo:?}: replacement not found");
        g.check_invariants().unwrap();
        assert!(g.stats().replacements >= 1);
    }
}

#[test]
fn dense_clique_torture() {
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        let n = 12u32;
        let mut g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(n as usize)
            .algorithm(algo)
            .build()
            .unwrap();
        let mut all = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                all.push((u, v));
            }
        }
        g.batch_insert(&all);
        g.check_invariants().unwrap();
        assert_eq!(g.num_components(), 1);
        // Delete half the clique, then the rest, in two batches.
        let (half1, half2) = all.split_at(all.len() / 2);
        g.batch_delete(half1);
        g.check_invariants().unwrap();
        g.batch_delete(half2);
        g.check_invariants().unwrap();
        assert_eq!(g.num_components(), n as usize);
    }
}

#[test]
fn repeated_insert_delete_same_edge() {
    let mut g = BatchDynamicConnectivity::new(4);
    for _ in 0..25 {
        assert!(g.insert(0, 1));
        assert!(g.connected(0, 1));
        assert!(g.delete(0, 1));
        assert!(!g.connected(0, 1));
    }
    g.check_invariants().unwrap();
}

#[test]
fn delete_absent_and_empty_batches() {
    let mut g = BatchDynamicConnectivity::new(4);
    assert_eq!(g.batch_delete(&[(0, 1)]), 0);
    assert_eq!(g.batch_delete(&[]), 0);
    assert_eq!(g.batch_insert(&[]), 0);
    g.insert(0, 1);
    assert_eq!(g.batch_delete(&[(0, 1), (0, 1), (1, 0)]), 1);
    g.check_invariants().unwrap();
}

#[test]
fn single_vertex_graph() {
    let mut g = BatchDynamicConnectivity::new(1);
    assert!(g.connected(0, 0));
    assert_eq!(g.num_components(), 1);
    assert_eq!(g.batch_insert(&[(0, 0)]), 0);
    g.check_invariants().unwrap();
}
