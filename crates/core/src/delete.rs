//! Algorithm 3: batch deletion, plus the per-level machinery shared by the
//! two replacement searches (Algorithms 4 and 5).

use crate::{BatchDynamicConnectivity, DeletionAlgorithm};
use dyncon_ett::CompId;
use dyncon_primitives::{pack_by, par_expand2, par_for_each, par_map_collect};

/// A disconnected piece under consideration at the current level.
#[derive(Clone, Debug)]
pub(crate) struct Comp {
    /// Any vertex of the piece (the cross-level handle).
    pub handle: u32,
    /// Its representative in the current level's forest (valid while that
    /// forest is unmodified).
    pub rep: CompId,
    /// Number of vertices in the piece.
    pub size: u64,
}

/// Result of the common level prologue.
pub(crate) struct LevelPrep {
    /// Pieces small enough to search (`size ≤ 2^li`, the paper's
    /// `≤ 2^{i-1}`).
    pub active: Vec<Comp>,
    /// Pieces deferred to the next level.
    pub deferred: Vec<u32>,
}

impl BatchDynamicConnectivity {
    /// Delete a batch of edges. Self-loops, duplicates and absent edges
    /// are ignored; returns the number of edges actually deleted.
    pub fn batch_delete(&mut self, batch: &[(u32, u32)]) -> usize {
        let normalized = Self::normalize(batch);
        // Parallel dictionary filter + slot lookup.
        let es = pack_by(&normalized, |&(u, v)| self.edges.contains(u, v));
        if es.is_empty() {
            return 0;
        }
        let k = es.len();
        let slots: Vec<u32> = par_map_collect(&es, |&(u, v)| self.edges.slot_of(u, v).unwrap());

        // Partition into tree and non-tree deletions. Tags are read in
        // parallel; the level fan-out is a short sequential pass (levels
        // are few and the order fixes downstream tie-breaks).
        let tags: Vec<(usize, bool)> =
            par_map_collect(&slots, |&s| (self.edges.level(s), self.edges.is_tree(s)));
        let mut nontree_by_level: Vec<Vec<u32>> = vec![Vec::new(); self.num_levels];
        // (level, endpoints) of each deleted tree edge.
        let mut tree_dels: Vec<(usize, u32, u32)> = Vec::new();
        for ((&s, &(u, v)), &(li, is_tree)) in slots.iter().zip(&es).zip(&tags) {
            if is_tree {
                tree_dels.push((li, u, v));
            } else {
                nontree_by_level[li].push(s);
            }
        }

        // Line 2: remove non-tree edges from their adjacency structures.
        for (li, level) in nontree_by_level.iter_mut().enumerate() {
            let batch = std::mem::take(level);
            self.remove_nontree_at(li, &batch);
        }
        // Drop all records (tree-edge records die with the ETT nodes).
        self.edges.remove_batch(&slots);

        self.stat(|s| s.edges_deleted += k as u64);
        if tree_dels.is_empty() {
            return k;
        }
        self.stat(|s| s.tree_edges_deleted += tree_dels.len() as u64);

        // Lines 3-4: a level-j tree edge is present in forests j..L-1; cut
        // it from each.
        let min_li = tree_dels.iter().map(|&(li, _, _)| li).min().unwrap();
        let mut by_level: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.num_levels];
        for &(li, u, v) in &tree_dels {
            by_level[li].push((u, v));
        }
        let mut acc: Vec<(u32, u32)> = Vec::new();
        for (li, dels) in by_level.iter().enumerate().skip(min_li) {
            acc.extend_from_slice(dels);
            self.levels[li].batch_cut(&acc);
        }

        // Lines 5-8: the disconnected pieces, as vertex handles (their
        // representatives are recomputed per level).
        let mut c_handles: Vec<u32> = par_expand2(&tree_dels, |&(_, u, v)| [u, v]);

        // Lines 9-11: ascend the levels searching for replacements. `s`
        // buffers the found tree edges (slots) for insertion into each
        // higher forest as it is reached.
        let mut s_slots: Vec<u32> = Vec::new();
        for li in min_li..self.num_levels {
            c_handles = match self.algo {
                DeletionAlgorithm::Simple => self.level_search_simple(li, &c_handles, &mut s_slots),
                DeletionAlgorithm::Interleaved => {
                    self.level_search_interleaved(li, &c_handles, &mut s_slots)
                }
            };
        }
        k
    }

    /// Common level prologue (Algorithms 4/5, lines 2-5): insert the buffer
    /// of found tree edges, recompute piece representatives, split by the
    /// size threshold, and push the active pieces' level-`li` tree edges
    /// down one level.
    pub(crate) fn prepare_level(
        &mut self,
        li: usize,
        c_handles: &[u32],
        s_slots: &[u32],
    ) -> LevelPrep {
        self.stat(|s| s.levels_searched += 1);
        // Line 2: F_i.BatchInsert(S). None of S is in F_li yet (each found
        // edge was linked only into forests up to its discovery level).
        if !s_slots.is_empty() {
            let s_edges: Vec<(u32, u32)> = par_map_collect(s_slots, |&s| self.edges.endpoints(s));
            let flags: Vec<bool> = par_map_collect(s_slots, |&s| self.edges.level(s) == li);
            self.levels[li].batch_link(&s_edges, &flags);
        }

        // Lines 3-4: representatives, dedup, size partition.
        let reps = self.levels[li].batch_find_rep(c_handles);
        let mut pairs: Vec<(CompId, u32)> =
            reps.iter().zip(c_handles).map(|(&r, &h)| (r, h)).collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        let sizes: Vec<u64> = par_map_collect(&pairs, |&(_, h)| self.levels[li].component_size(h));
        let threshold = 1u64 << li; // 2^{i-1} in 1-indexed paper terms
        let mut active = Vec::new();
        let mut deferred = Vec::new();
        for (i, &(rep, handle)) in pairs.iter().enumerate() {
            if sizes[i] <= threshold {
                active.push(Comp {
                    handle,
                    rep,
                    size: sizes[i],
                });
            } else {
                deferred.push(handle);
            }
        }

        // Line 5: push the level-`li` tree edges of every active piece.
        self.push_level_tree_edges(li, &active);

        LevelPrep { active, deferred }
    }

    /// Push every level-`li` tree edge inside the given (active, hence
    /// small enough) pieces down to level `li - 1`: the line-5 operation
    /// of Algorithms 4/5. Besides the level prologue, Algorithm 4 must
    /// repeat this for pieces that remain active after merging through a
    /// freshly promoted replacement edge — otherwise a later round could
    /// push a non-tree edge across the merge to level `li-1` where its
    /// endpoints are not yet connected, violating Invariant 2. (Algorithm 5
    /// avoids the issue structurally: it pushes the chosen tree edges
    /// themselves, lines 24-26.)
    pub(crate) fn push_level_tree_edges(&mut self, li: usize, comps: &[Comp]) {
        let fetched: Vec<Vec<(u32, u32)>> =
            par_map_collect(comps, |c| self.levels[li].fetch_tree_edges(c.handle));
        let tree_edges: Vec<(u32, u32)> = fetched.into_iter().flatten().collect();
        if tree_edges.is_empty() {
            return;
        }
        debug_assert!(li > 0, "level-1 active pieces are singletons");
        // Distinct edges, distinct slots: the relaxed per-slot stores are
        // data-disjoint, so this fans out safely.
        par_for_each(&tree_edges, |&(u, v)| {
            let s = self.edges.slot_of(u, v).expect("tree edge recorded");
            self.edges.set_level(s, li - 1);
        });
        self.levels[li].set_tree_flags(&tree_edges, false);
        let flags = vec![true; tree_edges.len()];
        self.levels[li - 1].batch_link(&tree_edges, &flags);
        self.stat(|s| s.tree_pushes += tree_edges.len() as u64);
    }

    /// Move non-tree edges from level `li` to `li - 1` (the level-decrease
    /// charged by every amortization argument in the paper).
    pub(crate) fn push_nontree_down(&mut self, li: usize, slots: &[u32]) {
        if slots.is_empty() {
            return;
        }
        debug_assert!(li > 0, "cannot push below the bottom level");
        self.remove_nontree_at(li, slots);
        par_for_each(slots, |&s| self.edges.set_level(s, li - 1));
        self.add_nontree_at(li - 1, slots);
        self.stat(|s| s.nontree_pushes += slots.len() as u64);
    }

    /// Promote non-tree edges at level `li` to tree edges of `F_li` (their
    /// level is unchanged) and append them to the `S` buffer.
    pub(crate) fn promote_to_tree(&mut self, li: usize, slots: &[u32], s_slots: &mut Vec<u32>) {
        if slots.is_empty() {
            return;
        }
        self.remove_nontree_at(li, slots);
        let edges: Vec<(u32, u32)> = par_map_collect(slots, |&s| self.edges.endpoints(s));
        par_for_each(slots, |&s| self.edges.set_tree(s, true));
        let flags = vec![true; edges.len()];
        self.levels[li].batch_link(&edges, &flags);
        s_slots.extend_from_slice(slots);
        self.stat(|s| s.replacements += slots.len() as u64);
    }

    /// The non-tree occurrence list of a piece: the first `take` level-`li`
    /// non-tree edge slots in tour order.
    pub(crate) fn fetch_occurrences(&self, li: usize, handle: u32, take: u64) -> Vec<u32> {
        let picked = self.levels[li].fetch_nontree(handle, take);
        let mut out = Vec::with_capacity(take as usize);
        for (vertex, cnt) in picked {
            out.extend_from_slice(self.adj.fetch(vertex, li as u8, cnt as usize));
        }
        out
    }
}
