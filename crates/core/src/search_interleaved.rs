//! Algorithm 5: `InterleavedLevelSearch` — the improved replacement search
//! (§4).
//!
//! One single, monotonically doubling search size is maintained across all
//! rounds of a level (never reset), which caps the rounds per level at
//! `O(lg n)` and the deletion depth at `O(lg³ n)` (Theorem 7). Two
//! deferrals make the improved work bound of §4.3 possible:
//!
//! * **Tree edges found on this level are not inserted into `F_i` until
//!   the level ends** (lines 33-34) — the forest stays static during the
//!   level, so piece representatives stay valid and the work per piece is
//!   geometrically dominated (Lemma 7);
//! * **pushed edges are moved onto level `i-1` only at the end**
//!   (line 35), though they are removed from level `i` immediately so
//!   subsequent rounds fetch fresh edges.
//!
//! Because committed tree edges are invisible to `F_i`, piece merging is
//! tracked in `M`, a supercomponent union-find over piece representatives
//! with sizes (lines 7, 16-21); the activity test (line 24) uses the
//! supercomponent size, which is exactly what keeps every push legal under
//! Invariant 1.

use crate::BatchDynamicConnectivity;
use dyncon_ett::CompId;
use dyncon_primitives::{pack_by, par_for_each, par_map_collect, sort_dedup, FxHashMap, FxHashSet};
use dyncon_spanning::spanning_forest_sparse;

/// The paper's `M`: map of pieces to supercomponents and their sizes.
///
/// A small sequential union-find keyed by piece representative. Each level
/// touches `O(k)` pieces, so this is never more than a lower-order term;
/// a parallel dictionary version would match the paper's depth exactly
/// (see DESIGN.md §3).
pub(crate) struct SuperComps {
    parent: FxHashMap<CompId, CompId>,
    size: FxHashMap<CompId, u64>,
}

impl SuperComps {
    pub(crate) fn new() -> Self {
        Self {
            parent: FxHashMap::default(),
            size: FxHashMap::default(),
        }
    }

    /// Register a piece with its vertex count (no-op if known).
    pub(crate) fn add(&mut self, rep: CompId, size: u64) {
        self.parent.entry(rep).or_insert(rep);
        self.size.entry(rep).or_insert(size);
    }

    pub(crate) fn contains(&self, rep: CompId) -> bool {
        self.parent.contains_key(&rep)
    }

    /// Supercomponent representative (path halving).
    pub(crate) fn find(&mut self, rep: CompId) -> CompId {
        let mut x = rep;
        loop {
            let p = self.parent[&x];
            if p == x {
                return x;
            }
            let gp = self.parent[&p];
            self.parent.insert(x, gp);
            x = gp;
        }
    }

    /// Merge two supercomponents, summing sizes.
    pub(crate) fn union(&mut self, a: CompId, b: CompId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (sa, sb) = (self.size[&ra], self.size[&rb]);
        let (big, small) = if sa >= sb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(small, big);
        self.size.insert(big, sa + sb);
    }

    /// Size of the supercomponent containing `rep`.
    pub(crate) fn size_of(&mut self, rep: CompId) -> u64 {
        let r = self.find(rep);
        self.size[&r]
    }
}

impl BatchDynamicConnectivity {
    /// One level of Algorithm 5. Returns the handles deferred to the next
    /// level; found tree edges are appended to `s_slots`.
    pub(crate) fn level_search_interleaved(
        &mut self,
        li: usize,
        c_handles: &[u32],
        s_slots: &mut Vec<u32>,
    ) -> Vec<u32> {
        let prep = self.prepare_level(li, c_handles, s_slots);
        let mut deferred = prep.deferred;
        let mut active = prep.active;

        // Line 7: M maps pieces to supercomponents (initially themselves).
        let mut superc = SuperComps::new();
        for c in &active {
            superc.add(c.rep, c.size);
        }
        let mut t_slots: Vec<u32> = Vec::new(); // line 6: T
        let mut pushed: Vec<u32> = Vec::new(); // line 6: EP (already off level i)
        let mut r = 0u32; // line 6: round / search size exponent
        let threshold = 1u64 << li;
        let mut phases_this_level = 0u64;

        // Line 8: while |C| > 0.
        while !active.is_empty() {
            self.stat(|s| {
                s.rounds += 1;
                s.phases += 1;
            });
            phases_this_level += 1;
            let sz = 1u64 << r.min(62);

            // ---- Lines 10-15: fetch and identify replacement edges. ----
            // F_li is static for the whole level (tree inserts deferred),
            // so representatives from any earlier round remain valid.
            let fetches: Vec<(Vec<u32>, u64, u64)> = par_map_collect(&active, |c| {
                let cmax = self.levels[li].nontree_total(c.handle);
                let csz = sz.min(cmax);
                (self.fetch_occurrences(li, c.handle, csz), cmax, csz)
            });
            // Representatives of both endpoints of every candidate.
            let mut cand_slots: Vec<u32> = Vec::new();
            for (occs, _, _) in &fetches {
                cand_slots.extend_from_slice(occs);
                self.stat(|s| s.edges_examined += occs.len() as u64);
            }
            sort_dedup(&mut cand_slots);
            let cand_reps: Vec<(CompId, CompId)> = par_map_collect(&cand_slots, |&s| {
                let (x, y) = self.edges.endpoints(s);
                (self.levels[li].find_rep(x), self.levels[li].find_rep(y))
            });
            // Register pieces seen for the first time (line 17's "components
            // affected by R") with their current F_i sizes.
            let mut unknown: Vec<(CompId, u32)> = Vec::new();
            for (i, &s) in cand_slots.iter().enumerate() {
                let (x, y) = self.edges.endpoints(s);
                let (rx, ry) = cand_reps[i];
                if !superc.contains(rx) {
                    unknown.push((rx, x));
                }
                if !superc.contains(ry) {
                    unknown.push((ry, y));
                }
            }
            unknown.sort_unstable();
            unknown.dedup_by_key(|p| p.0);
            let unknown_sizes: Vec<u64> =
                par_map_collect(&unknown, |&(_, v)| self.levels[li].component_size(v));
            for (&(rep, _), &size) in unknown.iter().zip(&unknown_sizes) {
                superc.add(rep, size);
            }
            // Line 14: replacements = candidates crossing supercomponents.
            let replacement_pairs: Vec<(usize, CompId, CompId)> = cand_slots
                .iter()
                .enumerate()
                .filter_map(|(i, _)| {
                    let (rx, ry) = cand_reps[i];
                    let (sx, sy) = (superc.find(rx), superc.find(ry));
                    (sx != sy).then_some((i, sx, sy))
                })
                .collect();

            // ---- Lines 16-21: spanning forest over R, update M, grow T.
            let sf_pairs: Vec<(u64, u64)> = replacement_pairs
                .iter()
                .map(|&(_, sx, sy)| (sx, sy))
                .collect();
            let rf = spanning_forest_sparse(&sf_pairs);
            let mut chosen_this_round: Vec<u32> = Vec::new();
            for (j, &(i, sx, sy)) in replacement_pairs.iter().enumerate() {
                if rf.chosen[j] {
                    chosen_this_round.push(cand_slots[i]);
                    superc.union(sx, sy);
                }
            }
            t_slots.extend_from_slice(&chosen_this_round);

            // ---- Lines 22-31: push or deactivate each piece. ----
            // Size/exhaustion fates need &mut superc: precompute.
            let mut fates: Vec<(bool, bool)> = Vec::with_capacity(active.len());
            for (c, (_, cmax, csz)) in active.iter().zip(fetches.iter()) {
                let size_ok = superc.size_of(c.rep) <= threshold;
                fates.push((size_ok && *csz < *cmax, size_ok));
            }
            let chosen_set: FxHashSet<u32> = chosen_this_round.iter().copied().collect();
            let mut push_now: Vec<u32> = Vec::new();
            let mut still_active = Vec::with_capacity(active.len());
            for ((c, (occs, _, _)), (stays, size_ok)) in active.drain(..).zip(fetches).zip(fates) {
                if stays {
                    // Line 24-26: still active; everything fetched this
                    // round — replacements included — leaves level i.
                    push_now.extend_from_slice(&occs);
                    still_active.push(c);
                } else {
                    // Line 28: deactivated (too big or exhausted).
                    //
                    // Invariant 2 guard for the exhaustion case: tree
                    // edges chosen *this round* from this piece's fetch
                    // must still be pushed. A supercomponent sibling that
                    // remains active may later push a non-tree edge
                    // crossing this piece to level i-1; the connecting
                    // tree edge must already live there (the same hole
                    // class as Algorithm 4's merge case — DESIGN.md §4).
                    // Pushing them is legal: the supercomponent still
                    // fits the 2^{i-1} bound. When the piece dies by
                    // *size*, every sibling shares the oversized
                    // supercomponent and dies with it this same round, so
                    // no future cross-piece push exists.
                    if size_ok {
                        push_now.extend(occs.iter().filter(|s| chosen_set.contains(s)));
                    }
                    deferred.push(c.handle);
                }
            }
            active = still_active;
            // Remove pushed edges from level i *now* (so later rounds
            // fetch fresh edges) but defer their insertion at level i-1.
            sort_dedup(&mut push_now);
            if !push_now.is_empty() {
                debug_assert!(li > 0, "level-0 pieces cannot push");
                self.remove_nontree_at(li, &push_now);
                par_for_each(&push_now, |&s| self.edges.set_level(s, li - 1));
                pushed.extend_from_slice(&push_now);
            }
            r += 1;
        }
        self.stat(|s| s.max_phases_in_level = s.max_phases_in_level.max(phases_this_level));

        // ---- Lines 33-35: end of level. Commit T and land EP. ----
        sort_dedup(&mut t_slots);
        let pushed_set: FxHashSet<u32> = pushed.iter().copied().collect();
        // Chosen tree edges never pushed are still in the level-i
        // adjacency: remove them (they are tree edges now).
        let t_unpushed: Vec<u32> = pack_by(&t_slots, |s| !pushed_set.contains(s));
        self.remove_nontree_at(li, &t_unpushed);
        par_for_each(&t_slots, |&s| self.edges.set_tree(s, true));
        // Line 34: F_i.BatchInsert(T). Pushed members of T carry level
        // i-1 (flag false here, true below); unpushed carry level i.
        if !t_slots.is_empty() {
            let edges: Vec<(u32, u32)> = par_map_collect(&t_slots, |&s| self.edges.endpoints(s));
            let flags: Vec<bool> = par_map_collect(&t_slots, |&s| self.edges.level(s) == li);
            self.levels[li].batch_link(&edges, &flags);
            self.stat(|s| s.replacements += t_slots.len() as u64);
        }
        // Line 35: land the pushed edges on level i-1.
        let t_pushed: Vec<u32> = pack_by(&t_slots, |s| pushed_set.contains(s));
        if !t_pushed.is_empty() {
            let edges: Vec<(u32, u32)> = par_map_collect(&t_pushed, |&s| self.edges.endpoints(s));
            let flags = vec![true; edges.len()];
            self.levels[li - 1].batch_link(&edges, &flags);
        }
        let t_set: FxHashSet<u32> = t_slots.iter().copied().collect();
        let pushed_nontree: Vec<u32> = pack_by(&pushed, |s| !t_set.contains(s));
        if !pushed_nontree.is_empty() {
            self.add_nontree_at(li - 1, &pushed_nontree);
        }
        self.stat(|s| {
            s.nontree_pushes += pushed_nontree.len() as u64;
            s.tree_pushes += t_pushed.len() as u64;
        });

        // Line 36: S ∪ T.
        s_slots.extend_from_slice(&t_slots);
        deferred
    }
}
